//! Ablation bench: flips the individual implementation behaviours the
//! profiles encode and measures how each flip changes the attack outcome.
//! This isolates *which* behavioural difference makes an implementation
//! vulnerable — the per-OS causality the paper argues in §VI-A/B:
//!
//! * DCCP `type_check_before_seq` — the RFC 4340 §8.5 pseudocode ordering
//!   that enables REQUEST Connection Termination; the flipped ordering is
//!   the mitigation.
//! * TCP `dsack` + `sack_loss_evidence` — Linux's duplicate filtering that
//!   blocks both duplicate-ACK attacks.
//! * TCP `naive_ack_counting` — the Windows 95 growth bug behind
//!   duplicate-ACK spoofing.
//! * TCP `abort_style` — Linux's FIN-then-RST teardown, the CLOSE_WAIT
//!   exhaustion precondition.

use criterion::{criterion_group, criterion_main, Criterion};
use snake_bench::bench_scenario;
use snake_core::{detect, Executor, ProtocolKind, DEFAULT_THRESHOLD};
use snake_dccp::DccpProfile;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
use snake_tcp::{AbortStyle, Profile};

fn dup_acks(copies: u32) -> Strategy {
    Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "ESTABLISHED".into(),
            packet_type: "ACK".into(),
            attack: BasicAttack::Duplicate { copies },
        },
    }
}

fn drop_rsts() -> Strategy {
    Strategy {
        id: 2,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "FIN_WAIT_1".into(),
            packet_type: "RST".into(),
            attack: BasicAttack::Drop { percent: 100 },
        },
    }
}

fn request_inject() -> Strategy {
    Strategy {
        id: 3,
        kind: StrategyKind::OnState {
            endpoint: Endpoint::Client,
            state: "REQUEST".into(),
            attack: InjectionAttack::Inject {
                packet_type: "SYNC".into(),
                seq: SeqChoice::Random,
                direction: InjectDirection::ToClient,
                repeat: 3,
            },
        },
    }
}

fn run(protocol: ProtocolKind, strategy: Strategy) -> (f64, usize) {
    let spec = bench_scenario(protocol);
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy));
    let ratio = attacked.target_bytes as f64 / baseline.target_bytes.max(1) as f64;
    (ratio, attacked.leaked_sockets)
}

fn flag(protocol: ProtocolKind, strategy: Strategy) -> bool {
    let spec = bench_scenario(protocol);
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy));
    detect(&baseline, &attacked, DEFAULT_THRESHOLD).flagged()
}

fn regenerate_ablations() {
    println!("\nAblations — which behavioural knob enables which attack:\n");

    // 1. DCCP REQUEST termination: type check ordering.
    let vulnerable = flag(
        ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        request_inject(),
    );
    let fixed = flag(
        ProtocolKind::Dccp(DccpProfile::linux_3_13_seqcheck_fixed()),
        request_inject(),
    );
    println!(
        "REQUEST termination | type-check-first (RFC/Linux): {} | seq-check-first (mitigated): {}",
        verdict(vulnerable),
        verdict(fixed)
    );

    // 2. Duplicate-ACK spoofing: naive ack counting.
    let w95 = ProtocolKind::Tcp(Profile::windows_95());
    let mut w95_fixed_profile = Profile::windows_95();
    w95_fixed_profile.naive_ack_counting = false;
    w95_fixed_profile.name = "Windows 95 (growth fixed)".into();
    let (gain_naive, _) = run(w95, dup_acks(2));
    let (gain_fixed, _) = run(ProtocolKind::Tcp(w95_fixed_profile), dup_acks(2));
    println!(
        "DupACK spoofing     | naive growth: {gain_naive:.2}x | per-ack check added: {gain_fixed:.2}x"
    );

    // 3. DupACK filtering: give Windows 8.1 Linux's DSACK evidence rule.
    let w81 = ProtocolKind::Tcp(Profile::windows_8_1());
    let mut w81_dsack = Profile::windows_8_1();
    w81_dsack.dsack = true;
    w81_dsack.sack_loss_evidence = true;
    w81_dsack.name = "Windows 8.1 (+DSACK)".into();
    let (deg_plain, _) = run(w81, dup_acks(10));
    let (deg_dsack, _) = run(ProtocolKind::Tcp(w81_dsack), dup_acks(10));
    println!(
        "DupACK rate limit   | no DSACK filtering: {deg_plain:.2}x | with DSACK filtering: {deg_dsack:.2}x"
    );

    // 4. CLOSE_WAIT exhaustion: the FIN-then-RST teardown.
    let linux = ProtocolKind::Tcp(Profile::linux_3_0_0());
    let mut linux_rstonly = Profile::linux_3_0_0();
    linux_rstonly.abort_style = AbortStyle::RstOnly;
    linux_rstonly.name = "Linux 3.0.0 (RST-only abort)".into();
    let (_, leak_fin) = run(linux, drop_rsts());
    let (_, leak_rst) = run(ProtocolKind::Tcp(linux_rstonly), drop_rsts());
    println!(
        "CLOSE_WAIT leak     | FIN-then-RST abort: {} leaked | RST-only abort: {} leaked",
        leak_fin, leak_rst
    );
}

fn verdict(flagged: bool) -> &'static str {
    if flagged {
        "ATTACK"
    } else {
        "clean"
    }
}

fn bench(c: &mut Criterion) {
    regenerate_ablations();

    // Criterion measures the mitigated DCCP run (the cheapest ablation).
    let spec = bench_scenario(ProtocolKind::Dccp(DccpProfile::linux_3_13_seqcheck_fixed()));
    let strategy = request_inject();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("dccp_seqcheck_fixed", |b| {
        b.iter(|| Executor::run(&spec, Some(strategy.clone())));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
