//! Regenerates the attack magnitudes quoted in the paper's prose
//! (§VI-A/B): how much each headline attack moves throughput relative to
//! baseline — the paper reports ~5× for duplicate-ACK spoofing (gain on
//! Windows 95) and ~5× for duplicate-ACK rate limiting (degradation on
//! Windows 8.1), total loss for the reset attacks, and zero-data for the
//! DCCP REQUEST termination.
//!
//! Criterion then measures the hitseqwindow replay, the costliest scenario
//! (66k injected packets).

use criterion::{criterion_group, criterion_main, Criterion};
use snake_bench::{bench_scenario, mbps};
use snake_core::{Executor, ProtocolKind};
use snake_dccp::DccpProfile;
use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
use snake_tcp::Profile;

struct ImpactRow {
    name: &'static str,
    paper: &'static str,
    protocol: ProtocolKind,
    strategy: Strategy,
}

fn rows() -> Vec<ImpactRow> {
    let dccp = ProtocolKind::Dccp(DccpProfile::linux_3_13());
    vec![
        ImpactRow {
            name: "DupACK spoofing (gain)",
            paper: "~5x gain",
            protocol: ProtocolKind::Tcp(Profile::windows_95()),
            strategy: Strategy {
                id: 1,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    packet_type: "ACK".into(),
                    attack: BasicAttack::Duplicate { copies: 2 },
                },
            },
        },
        ImpactRow {
            name: "DupACK rate limiting (degradation)",
            paper: "~5x degradation",
            protocol: ProtocolKind::Tcp(Profile::windows_8_1()),
            strategy: Strategy {
                id: 2,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Server,
                    state: "ESTABLISHED".into(),
                    packet_type: "PSH+ACK".into(),
                    attack: BasicAttack::Duplicate { copies: 10 },
                },
            },
        },
        ImpactRow {
            name: "Reset attack (hitseqwindow RST)",
            paper: "connection killed",
            protocol: ProtocolKind::Tcp(Profile::linux_3_13()),
            strategy: Strategy {
                id: 3,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: "RST".into(),
                        direction: InjectDirection::ToClient,
                        stride: 65_535,
                        count: 66_000,
                        rate_pps: 20_000,
                        inert: false,
                    },
                },
            },
        },
        ImpactRow {
            name: "DCCP in-window ack seq +1",
            paper: "window dropped per mung",
            protocol: dccp.clone(),
            strategy: Strategy {
                id: 4,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Client,
                    state: "OPEN".into(),
                    packet_type: "ACK".into(),
                    attack: BasicAttack::Lie {
                        field: "seq".into(),
                        mutation: FieldMutation::Add(25),
                    },
                },
            },
        },
        ImpactRow {
            name: "DCCP REQUEST termination",
            paper: "no connection",
            protocol: dccp,
            strategy: Strategy {
                id: 5,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "REQUEST".into(),
                    attack: InjectionAttack::Inject {
                        packet_type: "SYNC".into(),
                        seq: SeqChoice::Random,
                        direction: InjectDirection::ToClient,
                        repeat: 3,
                    },
                },
            },
        },
    ]
}

fn regenerate_impacts() {
    println!("\nAttack impact magnitudes (paper §VI-A/B vs measured):");
    println!(
        "| {:<36} | {:<22} | {:>14} | {:>14} | {:>7} |",
        "Attack", "Paper", "Baseline Mb/s", "Attacked Mb/s", "Ratio"
    );
    for row in rows() {
        let spec = bench_scenario(row.protocol.clone());
        let baseline = Executor::run(&spec, None);
        let attacked = Executor::run(&spec, Some(row.strategy.clone()));
        let ratio = attacked.target_bytes as f64 / baseline.target_bytes.max(1) as f64;
        println!(
            "| {:<36} | {:<22} | {:>14.2} | {:>14.2} | {:>6.2}x |",
            row.name,
            row.paper,
            mbps(baseline.target_bytes, spec.data_secs()),
            mbps(attacked.target_bytes, spec.data_secs()),
            ratio
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_impacts();

    let reset = &rows()[2];
    let spec = bench_scenario(reset.protocol.clone());
    let strategy = reset.strategy.clone();
    let mut group = c.benchmark_group("impact_replay");
    group.sample_size(10);
    group.bench_function("hitseqwindow_rst", |b| {
        b.iter(|| Executor::run(&spec, Some(strategy.clone())));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
