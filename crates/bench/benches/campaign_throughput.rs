//! Campaign throughput: the same capped campaign run four ways — with
//! memoization on top of the snapshot-fork executor (the default), with
//! forking alone, strictly from scratch, and with a live observability
//! `Recorder` attached — timed wall-clock, with per-run simulator event
//! counts summed from the outcomes. Emits `BENCH_campaign.json` at the
//! workspace root so CI can archive the numbers, plus the observed run's
//! manifest as `BENCH_manifest.json`, and prints the same figures to
//! stdout.
//!
//! The campaigns must produce identical outcomes (modulo the memo
//! provenance markers); the bench asserts this, so it doubles as an
//! end-to-end determinism check at full campaign scale. The observed
//! mode additionally enforces the observability layer's overhead budget:
//! attaching a recorder (a strict superset of the default no-op
//! observer's cost) must stay within 2% of the unobserved wall-clock.
//!
//! The same-binary from-scratch mode understates what forking bought: it
//! still benefits from the earlier event-loop work (inline header
//! storage, `Arc`-shared reports, dead-timer purging). The full comparison
//! is against the executor as it existed *before* any of that, which a
//! single binary cannot contain — `scripts/bench_campaign.sh` measures
//! that executor from the pinned pre-change commit and passes its
//! wall-clock in via `SNAKE_PRE_PR_WALL_SECS`/`SNAKE_PRE_PR_COMMIT`; when
//! set, the JSON gains a `pre_pr` block and the headline `speedup` is
//! computed against it (falling back to the same-binary ratio otherwise).
//!
//! A fifth, warm-store rep runs the memoized campaign twice against one
//! persistent memo store — cold, then warm — asserting the store is
//! invisible to outcomes and that the warm rerun serves at least half its
//! eligible runs from disk; the figures land in the JSON's `warm_store`
//! block. Set `SNAKE_MEMO_STORE` to keep the store file at that path
//! (CI's bench-smoke job archives it); by default a temp file is used and
//! removed.
//!
//! A sixth rep runs a capped campaign on a generated star topology
//! carrying the four-role flow mix, twice, asserting run-to-run
//! determinism at campaign scale on the multi-flow path; its throughput
//! lands in the JSON's `multiflow` block.
//!
//! Each emission appends the run's headline figures to a `history` array
//! carried over from the previous `BENCH_campaign.json`, so the committed
//! file accumulates a trend line instead of overwriting it.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use snake_core::{
    build_run_manifest, Campaign, CampaignConfig, CampaignResult, FlowGroup, FlowRole,
    GenerationParams, ProtocolKind, Recorder, RecorderSnapshot, ScenarioSpec, StrategyOutcome,
    TopologyKind,
};
use snake_json::{obj, Value};
use snake_tcp::Profile;

const MAX_STRATEGIES: usize = 200;
const HISTORY_CAP: usize = 50;
/// Committed memoized-mode events/sec baseline: the last bench emission
/// before the timer-wheel scheduler overhaul (BENCH_campaign.json at that
/// commit), measured on the reference binary-heap event queue.
const HEAP_BASELINE_EVENTS_PER_SEC: f64 = 8_566_341.0;
/// The scheduler overhaul's throughput gate: memoized events/sec must
/// beat the heap-era baseline by at least this factor. Set
/// `SNAKE_BENCH_SKIP_EVENTS_GATE` to record figures without enforcing it
/// (e.g. when benchmarking on a host slower than the baseline machine).
const EVENTS_PER_SEC_GATE: f64 = 1.3;
/// Observability overhead budget: an attached recorder may cost at most
/// this multiple of the unobserved (no-op observer) wall-clock.
const OVERHEAD_LIMIT: f64 = 1.02;

fn config(
    snapshot_fork: bool,
    memoize: bool,
    observer: Option<Arc<Recorder>>,
    memo_store: Option<&Path>,
) -> CampaignConfig {
    config_sharded(snapshot_fork, memoize, observer, memo_store, None)
}

fn config_sharded(
    snapshot_fork: bool,
    memoize: bool,
    observer: Option<Arc<Recorder>>,
    memo_store: Option<&Path>,
    shards: Option<(usize, &Path)>,
) -> CampaignConfig {
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let mut builder = CampaignConfig::builder(spec)
        .cap(MAX_STRATEGIES)
        // One parameterisation per basic attack instead of the default
        // grid, so the 200-strategy cap covers every observed (state,
        // packet type) pair — triggers spread over the whole connection
        // lifetime rather than clustering in the handshake, which is the
        // workload the snapshot planner is built for.
        .params(GenerationParams {
            drop_percents: vec![100],
            duplicate_copies: vec![2],
            delay_secs: vec![1.0],
            batch_secs: vec![4.0],
            ..GenerationParams::default()
        })
        .feedback_rounds(2)
        .retest(false)
        .snapshot_fork(snapshot_fork)
        .memoize(memoize);
    if let Some(recorder) = observer {
        builder = builder.observer(recorder);
    }
    if let Some(path) = memo_store {
        builder = builder.memo_store(path);
    }
    if let Some((count, bin)) = shards {
        builder = builder.shards(count).shard_worker_bin(bin);
    }
    builder.build().expect("valid config")
}

/// Resolves the `snake` binary the sharded reps spawn as worker
/// processes: `SNAKE_BIN` when set (CI and `scripts/bench_campaign.sh`
/// export it after building), otherwise the binary sitting next to this
/// bench under `target/release`. `None` — with a loud warning from the
/// caller — when neither exists: `cargo bench` alone does not build
/// workspace bins, and spawning cargo from inside a bench would deadlock
/// on the build lock.
fn snake_bin() -> Option<PathBuf> {
    if let Some(path) = std::env::var_os("SNAKE_BIN") {
        return Some(PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("snake{}", std::env::consts::EXE_SUFFIX);
    // Benches run from target/release/deps/; the bin lands one level up.
    [exe.parent()?, exe.parent()?.parent()?]
        .iter()
        .map(|dir| dir.join(&name))
        .find(|candidate| candidate.exists())
}

/// One timed from-scratch campaign sharded across `shards` worker
/// processes. From-scratch (forking and memoization off) so every
/// strategy costs one full simulation — the cleanest scaling surface.
fn timed_sharded_once(shards: usize, bin: &Path) -> (CampaignResult, f64) {
    let start = Instant::now();
    let result = Campaign::run(config_sharded(
        false,
        false,
        None,
        None,
        Some((shards, bin)),
    ))
    .expect("valid baseline");
    (result, start.elapsed().as_secs_f64())
}

/// Simulator events the campaign accounts for: every outcome's run plus
/// the baseline run. Identical between the modes — memoized outcomes carry
/// the representative's (or the baseline's) metrics, events included.
fn events(result: &CampaignResult) -> u64 {
    result.baseline.sim_events
        + result
            .outcomes
            .iter()
            .map(|o| o.metrics.sim_events)
            .sum::<u64>()
}

/// Outcomes with the memo provenance marker stripped: memoization records
/// *how* an outcome was obtained, the equality contract is about *what*.
fn stripped(result: &CampaignResult) -> Vec<StrategyOutcome> {
    result
        .outcomes
        .iter()
        .map(|o| StrategyOutcome {
            memo: None,
            ..o.clone()
        })
        .collect()
}

/// One timed campaign run; `observe` attaches a fresh [`Recorder`] and
/// returns its merged snapshot alongside the result.
fn timed_once(
    snapshot_fork: bool,
    memoize: bool,
    observe: bool,
) -> (CampaignResult, f64, Option<RecorderSnapshot>) {
    let recorder = observe.then(|| Arc::new(Recorder::new()));
    let start = Instant::now();
    let result = Campaign::run(config(snapshot_fork, memoize, recorder.clone(), None))
        .expect("valid baseline");
    let secs = start.elapsed().as_secs_f64();
    (result, secs, recorder.map(|r| r.snapshot()))
}

/// One timed memoized campaign against the persistent store at `path`.
fn timed_store_once(path: &Path) -> (CampaignResult, f64) {
    let start = Instant::now();
    let result = Campaign::run(config(true, true, None, Some(path))).expect("valid baseline");
    (result, start.elapsed().as_secs_f64())
}

/// The multi-flow rep's scenario label, kept in one place so the printed
/// line and the JSON block cannot drift apart.
const MULTIFLOW_SCENARIO: &str = "star:64 attacked=16,bulk=8,rr=8,syn=8 TCP Linux 3.13";

/// One timed memoized campaign on a generated star topology carrying the
/// four-role flow mix — the workload the topology/flow redesign added.
fn timed_multiflow_once() -> (CampaignResult, f64) {
    let spec = ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_13()))
        .data_secs(2)
        .grace_secs(6)
        .topology(TopologyKind::Star, 64)
        .flows(vec![
            FlowGroup {
                role: FlowRole::Attacked,
                count: 16,
            },
            FlowGroup {
                role: FlowRole::Bulk,
                count: 8,
            },
            FlowGroup {
                role: FlowRole::RequestResponse,
                count: 8,
            },
            FlowGroup {
                role: FlowRole::SynPressure,
                count: 8,
            },
        ])
        .build()
        .expect("valid multi-flow scenario");
    let config = CampaignConfig::builder(spec)
        .cap(60)
        .feedback_rounds(1)
        .retest(false)
        .build()
        .expect("valid config");
    let start = Instant::now();
    let result = Campaign::run(config).expect("valid baseline");
    (result, start.elapsed().as_secs_f64())
}

type Timed = (CampaignResult, f64, Option<RecorderSnapshot>);

/// Runs all four modes `iters` times in alternation (so no mode
/// systematically benefits from a warmer allocator) and keeps each mode's
/// fastest wall-clock — the usual way to strip warmup noise from a
/// single-figure benchmark.
fn timed_quad(iters: usize) -> (Timed, Timed, Timed, Timed) {
    let mut memoized: Option<Timed> = None;
    let mut forked: Option<Timed> = None;
    let mut scratch: Option<Timed> = None;
    let mut observed: Option<Timed> = None;
    for _ in 0..iters {
        for (snapshot_fork, memoize, observe, best) in [
            (true, true, false, &mut memoized),
            (true, false, false, &mut forked),
            (false, false, false, &mut scratch),
            (true, true, true, &mut observed),
        ] {
            let run = timed_once(snapshot_fork, memoize, observe);
            if best.as_ref().is_none_or(|(_, b, _)| run.1 < *b) {
                *best = Some(run);
            }
        }
    }
    (
        memoized.expect("iters >= 1"),
        forked.expect("iters >= 1"),
        scratch.expect("iters >= 1"),
        observed.expect("iters >= 1"),
    )
}

/// Loads the previous report's `history` array (if any) so this run can
/// extend it rather than start over.
fn load_history(path: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(previous) = snake_json::parse(&text) else {
        return Vec::new();
    };
    match previous.get("history") {
        Some(Value::Arr(entries)) => entries.clone(),
        _ => Vec::new(),
    }
}

fn main() {
    // `cargo bench` passes harness flags; a custom main ignores them.
    // Warm up caches and the allocator outside the timed region.
    let warmup = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let warmup = CampaignConfig::builder(warmup)
        .cap(8)
        .feedback_rounds(2)
        .retest(false)
        .build()
        .expect("valid config");
    Campaign::run(warmup).expect("valid baseline");

    let (
        (memoized, memo_secs, _),
        (forked, forked_secs, _),
        (scratch, scratch_secs, _),
        (observed, observed_secs, observed_snapshot),
    ) = timed_quad(3);
    let observed_snapshot = observed_snapshot.expect("observed mode carries a snapshot");

    assert_eq!(
        forked.outcomes, scratch.outcomes,
        "snapshot-fork campaign must reproduce the from-scratch campaign exactly"
    );
    assert_eq!(
        stripped(&memoized),
        stripped(&forked),
        "memoized campaign must reproduce the unmemoized campaign exactly"
    );
    assert_eq!(
        stripped(&observed),
        stripped(&memoized),
        "attaching an observer must not change campaign outcomes"
    );

    let n = memoized.strategies_tried() as f64;
    let memo_hits = memoized.memo_hits as u64;
    let short_circuits = memoized.short_circuits as u64;
    assert!(
        memo_hits > 0 && short_circuits > 0,
        "the benchmark campaign must exercise both memoization layers \
         ({memo_hits} memo hits, {short_circuits} short-circuits)"
    );
    // The overhead ratio divides two nearly equal wall-clocks, so it is
    // the one figure here that scheduler noise can flip past its 2%
    // budget. Tighten both minima with back-to-back memo/observed pairs
    // (adjacent runs see the most similar machine conditions) on top of
    // the interleaved quad above.
    let (mut memo_secs, mut observed_secs) = (memo_secs, observed_secs);
    for _ in 0..2 {
        let (_, secs, _) = timed_once(true, true, false);
        memo_secs = memo_secs.min(secs);
        let (_, secs, _) = timed_once(true, true, true);
        observed_secs = observed_secs.min(secs);
    }

    // Warm-store rep: the same memoized campaign twice against one
    // persistent store. The store must be invisible to outcomes both
    // cold and warm, and the warm run must serve at least half its
    // eligible runs from disk — the cross-run contract CI gates on.
    let (store_path, keep_store) = match std::env::var_os("SNAKE_MEMO_STORE") {
        Some(path) => (PathBuf::from(path), true),
        None => (
            std::env::temp_dir().join(format!("snake-bench-store-{}.jsonl", std::process::id())),
            false,
        ),
    };
    std::fs::remove_file(&store_path).ok();
    let (cold_store, mut cold_store_secs) = timed_store_once(&store_path);
    let (warm_store, mut warm_store_secs) = timed_store_once(&store_path);
    // Cold and warm do near-identical work (the store feeds counters,
    // never verdicts — §12), so a single pair is decided by scheduler
    // noise. Alternate two more cold/warm pairs — cold against throwaway
    // stores, since a cold run needs an empty one — and keep each side's
    // fastest wall-clock, mirroring timed_quad's min-of-K.
    let cold_path = std::env::temp_dir().join(format!(
        "snake-bench-store-cold-{}.jsonl",
        std::process::id()
    ));
    for _ in 0..2 {
        std::fs::remove_file(&cold_path).ok();
        let (cold_rep, secs) = timed_store_once(&cold_path);
        assert_eq!(
            cold_rep.outcomes, cold_store.outcomes,
            "cold reps must agree"
        );
        cold_store_secs = cold_store_secs.min(secs);
        let (warm_rep, secs) = timed_store_once(&store_path);
        assert_eq!(
            warm_rep.outcomes, warm_store.outcomes,
            "warm reps must agree"
        );
        warm_store_secs = warm_store_secs.min(secs);
    }
    std::fs::remove_file(&cold_path).ok();
    assert_eq!(
        cold_store.outcomes, memoized.outcomes,
        "a cold persistent store must not change campaign outcomes"
    );
    assert_eq!(
        warm_store.outcomes, cold_store.outcomes,
        "a warm persistent store must not change campaign outcomes"
    );
    let warm_report = warm_store
        .memo_store
        .expect("store was configured and active");
    assert!(
        warm_report.hit_rate() >= 0.5,
        "warm store rerun must serve at least half its eligible runs from \
         disk: {warm_report:?}"
    );
    assert_eq!(warm_report.verdict_mismatches, 0, "{warm_report:?}");
    if !keep_store {
        std::fs::remove_file(&store_path).ok();
    }

    // Sharded rep: the from-scratch campaign at S ∈ {1, 2, 4} worker
    // *processes*, asserting each shard count reproduces the in-process
    // outcomes exactly. The ≥1.6x scaling gate only applies on machines
    // with at least four cores — on smaller hosts the figures are still
    // recorded honestly, they just cannot show parallel speedup.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sharded = match snake_bin() {
        None => {
            eprintln!(
                "warning: snake binary not found (set SNAKE_BIN or build \
                 --release -p snake-core --bin snake); skipping the sharded rep"
            );
            None
        }
        Some(bin) => {
            let mut per_shards = Vec::new();
            for shards in [1usize, 2, 4] {
                let (result, secs) = timed_sharded_once(shards, &bin);
                assert_eq!(
                    result.outcomes, scratch.outcomes,
                    "{shards}-shard campaign must reproduce the in-process \
                     campaign exactly"
                );
                per_shards.push((shards, secs));
            }
            Some(per_shards)
        }
    };
    let scaling_s4 = sharded.as_ref().map(|reps| {
        let secs_at = |want: usize| {
            reps.iter()
                .find(|(s, _)| *s == want)
                .map(|(_, secs)| *secs)
                .expect("measured shard count")
        };
        secs_at(1) / secs_at(4)
    });
    if let Some(scaling) = scaling_s4 {
        if cores >= 4 {
            assert!(
                scaling >= 1.6,
                "4-shard from-scratch campaign must scale at least 1.6x over \
                 1 shard on a {cores}-core machine (got {scaling:.2}x)"
            );
        }
    }
    // Store appends are buffered and flushed at admission checkpoints, so
    // a warm run must not be meaningfully slower than a cold one. The
    // structural difference is microseconds on a multi-second campaign;
    // the 5% tolerance keeps shared-runner noise from flapping the bench
    // while still catching a reintroduced per-entry write syscall.
    assert!(
        cold_store_secs / warm_store_secs >= 0.95,
        "a warm persistent store must not be slower than a cold one \
         (cold {cold_store_secs:.3}s vs warm {warm_store_secs:.3}s)"
    );

    // Multi-flow rep: the generated-topology campaign run twice, asserting
    // run-to-run determinism at full campaign scale on the star/flow-mix
    // path; the throughput lands in the JSON's `multiflow` block.
    let (multiflow, multiflow_secs_a) = timed_multiflow_once();
    let (multiflow_rerun, multiflow_secs_b) = timed_multiflow_once();
    assert_eq!(
        multiflow.outcomes, multiflow_rerun.outcomes,
        "multi-flow campaign must reproduce its outcomes run to run"
    );
    let multiflow_secs = multiflow_secs_a.min(multiflow_secs_b);
    let multiflow_n = multiflow.strategies_tried() as f64;

    let same_binary_speedup = scratch_secs / memo_secs;
    let speedup_memo = forked_secs / memo_secs;
    let observer_overhead = observed_secs / memo_secs;
    let pre_pr = std::env::var("SNAKE_PRE_PR_WALL_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|secs| {
            let commit = std::env::var("SNAKE_PRE_PR_COMMIT").unwrap_or_default();
            (commit, secs)
        });
    let speedup = match &pre_pr {
        Some((_, secs)) => secs / memo_secs,
        None => same_binary_speedup,
    };

    let mode_block = |result: &CampaignResult, secs: f64| {
        obj([
            ("wall_clock_secs", Value::F64(secs)),
            ("strategies_per_sec", Value::F64(n / secs)),
            ("events_per_sec", Value::F64(events(result) as f64 / secs)),
            ("sim_events", Value::U64(events(result))),
        ])
    };
    let mut memo_block = mode_block(&memoized, memo_secs);
    if let Value::Obj(pairs) = &mut memo_block {
        pairs.push(("memo_hits".to_owned(), Value::U64(memo_hits)));
        pairs.push(("short_circuits".to_owned(), Value::U64(short_circuits)));
        pairs.push(("memo_hit_rate".to_owned(), Value::F64(memo_hits as f64 / n)));
        pairs.push((
            "short_circuit_rate".to_owned(),
            Value::F64(short_circuits as f64 / n),
        ));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    let mut history = load_history(path);
    let events_per_sec = events(&memoized) as f64 / memo_secs;
    history.push(obj([
        ("memoized_strategies_per_sec", Value::F64(n / memo_secs)),
        ("events_per_sec", Value::F64(events_per_sec)),
        ("forked_strategies_per_sec", Value::F64(n / forked_secs)),
        (
            "from_scratch_strategies_per_sec",
            Value::F64(n / scratch_secs),
        ),
        ("speedup_memo", Value::F64(speedup_memo)),
        ("speedup", Value::F64(speedup)),
        ("observer_overhead", Value::F64(observer_overhead)),
        ("warm_store_hit_rate", Value::F64(warm_report.hit_rate())),
        (
            "warm_store_speedup_vs_cold",
            Value::F64(cold_store_secs / warm_store_secs),
        ),
        ("sharded_strategies_per_sec", {
            match &sharded {
                None => Value::Null,
                Some(reps) => Value::Obj(
                    reps.iter()
                        .map(|(s, secs)| (format!("s{s}"), Value::F64(n / secs)))
                        .collect(),
                ),
            }
        }),
    ]));
    if history.len() > HISTORY_CAP {
        let excess = history.len() - HISTORY_CAP;
        history.drain(..excess);
    }

    let mut report = obj([
        ("scenario", Value::Str("quick TCP Linux 3.13".to_owned())),
        ("max_strategies", Value::U64(MAX_STRATEGIES as u64)),
        (
            "strategies_tried",
            Value::U64(memoized.strategies_tried() as u64),
        ),
        ("memoized", memo_block),
        ("forked", mode_block(&forked, forked_secs)),
        ("from_scratch", mode_block(&scratch, scratch_secs)),
        ("observed", mode_block(&observed, observed_secs)),
        (
            "warm_store",
            obj([
                ("cold_wall_clock_secs", Value::F64(cold_store_secs)),
                ("wall_clock_secs", Value::F64(warm_store_secs)),
                ("strategies_per_sec", Value::F64(n / warm_store_secs)),
                (
                    "cross_run_hits",
                    Value::U64(warm_report.cross_run_hits as u64),
                ),
                (
                    "eligible_runs",
                    Value::U64(warm_report.eligible_runs as u64),
                ),
                ("hit_rate", Value::F64(warm_report.hit_rate())),
                ("appended_cold", {
                    let cold_report = cold_store
                        .memo_store
                        .expect("store was configured and active");
                    Value::U64(cold_report.appended as u64)
                }),
                (
                    "speedup_vs_cold",
                    Value::F64(cold_store_secs / warm_store_secs),
                ),
            ]),
        ),
        ("observer_overhead", Value::F64(observer_overhead)),
        ("speedup_memo", Value::F64(speedup_memo)),
        ("speedup_same_binary", Value::F64(same_binary_speedup)),
        ("speedup", Value::F64(speedup)),
        (
            "multiflow",
            obj([
                ("scenario", Value::Str(MULTIFLOW_SCENARIO.to_owned())),
                (
                    "strategies_tried",
                    Value::U64(multiflow.strategies_tried() as u64),
                ),
                ("wall_clock_secs", Value::F64(multiflow_secs)),
                (
                    "strategies_per_sec",
                    Value::F64(multiflow_n / multiflow_secs),
                ),
                (
                    "events_per_sec",
                    Value::F64(events(&multiflow) as f64 / multiflow_secs),
                ),
                ("sim_events", Value::U64(events(&multiflow))),
            ]),
        ),
        ("history", Value::Arr(history)),
    ]);
    if let (Some(reps), Value::Obj(pairs)) = (&sharded, &mut report) {
        let shard_blocks: Vec<(String, Value)> = reps
            .iter()
            .map(|(s, secs)| {
                (
                    format!("s{s}"),
                    obj([
                        ("wall_clock_secs", Value::F64(*secs)),
                        ("strategies_per_sec", Value::F64(n / secs)),
                    ]),
                )
            })
            .collect();
        let mut block = shard_blocks;
        block.push(("worker_cores".to_owned(), Value::U64(cores as u64)));
        if let Some(scaling) = scaling_s4 {
            block.push(("scaling_s4_over_s1".to_owned(), Value::F64(scaling)));
        }
        pairs.push(("sharded".to_owned(), Value::Obj(block)));
    }
    if let (Some((commit, secs)), Value::Obj(pairs)) = (&pre_pr, &mut report) {
        pairs.push((
            "pre_pr".to_owned(),
            obj([
                ("commit", Value::Str(commit.clone())),
                ("wall_clock_secs", Value::F64(*secs)),
                ("speedup", Value::F64(secs / memo_secs)),
            ]),
        ));
    }
    let json = report.to_string_compact();
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_campaign.json");

    // The observed run's manifest, extended with the overhead measurement.
    // Written *before* the overhead assertion so CI's budget check can
    // read the figure even when the assertion below aborts the process.
    let mut manifest = build_run_manifest(&observed, &observed_snapshot, observed_secs);
    manifest.set_section(
        "bench",
        obj([
            ("memoized_wall_secs", Value::F64(memo_secs)),
            ("observed_wall_secs", Value::F64(observed_secs)),
            ("observer_overhead", Value::F64(observer_overhead)),
            ("overhead_limit", Value::F64(OVERHEAD_LIMIT)),
        ]),
    );
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_manifest.json");
    let manifest_json = manifest.to_json().to_string_compact();
    std::fs::write(manifest_path, format!("{manifest_json}\n")).expect("write BENCH_manifest.json");

    if std::env::var_os("SNAKE_BENCH_SKIP_EVENTS_GATE").is_none() {
        assert!(
            events_per_sec >= EVENTS_PER_SEC_GATE * HEAP_BASELINE_EVENTS_PER_SEC,
            "event-loop throughput gate: memoized campaign must clear \
             {EVENTS_PER_SEC_GATE}x the heap-scheduler baseline \
             ({HEAP_BASELINE_EVENTS_PER_SEC:.0} events/s), got {events_per_sec:.0}"
        );
    }

    assert!(
        observer_overhead <= OVERHEAD_LIMIT,
        "observability overhead budget exceeded: observed {observed_secs:.3}s vs \
         unobserved {memo_secs:.3}s ({:.1}% > {:.1}%)",
        (observer_overhead - 1.0) * 100.0,
        (OVERHEAD_LIMIT - 1.0) * 100.0
    );

    println!("campaign_throughput: {MAX_STRATEGIES}-strategy quick TCP campaign");
    println!(
        "  memoized:      {memo_secs:.2}s  ({:.1} strategies/s, {:.0} events/s, \
         {memo_hits} memo hits, {short_circuits} short-circuits)",
        n / memo_secs,
        events(&memoized) as f64 / memo_secs
    );
    println!(
        "  snapshot-fork: {forked_secs:.2}s  ({:.1} strategies/s, {:.0} events/s)",
        n / forked_secs,
        events(&forked) as f64 / forked_secs
    );
    println!(
        "  from-scratch:  {scratch_secs:.2}s  ({:.1} strategies/s, {:.0} events/s)",
        n / scratch_secs,
        events(&scratch) as f64 / scratch_secs
    );
    println!(
        "  observed:      {observed_secs:.2}s  ({:+.1}% observer overhead, budget {:.1}%) \
         → {manifest_path}",
        (observer_overhead - 1.0) * 100.0,
        (OVERHEAD_LIMIT - 1.0) * 100.0
    );
    println!(
        "  multi-flow:    {multiflow_secs:.2}s  ({:.1} strategies/s, {:.0} events/s; \
         {MULTIFLOW_SCENARIO})",
        multiflow_n / multiflow_secs,
        events(&multiflow) as f64 / multiflow_secs
    );
    println!(
        "  warm store:    {warm_store_secs:.2}s  (cold {cold_store_secs:.2}s, \
         {}/{} cross-run hits = {:.0}% hit rate)",
        warm_report.cross_run_hits,
        warm_report.eligible_runs,
        warm_report.hit_rate() * 100.0
    );
    if let Some(reps) = &sharded {
        for (s, secs) in reps {
            println!(
                "  sharded S={s}:   {secs:.2}s  ({:.1} strategies/s, from scratch)",
                n / secs
            );
        }
        if let Some(scaling) = scaling_s4 {
            println!("  shard scaling: {scaling:.2}x at S=4 over S=1 ({cores} core(s))");
        }
    }
    if let Some((commit, secs)) = &pre_pr {
        println!(
            "  pre-change from-scratch ({}): {secs:.2}s",
            &commit[..commit.len().min(12)]
        );
    }
    println!(
        "  speedup: {speedup:.2}x  (memoization over forking alone: {speedup_memo:.2}x, \
         same binary: {same_binary_speedup:.2}x)  → {path}"
    );
}
