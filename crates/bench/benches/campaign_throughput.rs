//! Campaign throughput: the same capped campaign run twice — once with the
//! snapshot-fork executor (the default) and once strictly from scratch —
//! timed wall-clock, with per-run simulator event counts summed from the
//! outcomes. Emits `BENCH_campaign.json` at the workspace root so CI can
//! archive the numbers, and prints the same figures to stdout.
//!
//! The two campaigns must produce identical outcomes (fork equivalence);
//! the bench asserts this, so it doubles as an end-to-end determinism
//! check at full campaign scale.
//!
//! The same-binary from-scratch mode understates what forking bought: it
//! still benefits from this change's event-loop work (inline header
//! storage, `Arc`-shared reports, dead-timer purging). The full comparison
//! is against the executor as it existed *before* any of that, which a
//! single binary cannot contain — `scripts/bench_campaign.sh` measures
//! that executor from the pinned pre-change commit and passes its
//! wall-clock in via `SNAKE_PRE_PR_WALL_SECS`/`SNAKE_PRE_PR_COMMIT`; when
//! set, the JSON gains a `pre_pr` block and the headline `speedup` is
//! computed against it (falling back to the same-binary ratio otherwise).

use std::time::Instant;

use snake_core::{
    Campaign, CampaignConfig, CampaignResult, GenerationParams, ProtocolKind, ScenarioSpec,
};
use snake_json::{obj, Value};
use snake_tcp::Profile;

const MAX_STRATEGIES: usize = 200;

fn config(snapshot_fork: bool) -> CampaignConfig {
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    CampaignConfig {
        max_strategies: Some(MAX_STRATEGIES),
        // One parameterisation per basic attack instead of the default
        // grid, so the 200-strategy cap covers every observed (state,
        // packet type) pair — triggers spread over the whole connection
        // lifetime rather than clustering in the handshake, which is the
        // workload the snapshot planner is built for.
        params: GenerationParams {
            drop_percents: vec![100],
            duplicate_copies: vec![2],
            delay_secs: vec![1.0],
            batch_secs: vec![4.0],
            ..GenerationParams::default()
        },
        feedback_rounds: 2,
        retest: false,
        snapshot_fork,
        ..CampaignConfig::new(spec)
    }
}

/// Simulator events the campaign processed: every outcome's run plus the
/// baseline run. Identical between the two modes — the fork executor's
/// whole point is reaching the same events without re-simulating them.
fn events(result: &CampaignResult) -> u64 {
    result.baseline.sim_events
        + result
            .outcomes
            .iter()
            .map(|o| o.metrics.sim_events)
            .sum::<u64>()
}

/// One timed campaign run.
fn timed_once(snapshot_fork: bool) -> (CampaignResult, f64) {
    let start = Instant::now();
    let result = Campaign::run(config(snapshot_fork)).expect("valid baseline");
    (result, start.elapsed().as_secs_f64())
}

/// Runs both modes `iters` times in alternation (so neither mode
/// systematically benefits from a warmer allocator) and keeps each mode's
/// fastest wall-clock — the usual way to strip warmup noise from a
/// single-figure benchmark.
fn timed_pair(iters: usize) -> ((CampaignResult, f64), (CampaignResult, f64)) {
    let mut forked: Option<(CampaignResult, f64)> = None;
    let mut scratch: Option<(CampaignResult, f64)> = None;
    for _ in 0..iters {
        for (snapshot_fork, best) in [(true, &mut forked), (false, &mut scratch)] {
            let (result, secs) = timed_once(snapshot_fork);
            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                *best = Some((result, secs));
            }
        }
    }
    (forked.expect("iters >= 1"), scratch.expect("iters >= 1"))
}

fn main() {
    // `cargo bench` passes harness flags; a custom main ignores them.
    // Warm up caches and the allocator outside the timed region.
    let warmup = CampaignConfig {
        max_strategies: Some(8),
        ..config(true)
    };
    Campaign::run(warmup).expect("valid baseline");

    let ((forked, forked_secs), (scratch, scratch_secs)) = timed_pair(3);

    assert_eq!(
        forked.outcomes, scratch.outcomes,
        "snapshot-fork campaign must reproduce the from-scratch campaign exactly"
    );

    let n = forked.strategies_tried() as f64;
    let same_binary_speedup = scratch_secs / forked_secs;
    let pre_pr = std::env::var("SNAKE_PRE_PR_WALL_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|secs| {
            let commit = std::env::var("SNAKE_PRE_PR_COMMIT").unwrap_or_default();
            (commit, secs)
        });
    let speedup = match &pre_pr {
        Some((_, secs)) => secs / forked_secs,
        None => same_binary_speedup,
    };
    let mut report = obj([
        ("scenario", Value::Str("quick TCP Linux 3.13".to_owned())),
        ("max_strategies", Value::U64(MAX_STRATEGIES as u64)),
        (
            "strategies_tried",
            Value::U64(forked.strategies_tried() as u64),
        ),
        (
            "forked",
            obj([
                ("wall_clock_secs", Value::F64(forked_secs)),
                ("strategies_per_sec", Value::F64(n / forked_secs)),
                (
                    "events_per_sec",
                    Value::F64(events(&forked) as f64 / forked_secs),
                ),
                ("sim_events", Value::U64(events(&forked))),
            ]),
        ),
        (
            "from_scratch",
            obj([
                ("wall_clock_secs", Value::F64(scratch_secs)),
                ("strategies_per_sec", Value::F64(n / scratch_secs)),
                (
                    "events_per_sec",
                    Value::F64(events(&scratch) as f64 / scratch_secs),
                ),
                ("sim_events", Value::U64(events(&scratch))),
            ]),
        ),
        ("speedup_same_binary", Value::F64(same_binary_speedup)),
        ("speedup", Value::F64(speedup)),
    ]);
    if let (Some((commit, secs)), Value::Obj(pairs)) = (&pre_pr, &mut report) {
        pairs.push((
            "pre_pr".to_owned(),
            obj([
                ("commit", Value::Str(commit.clone())),
                ("wall_clock_secs", Value::F64(*secs)),
                ("speedup", Value::F64(secs / forked_secs)),
            ]),
        ));
    }
    let json = report.to_string_compact();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_campaign.json");

    println!("campaign_throughput: {MAX_STRATEGIES}-strategy quick TCP campaign");
    println!(
        "  snapshot-fork: {forked_secs:.2}s  ({:.1} strategies/s, {:.0} events/s)",
        n / forked_secs,
        events(&forked) as f64 / forked_secs
    );
    println!(
        "  from-scratch:  {scratch_secs:.2}s  ({:.1} strategies/s, {:.0} events/s)",
        n / scratch_secs,
        events(&scratch) as f64 / scratch_secs
    );
    if let Some((commit, secs)) = &pre_pr {
        println!(
            "  pre-change from-scratch ({}): {secs:.2}s",
            &commit[..commit.len().min(12)]
        );
    }
    println!("  speedup: {speedup:.2}x  (same binary: {same_binary_speedup:.2}x)  → {path}");
}
