//! Regenerates the fairness sanity check the detection threshold rests on
//! (§III-A, §VI): two unattacked flows of the same implementation compete
//! over the bottleneck and must achieve throughput within a factor of two
//! of each other. If this baseline did not hold, the ±50 % detector would
//! flag noise.
//!
//! Criterion then measures a bare two-flow simulation (the simulator's
//! hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snake_bench::{all_implementations, bench_scenario, mbps};
use snake_core::Executor;

fn regenerate_fairness() {
    println!("\nBaseline fairness (two competing flows, no attack):");
    println!(
        "| {:<18} | {:>13} | {:>15} | {:>6} | {:>11} |",
        "Implementation", "Target Mb/s", "Competing Mb/s", "Ratio", "Within 2x?"
    );
    for protocol in all_implementations() {
        let name = protocol.implementation_name().to_owned();
        let spec = bench_scenario(protocol);
        let m = Executor::run(&spec, None);
        let hi = m.target_bytes.max(m.competing_bytes) as f64;
        let lo = m.target_bytes.min(m.competing_bytes).max(1) as f64;
        let ratio = hi / lo;
        println!(
            "| {:<18} | {:>13.2} | {:>15.2} | {:>5.2}x | {:>11} |",
            name,
            mbps(m.target_bytes, spec.data_secs()),
            mbps(m.competing_bytes, spec.data_secs()),
            ratio,
            if ratio < 2.0 { "yes" } else { "NO" }
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_fairness();

    let mut group = c.benchmark_group("baseline_simulation");
    group.sample_size(10);
    for protocol in all_implementations() {
        let name = protocol.implementation_name().to_owned();
        let spec = bench_scenario(protocol);
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| Executor::run(spec, None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
