//! Regenerates the §VI-C search-space comparison: state-based strategy
//! generation versus send-packet-based and time-interval-based injection,
//! with both the paper's parameters and this reproduction's measured ones.
//!
//! Criterion then measures strategy generation itself (the controller-side
//! cost the paper describes as negligible — "we did not find it necessary
//! to dedicate a core to the controller").

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use snake_bench::bench_scenario;
use snake_core::search::{empirical_head_to_head, render_empirical, SearchSpaceParams};
use snake_core::{
    generate_strategies, Executor, GenerationParams, ProtocolKind, DEFAULT_THRESHOLD,
};
use snake_tcp::Profile;

fn regenerate_comparison() {
    println!("\nSearch-space comparison, paper parameters (§VI-C):");
    println!("{}", SearchSpaceParams::paper().render());

    // Measure this reproduction's parameters from a baseline run.
    let protocol = ProtocolKind::Tcp(Profile::linux_3_13());
    let spec = bench_scenario(protocol.clone());
    let baseline = Executor::run(&spec, None);
    let mut next_id = 0;
    let mut seen = BTreeSet::new();
    let strategies = generate_strategies(
        &protocol,
        &[&baseline.proxy],
        &GenerationParams::default(),
        &mut next_id,
        &mut seen,
    );
    // Per-packet strategies = the OnPacket parameterisations per pair.
    let params = GenerationParams::default();
    let per_packet = (params.drop_percents.len()
        + params.duplicate_copies.len()
        + params.delay_secs.len()
        + params.batch_secs.len()
        + 1
        + 9 * 8
        + 6 * 2) as u64;
    let measured = SearchSpaceParams::measured(
        baseline.proxy.packets_seen,
        per_packet,
        strategies.len() as u64,
        spec.data_secs(),
    );
    println!(
        "Search-space comparison, measured parameters ({} packets observed, {} state-based strategies):",
        baseline.proxy.packets_seen,
        strategies.len()
    );
    println!("{}", measured.render());

    // Empirical head-to-head: equal execution budget per injection model;
    // yield is what the state machine buys.
    let budget = 40;
    let results = empirical_head_to_head(
        &spec,
        strategies,
        budget,
        &GenerationParams::default(),
        DEFAULT_THRESHOLD,
    );
    println!("Empirical head-to-head ({budget} strategies per model, same scenario):");
    println!("{}", render_empirical(&results));
}

fn bench(c: &mut Criterion) {
    regenerate_comparison();

    let protocol = ProtocolKind::Tcp(Profile::linux_3_13());
    let spec = bench_scenario(protocol.clone());
    let baseline = Executor::run(&spec, None);
    c.bench_function("strategy_generation", |b| {
        b.iter(|| {
            let mut next_id = 0;
            let mut seen = BTreeSet::new();
            generate_strategies(
                &protocol,
                &[&baseline.proxy],
                &GenerationParams::default(),
                &mut next_id,
                &mut seen,
            )
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
