//! Regenerates Table I ("Summary of SNAKE results"): one row per
//! implementation, from a capped state-based campaign (the full sweep is
//! `cargo run --release --example tcp_campaign` / `dccp_campaign`).
//!
//! Criterion then measures the cost of one executor run — the unit the
//! paper prices at 2 wall-clock minutes on its VM testbed and this
//! reproduction completes in milliseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snake_bench::{all_implementations, bench_scenario};
use snake_core::{render_table1, Campaign, CampaignConfig, Executor};

fn regenerate_table1() {
    let mut results = Vec::new();
    for protocol in all_implementations() {
        let spec = bench_scenario(protocol);
        let config = CampaignConfig::builder(spec)
            .cap(150)
            .feedback_rounds(1)
            .build()
            .expect("valid config");
        results.push(Campaign::run(config).expect("campaign preconditions hold"));
    }
    println!("\nTable I (capped to 150 strategies per implementation):");
    println!("{}", render_table1(&results));
}

fn bench(c: &mut Criterion) {
    regenerate_table1();

    let mut group = c.benchmark_group("executor_run");
    group.sample_size(10);
    for protocol in all_implementations() {
        let name = protocol.implementation_name().to_owned();
        let spec = bench_scenario(protocol);
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| Executor::run(spec, None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
