//! Regenerates Table II ("Summary of attacks discovered by SNAKE"): each
//! of the paper's nine attacks replayed as the strategy the search
//! generates for it, with the detection verdict shown per implementation.
//!
//! Criterion then measures the CLOSE_WAIT replay, the most
//! teardown-sensitive scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use snake_bench::bench_scenario;
use snake_core::{
    classify, detect, Executor, KnownAttack, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD,
};
use snake_dccp::DccpProfile;
use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
use snake_tcp::Profile;

fn on_packet(endpoint: Endpoint, state: &str, ptype: &str, attack: BasicAttack) -> Strategy {
    Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint,
            state: state.into(),
            packet_type: ptype.into(),
            attack,
        },
    }
}

fn hitseq(ptype: &str) -> Strategy {
    Strategy {
        id: 1,
        kind: StrategyKind::OnState {
            endpoint: Endpoint::Client,
            state: "ESTABLISHED".into(),
            attack: InjectionAttack::HitSeqWindow {
                packet_type: ptype.into(),
                direction: InjectDirection::ToClient,
                stride: 65_535,
                count: 66_000,
                rate_pps: 20_000,
                inert: false,
            },
        },
    }
}

/// The nine Table II attacks as (row name, implementation, strategy).
fn table2_rows() -> Vec<(&'static str, ProtocolKind, Strategy)> {
    let dccp = ProtocolKind::Dccp(DccpProfile::linux_3_13());
    vec![
        (
            "CLOSE_WAIT Resource Exhaustion",
            ProtocolKind::Tcp(Profile::linux_3_0_0()),
            on_packet(
                Endpoint::Client,
                "FIN_WAIT_1",
                "RST",
                BasicAttack::Drop { percent: 100 },
            ),
        ),
        (
            "Packets with Invalid Flags",
            ProtocolKind::Tcp(Profile::linux_3_0_0()),
            on_packet(
                Endpoint::Client,
                "ESTABLISHED",
                "ACK",
                BasicAttack::Lie {
                    field: "syn".into(),
                    mutation: FieldMutation::Set(1),
                },
            ),
        ),
        (
            "Duplicate Acknowledgment Spoofing",
            ProtocolKind::Tcp(Profile::windows_95()),
            on_packet(
                Endpoint::Client,
                "ESTABLISHED",
                "ACK",
                BasicAttack::Duplicate { copies: 2 },
            ),
        ),
        (
            "Reset Attack",
            ProtocolKind::Tcp(Profile::linux_3_13()),
            hitseq("RST"),
        ),
        (
            "SYN-Reset Attack",
            ProtocolKind::Tcp(Profile::linux_3_13()),
            hitseq("SYN"),
        ),
        (
            "Duplicate Acknowledgment Rate Limiting",
            ProtocolKind::Tcp(Profile::windows_8_1()),
            on_packet(
                Endpoint::Server,
                "ESTABLISHED",
                "PSH+ACK",
                BasicAttack::Duplicate { copies: 10 },
            ),
        ),
        (
            "Acknowledgment Mung Resource Exhaustion",
            dccp.clone(),
            on_packet(
                Endpoint::Client,
                "OPEN",
                "ACK",
                BasicAttack::Drop { percent: 100 },
            ),
        ),
        (
            "In-window Ack Sequence Number Modification",
            dccp.clone(),
            on_packet(
                Endpoint::Client,
                "OPEN",
                "ACK",
                BasicAttack::Lie {
                    field: "seq".into(),
                    mutation: FieldMutation::Add(25),
                },
            ),
        ),
        (
            "REQUEST Connection Termination",
            dccp,
            Strategy {
                id: 1,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "REQUEST".into(),
                    attack: InjectionAttack::Inject {
                        packet_type: "SYNC".into(),
                        seq: SeqChoice::Random,
                        direction: InjectDirection::ToClient,
                        repeat: 3,
                    },
                },
            },
        ),
    ]
}

fn regenerate_table2() {
    println!("\nTable II (attack replays):");
    println!(
        "| {:<44} | {:<13} | {:<22} | {:<44} |",
        "Attack", "Impl.", "Verdict", "Classified as"
    );
    for (name, protocol, strategy) in table2_rows() {
        let spec = bench_scenario(protocol.clone());
        let baseline = Executor::run(&spec, None);
        let attacked = Executor::run(&spec, Some(strategy.clone()));
        let verdict = detect(&baseline, &attacked, DEFAULT_THRESHOLD);
        let attack: KnownAttack = classify(&protocol, &strategy, &verdict, &attacked);
        println!(
            "| {:<44} | {:<13} | {:<22} | {:<44} |",
            name,
            protocol.implementation_name(),
            verdict.labels().join(","),
            attack.name()
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_table2();

    let spec: ScenarioSpec = bench_scenario(ProtocolKind::Tcp(Profile::linux_3_0_0()));
    let strategy = on_packet(
        Endpoint::Client,
        "FIN_WAIT_1",
        "RST",
        BasicAttack::Drop { percent: 100 },
    );
    let mut group = c.benchmark_group("attack_replay");
    group.sample_size(10);
    group.bench_function("close_wait_exhaustion", |b| {
        b.iter(|| Executor::run(&spec, Some(strategy.clone())));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
