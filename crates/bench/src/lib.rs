//! Shared helpers for the SNAKE evaluation benchmarks.
//!
//! Each bench target regenerates one artifact of the paper's evaluation
//! (printed to stdout when the bench runs) and then criterion-measures the
//! underlying operation so regressions in simulation or search throughput
//! are visible:
//!
//! * `table1` — Table I rows (capped campaigns per implementation).
//! * `table2` — Table II attack replays.
//! * `search_space` — the §VI-C injection-model comparison.
//! * `attack_impact` — the attack magnitudes quoted in §VI-A/B.
//! * `fairness` — the factor-of-two fairness baseline the detector rests
//!   on.

use snake_core::{ProtocolKind, ScenarioSpec};
use snake_dccp::DccpProfile;
use snake_tcp::Profile;

/// Every implementation of the paper's evaluation, in Table I order.
pub fn all_implementations() -> Vec<ProtocolKind> {
    let mut v: Vec<ProtocolKind> = Profile::all().into_iter().map(ProtocolKind::Tcp).collect();
    v.push(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    v
}

/// The scenario the benches use: the evaluation dumbbell with a shortened
/// data phase so a full bench run stays in minutes.
pub fn bench_scenario(protocol: ProtocolKind) -> ScenarioSpec {
    ScenarioSpec::builder(protocol)
        .data_secs(10)
        .grace_secs(35)
        .build()
        .expect("bench scenario is valid")
}

/// Megabits per second over the data phase.
pub fn mbps(bytes: u64, secs: u64) -> f64 {
    bytes as f64 * 8.0 / secs as f64 / 1e6
}
