use snake_core::{detect, Executor, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD};
use snake_proxy::*;
use snake_packet::FieldMutation;
use snake_dccp::DccpProfile;

fn main() {
    for seed in [7u64, 8, 9, 10] {
        let spec = ScenarioSpec { seed, ..ScenarioSpec::evaluation(ProtocolKind::Dccp(DccpProfile::linux_3_13())) };
        let base = Executor::run(&spec, None);
        let s = Strategy { id: 1, kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client, state: "OPEN".into(), packet_type: "ACK".into(),
            attack: BasicAttack::Lie { field: "seq".into(), mutation: FieldMutation::Add(25) } } };
        let m = Executor::run(&spec, Some(s));
        let v = detect(&base, &m, DEFAULT_THRESHOLD);
        println!("seed={seed} base={} attacked={} ratio={:.3} labels={:?}",
            base.target_bytes, m.target_bytes, m.target_bytes as f64 / base.target_bytes as f64, v.labels());
    }
}
