use std::collections::BTreeMap;

use snake_proxy::{BasicAttack, Endpoint, InjectionAttack, Strategy, StrategyKind};

use crate::detect::Verdict;
use crate::scenario::{ProtocolKind, TestMetrics};

/// The unique attacks of the paper's Table II, plus catch-all buckets for
/// genuine-but-unnamed findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KnownAttack {
    /// TCP: connections wedged in CLOSE_WAIT on the server after client
    /// teardown traffic is suppressed (server DoS).
    CloseWaitExhaustion,
    /// TCP: implementation-revealing processing of invalid flag
    /// combinations (fingerprinting).
    InvalidFlagProcessing,
    /// TCP: duplicated acknowledgments inflate a naïve sender's congestion
    /// window (poor fairness; Windows 95).
    DupAckSpoofing,
    /// TCP: brute-forced sequence-valid RST (client DoS).
    ResetAttack,
    /// TCP: brute-forced sequence-valid SYN resets the connection
    /// (client DoS).
    SynResetAttack,
    /// TCP: duplicate-acknowledgment bursts repeatedly halve the sender's
    /// window (throughput degradation; Windows 8.1).
    DupAckRateLimiting,
    /// DCCP: invalidated acknowledgments pin the sender at minimum rate so
    /// the send queue never drains and the socket hangs (server DoS).
    AckMungExhaustion,
    /// DCCP: an in-window increment of an acknowledgment's sequence number
    /// forces a SYNC resync and drops a window of packets (throughput
    /// degradation).
    InWindowAckSeqMod,
    /// DCCP: any non-RESPONSE packet received in REQUEST resets the nascent
    /// connection, sequence numbers unchecked (client DoS).
    RequestTermination,
    /// A genuine finding that does not match a named Table II attack.
    Other,
}

impl KnownAttack {
    /// The attack's name as the paper's Table II gives it.
    pub fn name(&self) -> &'static str {
        match self {
            KnownAttack::CloseWaitExhaustion => "CLOSE_WAIT Resource Exhaustion",
            KnownAttack::InvalidFlagProcessing => "Packets with Invalid Flags",
            KnownAttack::DupAckSpoofing => "Duplicate Acknowledgment Spoofing",
            KnownAttack::ResetAttack => "Reset Attack",
            KnownAttack::SynResetAttack => "SYN-Reset Attack",
            KnownAttack::DupAckRateLimiting => "Duplicate Acknowledgment Rate Limiting",
            KnownAttack::AckMungExhaustion => "Acknowledgment Mung Resource Exhaustion",
            KnownAttack::InWindowAckSeqMod => {
                "In-window Acknowledgment Sequence Number Modification"
            }
            KnownAttack::RequestTermination => "REQUEST Connection Termination",
            KnownAttack::Other => "Other",
        }
    }

    /// The impact column of Table II.
    pub fn impact(&self) -> &'static str {
        match self {
            KnownAttack::CloseWaitExhaustion | KnownAttack::AckMungExhaustion => "Server DoS",
            KnownAttack::InvalidFlagProcessing => "Fingerprinting",
            KnownAttack::DupAckSpoofing => "Poor Fairness",
            KnownAttack::ResetAttack
            | KnownAttack::SynResetAttack
            | KnownAttack::RequestTermination => "Client DoS",
            KnownAttack::DupAckRateLimiting | KnownAttack::InWindowAckSeqMod => {
                "Throughput Degradation"
            }
            KnownAttack::Other => "Varies",
        }
    }
}

impl std::fmt::Display for KnownAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A unique attack discovered by a campaign: the cluster of true attack
/// strategies that all exploit the same mechanism ("many of these
/// strategies are functionally the same attack, just performed on a
/// different field or with a different value" — §VI-A).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackFinding {
    /// The named attack.
    pub attack: KnownAttack,
    /// Ids of the strategies in the cluster.
    pub strategy_ids: Vec<u64>,
    /// One representative strategy description.
    pub example: String,
    /// The detection labels observed (for example `degradation`).
    pub effects: Vec<String>,
}

const TCP_FLAG_FIELDS: &[&str] = &["urg", "ack_flag", "psh", "rst", "syn", "fin"];

/// Maps one true attack strategy to the named attack it instantiates.
pub fn classify(
    protocol: &ProtocolKind,
    strategy: &Strategy,
    verdict: &Verdict,
    metrics: &TestMetrics,
) -> KnownAttack {
    match protocol {
        ProtocolKind::Tcp(_) => classify_tcp(strategy, verdict, metrics),
        ProtocolKind::Dccp(_) => classify_dccp(strategy, verdict, metrics),
    }
}

fn classify_tcp(strategy: &Strategy, verdict: &Verdict, metrics: &TestMetrics) -> KnownAttack {
    // Resource exhaustion with CLOSE_WAIT evidence is the CLOSE_WAIT
    // attack regardless of which delivery attack suppressed the resets.
    if verdict.socket_leak && metrics.leaked_close_wait > 0 {
        return KnownAttack::CloseWaitExhaustion;
    }
    match &strategy.kind {
        StrategyKind::OnState {
            attack: InjectionAttack::HitSeqWindow { packet_type, .. },
            ..
        } => match packet_type.as_str() {
            "RST" => KnownAttack::ResetAttack,
            "SYN" => KnownAttack::SynResetAttack,
            _ => KnownAttack::Other,
        },
        StrategyKind::OnState {
            attack: InjectionAttack::Inject { packet_type, .. },
            ..
        } => match packet_type.as_str() {
            "RST" => KnownAttack::ResetAttack,
            "SYN" => KnownAttack::SynResetAttack,
            _ => KnownAttack::Other,
        },
        StrategyKind::AtTime { .. } | StrategyKind::OnNthPacket { .. } => KnownAttack::Other,
        StrategyKind::OnPacket {
            endpoint,
            packet_type,
            attack,
            ..
        } => match attack {
            BasicAttack::Duplicate { .. } => {
                if *endpoint == Endpoint::Client && packet_type == "ACK" && verdict.throughput_gain
                {
                    KnownAttack::DupAckSpoofing
                } else if verdict.throughput_degradation || verdict.competing_degradation {
                    // Duplication bursts (of data or of acks) that drive
                    // the sender into repeated spurious loss recovery.
                    KnownAttack::DupAckRateLimiting
                } else {
                    KnownAttack::Other
                }
            }
            BasicAttack::Lie { field, .. } if TCP_FLAG_FIELDS.contains(&field.as_str()) => {
                KnownAttack::InvalidFlagProcessing
            }
            _ => KnownAttack::Other,
        },
    }
}

fn classify_dccp(strategy: &Strategy, verdict: &Verdict, metrics: &TestMetrics) -> KnownAttack {
    // Small in-window sequence bumps on the receiver's acknowledgments are
    // the paper's attack 2 — classified before the generic leak rule,
    // since the forced-resync degradation is the defining mechanism (the
    // leak it also causes at teardown is a downstream symptom).
    if let StrategyKind::OnPacket {
        endpoint: Endpoint::Client,
        attack: BasicAttack::Lie { field, mutation },
        ..
    } = &strategy.kind
    {
        if field == "seq"
            && matches!(
                mutation,
                snake_packet::FieldMutation::Add(_) | snake_packet::FieldMutation::Sub(_)
            )
            && (verdict.throughput_degradation || verdict.competing_degradation)
        {
            return KnownAttack::InWindowAckSeqMod;
        }
    }
    if verdict.socket_leak && metrics.leaked_with_queue > 0 {
        return KnownAttack::AckMungExhaustion;
    }
    match &strategy.kind {
        StrategyKind::OnState { state, .. }
            if state == "REQUEST" && verdict.establishment_prevented =>
        {
            KnownAttack::RequestTermination
        }
        // A reflected REQUEST arrives at a client still in REQUEST and
        // trips the same type-before-sequence check: the same root cause
        // as the injection form of the attack.
        StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            packet_type,
            attack: BasicAttack::Reflect,
            ..
        } if packet_type == "REQUEST" && verdict.establishment_prevented => {
            KnownAttack::RequestTermination
        }
        StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            attack,
            ..
        } => match attack {
            BasicAttack::Lie { field, .. }
                if field == "seq"
                    && (verdict.throughput_degradation || verdict.competing_degradation) =>
            {
                KnownAttack::InWindowAckSeqMod
            }
            BasicAttack::Lie { field, .. }
                if (field == "ack" || field == "seq") && verdict.socket_leak =>
            {
                KnownAttack::AckMungExhaustion
            }
            _ => KnownAttack::Other,
        },
        _ => KnownAttack::Other,
    }
}

/// Groups classified true-attack strategies into unique attacks — the
/// paper's reduction from "17–48 true attack strategies" to "3–4 true
/// attacks" per implementation.
pub fn cluster_attacks(classified: &[(Strategy, Verdict, KnownAttack)]) -> Vec<AttackFinding> {
    let mut clusters: BTreeMap<KnownAttack, AttackFinding> = BTreeMap::new();
    for (strategy, verdict, attack) in classified {
        let entry = clusters.entry(*attack).or_insert_with(|| AttackFinding {
            attack: *attack,
            strategy_ids: Vec::new(),
            example: strategy.describe(),
            effects: Vec::new(),
        });
        entry.strategy_ids.push(strategy.id);
        for label in verdict.labels() {
            if !entry.effects.iter().any(|e| e == label) {
                entry.effects.push(label.to_owned());
            }
        }
    }
    clusters.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_proxy::{InjectDirection, SeqChoice};
    use snake_tcp::Profile;

    fn tcp() -> ProtocolKind {
        ProtocolKind::Tcp(Profile::linux_3_0_0())
    }

    fn dccp() -> ProtocolKind {
        ProtocolKind::Dccp(snake_dccp::DccpProfile::linux_3_13())
    }

    fn metrics(close_wait: usize, with_queue: usize) -> TestMetrics {
        TestMetrics {
            target_bytes: 1,
            competing_bytes: 1,
            leaked_sockets: close_wait + with_queue,
            leaked_close_wait: close_wait,
            leaked_with_queue: with_queue,
            ..TestMetrics::empty()
        }
    }

    fn leak_verdict() -> Verdict {
        Verdict {
            socket_leak: true,
            ..Verdict::default()
        }
    }

    #[test]
    fn close_wait_leak_is_classified() {
        let s = Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "FIN_WAIT_1".into(),
                packet_type: "RST".into(),
                attack: BasicAttack::Drop { percent: 100 },
            },
        };
        assert_eq!(
            classify(&tcp(), &s, &leak_verdict(), &metrics(1, 0)),
            KnownAttack::CloseWaitExhaustion
        );
    }

    #[test]
    fn hitseq_types_map_to_reset_attacks() {
        let make = |ty: &str| Strategy {
            id: 1,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                attack: InjectionAttack::HitSeqWindow {
                    packet_type: ty.into(),
                    direction: InjectDirection::ToClient,
                    stride: 65_535,
                    count: 66_000,
                    rate_pps: 20_000,
                    inert: false,
                },
            },
        };
        let v = Verdict {
            throughput_degradation: true,
            ..Verdict::default()
        };
        assert_eq!(
            classify(&tcp(), &make("RST"), &v, &metrics(0, 0)),
            KnownAttack::ResetAttack
        );
        assert_eq!(
            classify(&tcp(), &make("SYN"), &v, &metrics(0, 0)),
            KnownAttack::SynResetAttack
        );
    }

    #[test]
    fn dupack_gain_vs_degradation() {
        let dup = |endpoint, ptype: &str| Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint,
                state: "ESTABLISHED".into(),
                packet_type: ptype.into(),
                attack: BasicAttack::Duplicate { copies: 2 },
            },
        };
        let gain = Verdict {
            throughput_gain: true,
            ..Verdict::default()
        };
        let degraded = Verdict {
            throughput_degradation: true,
            ..Verdict::default()
        };
        assert_eq!(
            classify(&tcp(), &dup(Endpoint::Client, "ACK"), &gain, &metrics(0, 0)),
            KnownAttack::DupAckSpoofing
        );
        assert_eq!(
            classify(
                &tcp(),
                &dup(Endpoint::Server, "PSH+ACK"),
                &degraded,
                &metrics(0, 0)
            ),
            KnownAttack::DupAckRateLimiting
        );
    }

    #[test]
    fn dccp_request_termination() {
        let s = Strategy {
            id: 1,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Client,
                state: "REQUEST".into(),
                attack: InjectionAttack::Inject {
                    packet_type: "SYNC".into(),
                    seq: SeqChoice::Random,
                    direction: InjectDirection::ToClient,
                    repeat: 3,
                },
            },
        };
        let v = Verdict {
            establishment_prevented: true,
            ..Verdict::default()
        };
        assert_eq!(
            classify(&dccp(), &s, &v, &metrics(0, 0)),
            KnownAttack::RequestTermination
        );
    }

    #[test]
    fn dccp_ack_mung_and_seq_mod() {
        let lie = |field: &str| Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "OPEN".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Lie {
                    field: field.into(),
                    mutation: snake_packet::FieldMutation::Add(1),
                },
            },
        };
        assert_eq!(
            classify(&dccp(), &lie("ack"), &leak_verdict(), &metrics(0, 1)),
            KnownAttack::AckMungExhaustion
        );
        let degraded = Verdict {
            throughput_degradation: true,
            ..Verdict::default()
        };
        assert_eq!(
            classify(&dccp(), &lie("seq"), &degraded, &metrics(0, 0)),
            KnownAttack::InWindowAckSeqMod
        );
    }

    #[test]
    fn clustering_groups_by_attack() {
        let s1 = Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Duplicate { copies: 1 },
            },
        };
        let s2 = Strategy {
            id: 2,
            ..s1.clone()
        };
        let gain = Verdict {
            throughput_gain: true,
            ..Verdict::default()
        };
        let clusters = cluster_attacks(&[
            (s1, gain, KnownAttack::DupAckSpoofing),
            (s2, gain, KnownAttack::DupAckSpoofing),
        ]);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].strategy_ids, vec![1, 2]);
        assert_eq!(clusters[0].effects, vec!["gain"]);
    }

    #[test]
    fn names_match_table_two() {
        assert_eq!(KnownAttack::ResetAttack.name(), "Reset Attack");
        assert_eq!(KnownAttack::CloseWaitExhaustion.impact(), "Server DoS");
        assert_eq!(KnownAttack::DupAckSpoofing.impact(), "Poor Fairness");
    }
}
