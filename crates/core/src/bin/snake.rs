//! `snake` — command-line driver for the SNAKE attack explorer.
//!
//! ```text
//! snake list                               implementations under test
//! snake baseline --impl linux-3.13        run the no-attack scenario
//! snake campaign --impl linux-3.0.0       full state-based search
//!               [--cap N] [--data-secs N] [--grace-secs N] [--seed N]
//! snake replay --attack close-wait        replay a named Table II attack
//! snake search-space                      the §VI-C injection-model comparison
//! ```

use std::process::ExitCode;

use snake_core::search::SearchSpaceParams;
use snake_core::{
    detect, render_table1, render_table2, Campaign, CampaignConfig, Executor, ProtocolKind,
    ScenarioSpec, DEFAULT_THRESHOLD,
};
use snake_dccp::DccpProfile;
use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
use snake_tcp::Profile;

const IMPLEMENTATIONS: &[(&str, &str)] = &[
    ("linux-3.0.0", "TCP, Linux kernel 3.0.0"),
    ("linux-3.13", "TCP, Linux kernel 3.13"),
    ("windows-8.1", "TCP, Windows 8.1"),
    ("windows-95", "TCP, Windows 95"),
    ("dccp", "DCCP, Linux kernel 3.13 (CCID-2)"),
];

const ATTACKS: &[(&str, &str)] = &[
    ("close-wait", "CLOSE_WAIT Resource Exhaustion (TCP, Linux)"),
    (
        "dupack-spoofing",
        "Duplicate Acknowledgment Spoofing (TCP, Windows 95)",
    ),
    (
        "dupack-rate-limiting",
        "Duplicate Acknowledgment Rate Limiting (TCP, Windows 8.1)",
    ),
    ("reset", "Reset Attack (TCP, all implementations)"),
    ("syn-reset", "SYN-Reset Attack (TCP, all implementations)"),
    ("ack-mung", "Acknowledgment Mung Resource Exhaustion (DCCP)"),
    (
        "ack-seq-mod",
        "In-window Ack Sequence Number Modification (DCCP)",
    ),
    (
        "request-termination",
        "REQUEST Connection Termination (DCCP)",
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => cmd_list(),
        "baseline" => cmd_baseline(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "search-space" => cmd_search_space(),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "snake — state-based network attack explorer (SNAKE, DSN 2015 reproduction)\n\n\
         USAGE:\n  \
         snake list\n  \
         snake baseline --impl <name> [--data-secs N] [--seed N]\n  \
         snake campaign --impl <name> [--cap N] [--data-secs N] [--grace-secs N] [--seed N] [--tsv FILE]\n  \
                        [--journal FILE] [--resume] [--budget EVENTS] [--progress N] [--no-memo]\n  \
         snake replay --attack <name>\n  \
         snake search-space\n\n\
         Run `snake list` for implementation and attack names."
    );
}

/// Looks up `--key value` in an argument list.
fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_impl(args: &[String]) -> Result<ProtocolKind, String> {
    let name = flag(args, "--impl").ok_or("missing --impl <name>")?;
    Ok(match name.as_str() {
        "linux-3.0.0" => ProtocolKind::Tcp(Profile::linux_3_0_0()),
        "linux-3.13" => ProtocolKind::Tcp(Profile::linux_3_13()),
        "windows-8.1" => ProtocolKind::Tcp(Profile::windows_8_1()),
        "windows-95" => ProtocolKind::Tcp(Profile::windows_95()),
        "dccp" => ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        other => {
            return Err(format!(
                "unknown implementation `{other}` (try `snake list`)"
            ))
        }
    })
}

fn parse_scenario(args: &[String]) -> Result<ScenarioSpec, String> {
    let mut spec = ScenarioSpec::evaluation(parse_impl(args)?);
    if let Some(v) = flag(args, "--data-secs") {
        spec.data_secs = v.parse().map_err(|_| "--data-secs expects an integer")?;
    }
    if let Some(v) = flag(args, "--grace-secs") {
        spec.grace_secs = v.parse().map_err(|_| "--grace-secs expects an integer")?;
    }
    if let Some(v) = flag(args, "--seed") {
        spec.seed = v.parse().map_err(|_| "--seed expects an integer")?;
    }
    Ok(spec)
}

fn cmd_list() -> Result<(), String> {
    println!("implementations (--impl):");
    for (name, desc) in IMPLEMENTATIONS {
        println!("  {name:<22} {desc}");
    }
    println!("\nattacks (--attack):");
    for (name, desc) in ATTACKS {
        println!("  {name:<22} {desc}");
    }
    Ok(())
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let spec = parse_scenario(args)?;
    let m = Executor::run(&spec, None);
    println!("implementation : {}", spec.protocol.implementation_name());
    println!(
        "data phase     : {} s (+{} s observation)",
        spec.data_secs, spec.grace_secs
    );
    println!(
        "target flow    : {} bytes ({:.2} Mbit/s)",
        m.target_bytes,
        mbps(m.target_bytes, spec.data_secs)
    );
    println!(
        "competing flow : {} bytes ({:.2} Mbit/s)",
        m.competing_bytes,
        mbps(m.competing_bytes, spec.data_secs)
    );
    println!("leaked sockets : {}", m.leaked_sockets);
    println!("packets seen   : {}", m.proxy.packets_seen);
    println!(
        "final states   : client {} / server {}",
        m.proxy.client_final_state, m.proxy.server_final_state
    );
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let mut spec = parse_scenario(args)?;
    let cap = match flag(args, "--cap") {
        Some(v) => Some(v.parse().map_err(|_| "--cap expects an integer")?),
        None => None,
    };
    if let Some(v) = flag(args, "--budget") {
        let budget: u64 = v
            .parse()
            .map_err(|_| "--budget expects an integer (events)")?;
        spec.event_budget = Some(budget);
    }
    let journal = flag(args, "--journal").map(std::path::PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    let progress_every = match flag(args, "--progress") {
        Some(v) => v.parse().map_err(|_| "--progress expects an integer")?,
        None => 0,
    };
    let memoize = !args.iter().any(|a| a == "--no-memo");
    let config = CampaignConfig {
        max_strategies: cap,
        journal,
        resume,
        progress_every,
        memoize,
        ..CampaignConfig::new(spec)
    };
    let start = std::time::Instant::now();
    let result = Campaign::run(config).map_err(|e| e.to_string())?;
    eprintln!(
        "{} strategies in {:.1?} ({} errored, {} truncated)",
        result.strategies_tried(),
        start.elapsed(),
        result.errored(),
        result.truncated()
    );
    if memoize {
        let tried = result.strategies_tried().max(1);
        eprintln!(
            "memoization: {} memo hits, {} short-circuits ({:.1}% / {:.1}% of strategies)",
            result.memo_hits,
            result.short_circuits,
            100.0 * result.memo_hits as f64 / tried as f64,
            100.0 * result.short_circuits as f64 / tried as f64
        );
    }
    if result.resumed > 0 {
        eprintln!(
            "resumed {} outcomes from the journal ({} malformed lines skipped)",
            result.resumed, result.journal_lines_skipped
        );
    }
    println!("{}", render_table1(std::slice::from_ref(&result)));
    println!("{}", render_table2(std::slice::from_ref(&result)));
    if let Some(path) = flag(args, "--tsv") {
        std::fs::write(&path, result.export_outcomes_tsv())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote per-strategy outcomes to {path}");
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let name = flag(args, "--attack").ok_or("missing --attack <name>")?;
    let (protocol, strategy) = named_attack(&name)?;
    let spec = ScenarioSpec::evaluation(protocol);
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy.clone()));
    let verdict = detect(&baseline, &attacked, DEFAULT_THRESHOLD);
    println!("attack   : {name}");
    println!("strategy : {}", strategy.describe());
    println!("impl     : {}", spec.protocol.implementation_name());
    println!(
        "baseline : {:.2} Mbit/s, attacked: {:.2} Mbit/s",
        mbps(baseline.target_bytes, spec.data_secs),
        mbps(attacked.target_bytes, spec.data_secs)
    );
    println!(
        "sockets  : {} leaked (CLOSE_WAIT {}, queue-wedged {})",
        attacked.leaked_sockets, attacked.leaked_close_wait, attacked.leaked_with_queue
    );
    println!(
        "verdict  : flagged={} {:?}",
        verdict.flagged(),
        verdict.labels()
    );
    Ok(())
}

fn named_attack(name: &str) -> Result<(ProtocolKind, Strategy), String> {
    let on_packet = |endpoint, state: &str, ptype: &str, attack| Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint,
            state: state.into(),
            packet_type: ptype.into(),
            attack,
        },
    };
    Ok(match name {
        "close-wait" => (
            ProtocolKind::Tcp(Profile::linux_3_0_0()),
            on_packet(
                Endpoint::Client,
                "FIN_WAIT_1",
                "RST",
                BasicAttack::Drop { percent: 100 },
            ),
        ),
        "dupack-spoofing" => (
            ProtocolKind::Tcp(Profile::windows_95()),
            on_packet(
                Endpoint::Client,
                "ESTABLISHED",
                "ACK",
                BasicAttack::Duplicate { copies: 2 },
            ),
        ),
        "dupack-rate-limiting" => (
            ProtocolKind::Tcp(Profile::windows_8_1()),
            on_packet(
                Endpoint::Server,
                "ESTABLISHED",
                "PSH+ACK",
                BasicAttack::Duplicate { copies: 10 },
            ),
        ),
        "reset" | "syn-reset" => (
            ProtocolKind::Tcp(Profile::linux_3_13()),
            Strategy {
                id: 1,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: if name == "reset" { "RST" } else { "SYN" }.into(),
                        direction: InjectDirection::ToClient,
                        stride: 65_535,
                        count: 66_000,
                        rate_pps: 20_000,
                        inert: false,
                    },
                },
            },
        ),
        "ack-mung" => (
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
            on_packet(
                Endpoint::Client,
                "OPEN",
                "ACK",
                BasicAttack::Drop { percent: 100 },
            ),
        ),
        "ack-seq-mod" => (
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
            on_packet(
                Endpoint::Client,
                "OPEN",
                "ACK",
                BasicAttack::Lie {
                    field: "seq".into(),
                    mutation: FieldMutation::Add(25),
                },
            ),
        ),
        "request-termination" => (
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
            Strategy {
                id: 1,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "REQUEST".into(),
                    attack: InjectionAttack::Inject {
                        packet_type: "SYNC".into(),
                        seq: SeqChoice::Random,
                        direction: InjectDirection::ToClient,
                        repeat: 3,
                    },
                },
            },
        ),
        other => return Err(format!("unknown attack `{other}` (try `snake list`)")),
    })
}

fn cmd_search_space() -> Result<(), String> {
    println!("Search-space comparison (paper §VI-C, published parameters):\n");
    println!("{}", SearchSpaceParams::paper().render());
    Ok(())
}

fn mbps(bytes: u64, secs: u64) -> f64 {
    bytes as f64 * 8.0 / secs.max(1) as f64 / 1e6
}
