//! `snake` — command-line driver for the SNAKE attack explorer.
//!
//! ```text
//! snake list                               implementations under test
//! snake baseline --impl linux-3.13        run the no-attack scenario
//! snake campaign --impl linux-3.0.0       full state-based search
//!               [--cap N] [--quick] [--manifest FILE] [--observe-summary] …
//! snake shard-worker --connect ADDR       executor process for --shards
//! snake replay --attack close-wait        replay a named Table II attack
//! snake search-space                      the §VI-C injection-model comparison
//! ```
//!
//! Flag handling is table-driven: each command declares its flags once in
//! [`COMMANDS`] (name, argument placeholder, help line), the parser walks
//! that table — so an unknown or misspelled flag is an error instead of
//! being silently ignored — and `snake help` renders its text from the
//! very same table.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use snake_core::search::SearchSpaceParams;
use snake_core::{
    build_run_manifest, detect, render_table1, render_table2, Campaign, CampaignConfig, ChaosPlan,
    Executor, FlowGroup, FlowRole, ProtocolKind, Recorder, ScenarioSpec, TopologyKind,
    DEFAULT_THRESHOLD,
};
use snake_dccp::DccpProfile;
use snake_netsim::{preset_names, Impairment, LinkSpec, SimDuration};
use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
use snake_tcp::Profile;

const IMPLEMENTATIONS: &[(&str, &str)] = &[
    ("linux-3.0.0", "TCP, Linux kernel 3.0.0"),
    ("linux-3.13", "TCP, Linux kernel 3.13"),
    ("windows-8.1", "TCP, Windows 8.1"),
    ("windows-95", "TCP, Windows 95"),
    ("dccp", "DCCP, Linux kernel 3.13 (CCID-2)"),
];

const ATTACKS: &[(&str, &str)] = &[
    ("close-wait", "CLOSE_WAIT Resource Exhaustion (TCP, Linux)"),
    (
        "dupack-spoofing",
        "Duplicate Acknowledgment Spoofing (TCP, Windows 95)",
    ),
    (
        "dupack-rate-limiting",
        "Duplicate Acknowledgment Rate Limiting (TCP, Windows 8.1)",
    ),
    ("reset", "Reset Attack (TCP, all implementations)"),
    ("syn-reset", "SYN-Reset Attack (TCP, all implementations)"),
    ("ack-mung", "Acknowledgment Mung Resource Exhaustion (DCCP)"),
    (
        "ack-seq-mod",
        "In-window Ack Sequence Number Modification (DCCP)",
    ),
    (
        "request-termination",
        "REQUEST Connection Termination (DCCP)",
    ),
];

/// One flag a command accepts: `arg` is `None` for a bare switch, or the
/// placeholder shown in help (`--cap N`) for a value-taking flag.
struct FlagSpec {
    name: &'static str,
    arg: Option<&'static str>,
    help: &'static str,
}

const fn switch(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        arg: None,
        help,
    }
}

const fn value(name: &'static str, arg: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        arg: Some(arg),
        help,
    }
}

/// One subcommand: its flag table drives both the parser and `snake help`.
struct CommandSpec {
    name: &'static str,
    summary: &'static str,
    flags: &'static [FlagSpec],
}

/// Scenario flags shared by `baseline` and `campaign`.
const IMPL_FLAG: FlagSpec = value("--impl", "NAME", "implementation under test (`snake list`)");
const DATA_SECS_FLAG: FlagSpec = value("--data-secs", "N", "data-phase length in seconds");
const GRACE_SECS_FLAG: FlagSpec = value("--grace-secs", "N", "observation tail in seconds");
const SEED_FLAG: FlagSpec = value("--seed", "N", "simulation seed");
const QUICK_FLAG: FlagSpec = switch(
    "--quick",
    "use the shortened quick scenario instead of the paper-length one",
);
const IMPAIR_FLAG: FlagSpec = value(
    "--impair",
    "SPEC",
    "link impairments: a preset name or loss=F,dup=F,reorder=F,jitter=MS,flap=A:B:C",
);
const BOTTLENECK_FLAG: FlagSpec = value(
    "--bottleneck",
    "SPEC",
    "bottleneck link as MBIT/DELAY_MS/QUEUE_PKTS[/red]",
);
const TOPOLOGY_FLAG: FlagSpec = value(
    "--topology",
    "KIND:HOSTS",
    "generate a star/tree/multi-bottleneck topology with HOSTS end hosts",
);
const FLOWS_FLAG: FlagSpec = value(
    "--flows",
    "SPEC",
    "flow mix as ROLE=N[,ROLE=N...] (attacked, bulk, rr, syn); needs --topology",
);

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "list",
        summary: "implementations and named attacks",
        flags: &[],
    },
    CommandSpec {
        name: "baseline",
        summary: "run the no-attack scenario",
        flags: &[
            IMPL_FLAG,
            DATA_SECS_FLAG,
            GRACE_SECS_FLAG,
            SEED_FLAG,
            QUICK_FLAG,
            IMPAIR_FLAG,
            BOTTLENECK_FLAG,
            TOPOLOGY_FLAG,
            FLOWS_FLAG,
        ],
    },
    CommandSpec {
        name: "campaign",
        summary: "full state-based attack search (one Table I row)",
        flags: &[
            IMPL_FLAG,
            DATA_SECS_FLAG,
            GRACE_SECS_FLAG,
            SEED_FLAG,
            QUICK_FLAG,
            IMPAIR_FLAG,
            BOTTLENECK_FLAG,
            TOPOLOGY_FLAG,
            FLOWS_FLAG,
            value("--cap", "N", "test at most N strategies"),
            value("--budget", "EVENTS", "per-run simulator event budget"),
            value(
                "--baseline-reps",
                "K",
                "build the detection envelope from K seed-jittered baselines",
            ),
            value(
                "--deadline",
                "SECS",
                "per-run watchdog deadline; hung runs become `stalled`",
            ),
            value(
                "--chaos",
                "PLAN",
                "inject chaos faults (panics, stalls, journal, mayhem)",
            ),
            value("--tsv", "FILE", "export per-strategy outcomes as TSV"),
            value("--journal", "FILE", "stream outcomes to a JSONL journal"),
            switch("--resume", "reuse outcomes already in the journal"),
            value("--progress", "N", "progress line every N strategies"),
            switch("--no-memo", "disable cross-strategy memoization"),
            value(
                "--memo-store",
                "FILE",
                "persist the fingerprint verdict cache across runs",
            ),
            value("--manifest", "FILE", "write the observability run manifest"),
            switch("--observe-summary", "print the observability summary"),
            value(
                "--shards",
                "N",
                "run strategies across N worker processes (0 = in-process)",
            ),
            value(
                "--shard-listen",
                "ADDR",
                "listen on ADDR for externally launched shard workers",
            ),
            value(
                "--shard-timeout",
                "SECS",
                "declare a shard dead after SECS of wire silence (default 10)",
            ),
            value(
                "--heartbeat",
                "SECS",
                "worker keep-alive interval on the shard wire (default 2)",
            ),
            switch(
                "--insecure-bind",
                "allow --shard-listen on a non-loopback address",
            ),
        ],
    },
    CommandSpec {
        name: "shard-worker",
        summary: "connect to a campaign controller as a shard executor",
        flags: &[value(
            "--connect",
            "ADDR",
            "controller address printed by `snake campaign --shard-listen`",
        )],
    },
    CommandSpec {
        name: "replay",
        summary: "replay a named Table II attack",
        flags: &[value("--attack", "NAME", "attack to replay (`snake list`)")],
    },
    CommandSpec {
        name: "search-space",
        summary: "the §VI-C injection-model comparison",
        flags: &[],
    },
];

/// Flags parsed against one command's table. Duplicated flags keep the
/// last occurrence, mirroring most CLI conventions.
#[derive(Debug)]
struct ParsedFlags<'a> {
    values: Vec<(&'static str, Option<&'a str>)>,
}

impl<'a> ParsedFlags<'a> {
    fn has(&self, name: &str) -> bool {
        self.values.iter().any(|(n, _)| *n == name)
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    /// Parses a value flag into `T`, with the flag's own placeholder in
    /// the error message.
    fn parsed<T: std::str::FromStr>(&self, spec: &FlagSpec) -> Result<Option<T>, String> {
        match self.get(spec.name) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| {
                format!(
                    "{} expects {} (got `{raw}`)",
                    spec.name,
                    spec.arg.unwrap_or("a value")
                )
            }),
        }
    }

    /// Like [`parsed`](Self::parsed), but additionally rejects zero (and,
    /// for floats, NaN and negatives): the uniform parse-time guard for
    /// numeric flags whose zero is degenerate — `--cap 0` tests nothing,
    /// `--baseline-reps 0` anchors no envelope, `--deadline 0` quarantines
    /// every run — so they all fail with one message shape instead of
    /// surfacing as assorted downstream errors.
    fn parsed_positive<T>(&self, spec: &FlagSpec) -> Result<Option<T>, String>
    where
        T: std::str::FromStr + PartialOrd + Default,
    {
        match self.parsed::<T>(spec)? {
            // An explicit `partial_cmp` rather than `v <= 0` so a NaN
            // (which compares false both ways) is rejected too.
            Some(v) if v.partial_cmp(&T::default()) != Some(std::cmp::Ordering::Greater) => {
                Err(format!(
                    "{} expects a positive {} (got `{}`)",
                    spec.name,
                    spec.arg.unwrap_or("value"),
                    self.get(spec.name).unwrap_or_default()
                ))
            }
            other => Ok(other),
        }
    }
}

/// Finds a flag's spec inside a command table (the parser guarantees the
/// name exists; this is for typed lookups by callers).
fn flag_spec(command: &CommandSpec, name: &str) -> &'static FlagSpec {
    command
        .flags
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("flag {name} not declared for snake {}", command.name))
}

/// Walks `args` against the command's flag table: every token must be a
/// declared flag, and value flags must be followed by their argument.
fn parse_flags<'a>(command: &CommandSpec, args: &'a [String]) -> Result<ParsedFlags<'a>, String> {
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let token = args[i].as_str();
        let Some(spec) = command.flags.iter().find(|f| f.name == token) else {
            return Err(format!(
                "unknown flag `{token}` for `snake {}` (see `snake help`)",
                command.name
            ));
        };
        match spec.arg {
            None => {
                values.push((spec.name, None));
                i += 1;
            }
            Some(placeholder) => {
                let Some(value) = args.get(i + 1) else {
                    return Err(format!("{} expects {placeholder}", spec.name));
                };
                values.push((spec.name, Some(value.as_str())));
                i += 2;
            }
        }
    }
    Ok(ParsedFlags { values })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        name => match COMMANDS.iter().find(|c| c.name == name) {
            None => Err(format!("unknown command `{name}`")),
            Some(spec) => parse_flags(spec, &args[1..]).and_then(|flags| match spec.name {
                "list" => cmd_list(),
                "baseline" => cmd_baseline(spec, &flags),
                "campaign" => cmd_campaign(spec, &flags),
                "shard-worker" => cmd_shard_worker(&flags),
                "replay" => cmd_replay(&flags),
                "search-space" => cmd_search_space(),
                other => unreachable!("command {other} declared but not dispatched"),
            }),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

/// Renders the help text from [`COMMANDS`] — the same table the parser
/// uses, so help and behaviour cannot drift apart.
fn usage() {
    eprintln!("snake — state-based network attack explorer (SNAKE, DSN 2015 reproduction)\n");
    eprintln!("USAGE:");
    for command in COMMANDS {
        eprintln!("  snake {:<13} {}", command.name, command.summary);
        for flag in command.flags {
            let left = match flag.arg {
                Some(arg) => format!("{} {arg}", flag.name),
                None => flag.name.to_owned(),
            };
            eprintln!("      {left:<20} {}", flag.help);
        }
    }
    eprintln!("  snake help\n\nRun `snake list` for implementation and attack names.");
}

fn parse_impl(flags: &ParsedFlags<'_>) -> Result<ProtocolKind, String> {
    let name = flags.get("--impl").ok_or("missing --impl <name>")?;
    Ok(match name {
        "linux-3.0.0" => ProtocolKind::Tcp(Profile::linux_3_0_0()),
        "linux-3.13" => ProtocolKind::Tcp(Profile::linux_3_13()),
        "windows-8.1" => ProtocolKind::Tcp(Profile::windows_8_1()),
        "windows-95" => ProtocolKind::Tcp(Profile::windows_95()),
        "dccp" => ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        other => {
            return Err(format!(
                "unknown implementation `{other}` (try `snake list`)"
            ))
        }
    })
}

fn parse_scenario(command: &CommandSpec, flags: &ParsedFlags<'_>) -> Result<ScenarioSpec, String> {
    let protocol = parse_impl(flags)?;
    let mut builder = ScenarioSpec::builder(protocol);
    if flags.has("--quick") {
        builder = builder.quick();
    }
    if let Some(v) = flags.parsed(flag_spec(command, "--data-secs"))? {
        builder = builder.data_secs(v);
    }
    if let Some(v) = flags.parsed(flag_spec(command, "--grace-secs"))? {
        builder = builder.grace_secs(v);
    }
    if let Some(v) = flags.parsed(flag_spec(command, "--seed"))? {
        builder = builder.seed(v);
    }
    if let Some(raw) = flags.get("--bottleneck") {
        builder = builder.bottleneck(parse_bottleneck(raw)?);
    }
    if let Some(raw) = flags.get("--topology") {
        let (kind, hosts) = parse_topology(raw)?;
        builder = builder.topology(kind, hosts);
    }
    if let Some(raw) = flags.get("--flows") {
        builder = builder.flows(parse_flows(raw)?);
    }
    // Impairments go on last so they survive a `--bottleneck` override.
    if let Some(raw) = flags.get("--impair") {
        let impair = Impairment::parse(raw)
            .map_err(|e| format!("--impair: {e} (presets: {})", preset_names().join(", ")))?;
        builder = builder.impairment(impair);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Parses one component of a composite flag value (`--topology star:256`,
/// `--bottleneck 10/20/64`), with the same message shape as
/// [`ParsedFlags::parsed`].
fn parse_field<T: std::str::FromStr>(flag: &str, what: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} expects {what} (got `{raw}`)"))
}

/// Like [`parse_field`] but additionally rejects zero, negatives, and NaN
/// — the composite-value counterpart of [`ParsedFlags::parsed_positive`],
/// sharing its message shape.
fn parse_positive_field<T>(flag: &str, what: &str, raw: &str) -> Result<T, String>
where
    T: std::str::FromStr + PartialOrd + Default,
{
    let v: T = parse_field(flag, what, raw)?;
    if v.partial_cmp(&T::default()) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("{flag} expects a positive {what} (got `{raw}`)"));
    }
    Ok(v)
}

/// Parses `--bottleneck MBIT/DELAY_MS/QUEUE_PKTS[/red]` through
/// [`LinkSpec::try_new`], so degenerate links (zero bandwidth, zero queue)
/// are rejected before any simulation starts.
fn parse_bottleneck(raw: &str) -> Result<LinkSpec, String> {
    let parts: Vec<&str> = raw.split('/').collect();
    let (dims, red) = match parts.as_slice() {
        [bw, delay, queue] => ([*bw, *delay, *queue], false),
        [bw, delay, queue, "red"] => ([*bw, *delay, *queue], true),
        _ => {
            return Err(format!(
                "--bottleneck expects MBIT/DELAY_MS/QUEUE_PKTS[/red] (got `{raw}`)"
            ))
        }
    };
    let mbit: f64 = parse_positive_field("--bottleneck", "Mbit/s bandwidth", dims[0])?;
    let delay_ms: f64 = parse_field("--bottleneck", "delay in milliseconds", dims[1])?;
    if !mbit.is_finite() {
        return Err(format!(
            "--bottleneck expects a positive Mbit/s bandwidth (got `{}`)",
            dims[0]
        ));
    }
    if !delay_ms.is_finite() || delay_ms < 0.0 {
        return Err(format!(
            "--bottleneck expects a non-negative delay in milliseconds (got `{}`)",
            dims[1]
        ));
    }
    let queue: usize = parse_positive_field("--bottleneck", "queue packet count", dims[2])?;
    let spec = LinkSpec::try_new(
        (mbit * 1e6) as u64,
        SimDuration::from_secs_f64(delay_ms / 1e3),
        queue,
    )
    .map_err(|e| format!("--bottleneck: {e}"))?;
    Ok(if red { spec.with_red() } else { spec })
}

/// Parses `--topology KIND:HOSTS` (e.g. `star:256`).
fn parse_topology(raw: &str) -> Result<(TopologyKind, usize), String> {
    let Some((kind_raw, hosts_raw)) = raw.split_once(':') else {
        return Err(format!("--topology expects KIND:HOSTS (got `{raw}`)"));
    };
    let kind = TopologyKind::from_label(kind_raw).ok_or_else(|| {
        format!("--topology expects a kind of star, tree, or multi-bottleneck (got `{kind_raw}`)")
    })?;
    let hosts = parse_positive_field("--topology", "HOSTS count", hosts_raw)?;
    Ok((kind, hosts))
}

/// Parses `--flows ROLE=N[,ROLE=N...]` (e.g. `attacked=200,bulk=16,syn=32`).
fn parse_flows(raw: &str) -> Result<Vec<FlowGroup>, String> {
    raw.split(',')
        .map(|part| {
            let Some((role_raw, count_raw)) = part.split_once('=') else {
                return Err(format!("--flows expects ROLE=N[,ROLE=N...] (got `{part}`)"));
            };
            let role = FlowRole::from_label(role_raw).ok_or_else(|| {
                format!(
                    "--flows expects a role of attacked, bulk, request-response, or syn-pressure \
                     (got `{role_raw}`)"
                )
            })?;
            let count = parse_positive_field("--flows", "flow count", count_raw)?;
            Ok(FlowGroup { role, count })
        })
        .collect()
}

fn cmd_list() -> Result<(), String> {
    println!("implementations (--impl):");
    for (name, desc) in IMPLEMENTATIONS {
        println!("  {name:<22} {desc}");
    }
    println!("\nattacks (--attack):");
    for (name, desc) in ATTACKS {
        println!("  {name:<22} {desc}");
    }
    Ok(())
}

fn cmd_baseline(command: &CommandSpec, flags: &ParsedFlags<'_>) -> Result<(), String> {
    let spec = parse_scenario(command, flags)?;
    let m = Executor::run(&spec, None);
    println!("implementation : {}", spec.protocol().implementation_name());
    println!(
        "data phase     : {} s (+{} s observation)",
        spec.data_secs(),
        spec.grace_secs()
    );
    println!(
        "target flow    : {} bytes ({:.2} Mbit/s)",
        m.target_bytes,
        mbps(m.target_bytes, spec.data_secs())
    );
    println!(
        "competing flow : {} bytes ({:.2} Mbit/s)",
        m.competing_bytes,
        mbps(m.competing_bytes, spec.data_secs())
    );
    println!("leaked sockets : {}", m.leaked_sockets);
    println!("packets seen   : {}", m.proxy.packets_seen);
    println!(
        "final states   : client {} / server {}",
        m.proxy.client_final_state, m.proxy.server_final_state
    );
    Ok(())
}

/// Assembles the campaign configuration from the parsed flags — split out
/// of [`cmd_campaign`] so every flag validation (including the uniform
/// positive-value guards) is unit-testable without running a campaign.
fn campaign_config(
    command: &CommandSpec,
    flags: &ParsedFlags<'_>,
    observer: Option<Arc<Recorder>>,
) -> Result<CampaignConfig, String> {
    let mut spec = parse_scenario(command, flags)?;
    if let Some(budget) = flags.parsed_positive(flag_spec(command, "--budget"))? {
        spec = spec.with_event_budget(budget);
    }
    let mut builder = CampaignConfig::builder(spec).memoize(!flags.has("--no-memo"));
    if let Some(cap) = flags.parsed_positive(flag_spec(command, "--cap"))? {
        builder = builder.cap(cap);
    }
    if let Some(path) = flags.get("--journal") {
        builder = builder.journal(path);
    }
    if flags.has("--resume") {
        builder = builder.resume(true);
    }
    if let Some(every) = flags.parsed(flag_spec(command, "--progress"))? {
        builder = builder.progress_every(every);
    }
    if let Some(reps) = flags.parsed_positive(flag_spec(command, "--baseline-reps"))? {
        builder = builder.baseline_reps(reps);
    }
    if let Some(secs) = parse_finite_secs(flags, flag_spec(command, "--deadline"))? {
        builder = builder.deadline(Duration::from_secs_f64(secs));
    }
    if let Some(path) = flags.get("--memo-store") {
        builder = builder.memo_store(path);
    }
    if let Some(name) = flags.get("--chaos") {
        let plan = ChaosPlan::preset(name).ok_or_else(|| {
            let names: Vec<&str> = ChaosPlan::presets().iter().map(|(n, _)| *n).collect();
            format!("unknown chaos plan `{name}` (try {})", names.join(", "))
        })?;
        builder = builder.chaos(plan);
    }
    if let Some(shards) = flags.parsed(flag_spec(command, "--shards"))? {
        builder = builder.shards(shards);
    }
    if let Some(addr) = flags.get("--shard-listen") {
        builder = builder.shard_listen(addr);
    }
    // The two wire deadlines share --deadline's float handling: positive,
    // finite seconds, converted to a Duration at parse time.
    if let Some(secs) = parse_finite_secs(flags, flag_spec(command, "--shard-timeout"))? {
        builder = builder.shard_timeout(Duration::from_secs_f64(secs));
    }
    if let Some(secs) = parse_finite_secs(flags, flag_spec(command, "--heartbeat"))? {
        builder = builder.heartbeat(Duration::from_secs_f64(secs));
    }
    if flags.has("--insecure-bind") {
        builder = builder.insecure_bind(true);
    }
    if let Some(recorder) = observer {
        builder = builder.observer(recorder);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Parses a seconds-valued flag as a positive, *finite* float — the shared
/// guard of `--deadline`, `--shard-timeout` and `--heartbeat`, keeping
/// their message shape identical to [`ParsedFlags::parsed_positive`].
fn parse_finite_secs(flags: &ParsedFlags<'_>, spec: &FlagSpec) -> Result<Option<f64>, String> {
    match flags.parsed_positive::<f64>(spec)? {
        Some(secs) if !secs.is_finite() => Err(format!(
            "{} expects a positive {} (got `{}`)",
            spec.name,
            spec.arg.unwrap_or("SECS"),
            flags.get(spec.name).unwrap_or_default()
        )),
        other => Ok(other),
    }
}

/// `snake shard-worker --connect ADDR` — the executor half of the
/// controller/executor split. Normally spawned by the controller itself
/// (`--shards N`); invoked by hand only against `--shard-listen`.
fn cmd_shard_worker(flags: &ParsedFlags<'_>) -> Result<(), String> {
    let addr = flags.get("--connect").ok_or("missing --connect <ADDR>")?;
    snake_core::run_shard_worker(addr).map_err(|e| format!("shard worker: {e}"))
}

fn cmd_campaign(command: &CommandSpec, flags: &ParsedFlags<'_>) -> Result<(), String> {
    let memoize = !flags.has("--no-memo");
    let manifest_path = flags.get("--manifest");
    let observe_summary = flags.has("--observe-summary");
    // The recorder only exists when someone will read it; otherwise the
    // campaign keeps the default no-op observer and pays nothing.
    let recorder = (manifest_path.is_some() || observe_summary).then(|| Arc::new(Recorder::new()));
    let config = campaign_config(command, flags, recorder.clone())?;

    let start = Instant::now();
    let result = Campaign::run(config).map_err(|e| e.to_string())?;
    let wall_secs = start.elapsed().as_secs_f64();
    eprintln!(
        "{} strategies in {:.1?} ({} errored, {} truncated, {} stalled)",
        result.strategies_tried(),
        start.elapsed(),
        result.errored(),
        result.truncated(),
        result.stalled()
    );
    if result.baseline_reps > 1 {
        eprintln!(
            "ensemble: {} baselines, envelope width ±{:.1}%, {} borderline verdict(s) escalated",
            result.baseline_reps,
            100.0 * result.envelope.target_width_fraction(),
            result.escalated
        );
    }
    if result.stalls > 0 || result.quarantined > 0 {
        eprintln!(
            "watchdog: {} stall(s) observed, {} strateg(ies) quarantined",
            result.stalls, result.quarantined
        );
    }
    if memoize {
        let tried = result.strategies_tried().max(1);
        eprintln!(
            "memoization: {} memo hits, {} short-circuits ({:.1}% / {:.1}% of strategies)",
            result.memo_hits,
            result.short_circuits,
            100.0 * result.memo_hits as f64 / tried as f64,
            100.0 * result.short_circuits as f64 / tried as f64
        );
    }
    if let Some(store) = &result.memo_store {
        eprintln!(
            "memo store: {} entries loaded ({} for this scope, {} skipped), \
             {} cross-run hits / {} eligible ({:.1}%), {} appended{}",
            store.entries_loaded,
            store.entries_valid,
            store.entries_skipped,
            store.cross_run_hits,
            store.eligible_runs,
            100.0 * store.hit_rate(),
            store.appended,
            if store.write_failures > 0 {
                format!(
                    ", {} write failure(s) — persistence disabled",
                    store.write_failures
                )
            } else {
                String::new()
            }
        );
    } else if flags.get("--memo-store").is_some() {
        eprintln!("memo store: inactive (memoization is forced off this run)");
    }
    if result.resumed > 0 {
        eprintln!(
            "resumed {} outcomes from the journal ({} malformed lines skipped)",
            result.resumed, result.journal_lines_skipped
        );
    }
    println!("{}", render_table1(std::slice::from_ref(&result)));
    println!("{}", render_table2(std::slice::from_ref(&result)));
    if let Some(path) = flags.get("--tsv") {
        std::fs::write(path, result.export_outcomes_tsv())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote per-strategy outcomes to {path}");
    }
    if let Some(recorder) = &recorder {
        let snapshot = recorder.snapshot();
        let manifest = build_run_manifest(&result, &snapshot, wall_secs);
        if let Some(path) = manifest_path {
            let json = manifest.to_json().to_string_compact();
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote run manifest to {path}");
        }
        if observe_summary {
            print_observe_summary(&snapshot, result.memo_store.as_ref(), wall_secs);
        }
    }
    Ok(())
}

/// Human-oriented digest of the recorder snapshot (`--observe-summary`).
fn print_observe_summary(
    snapshot: &snake_core::RecorderSnapshot,
    memo_store: Option<&snake_core::MemoStoreReport>,
    wall_secs: f64,
) {
    eprintln!("observability summary ({wall_secs:.2}s wall clock):");
    eprintln!(
        "  runs: {} from scratch, {} forked, {} elided, {} halted",
        snapshot.counter("exec.runs.from_scratch"),
        snapshot.counter("exec.runs.forked"),
        snapshot.counter("exec.runs.elided"),
        snapshot.counter("exec.runs.halted"),
    );
    if let Some(store) = memo_store {
        eprintln!(
            "  memo store: {} loaded / {} valid / {} skipped, {} cross-run hits of {} eligible, {} appended",
            store.entries_loaded,
            store.entries_valid,
            store.entries_skipped,
            store.cross_run_hits,
            store.eligible_runs,
            store.appended,
        );
    }
    eprintln!(
        "  netsim: {} events, {} timers cancelled, {} purged, {} queue compactions",
        snapshot.counter("netsim.events"),
        snapshot.counter("netsim.timers_cancelled"),
        snapshot.counter("netsim.timers_purged"),
        snapshot.counter("netsim.queue_compactions"),
    );
    eprintln!(
        "  netsim queue/arena: {} summed depth high-water, {} arena allocs, {} arena reuses",
        snapshot.counter("netsim.queue.depth_hwm"),
        snapshot.counter("netsim.arena.alloc"),
        snapshot.counter("netsim.arena.reuse"),
    );
    eprintln!(
        "  forks: {} snapshot captures ({} bytes), {} run forks ({} bytes)",
        snapshot.counter("netsim.snapshot_forks"),
        snapshot.counter("netsim.snapshot_clone_bytes"),
        snapshot.counter("netsim.forks"),
        snapshot.counter("netsim.fork_clone_bytes"),
    );
    let impair_events: u64 = [
        "netsim.impair.lost",
        "netsim.impair.duplicated",
        "netsim.impair.corrupted",
        "netsim.impair.reordered",
        "netsim.impair.flap_dropped",
    ]
    .iter()
    .map(|name| snapshot.counter(name))
    .sum();
    if impair_events > 0 {
        eprintln!(
            "  impairments: {} lost, {} duplicated, {} corrupted, {} reordered, {} flap-dropped",
            snapshot.counter("netsim.impair.lost"),
            snapshot.counter("netsim.impair.duplicated"),
            snapshot.counter("netsim.impair.corrupted"),
            snapshot.counter("netsim.impair.reordered"),
            snapshot.counter("netsim.impair.flap_dropped"),
        );
    }
    for (name, (count, wall_nanos)) in snapshot.span_totals() {
        eprintln!(
            "  {name}: {count} span(s), {:.3}s wall",
            wall_nanos as f64 / 1e9
        );
    }
    if let Some(busy) = snapshot.histograms.get("worker.busy_nanos") {
        eprintln!(
            "  workers: {} batch-worker lifetimes, mean busy {:.3}s",
            busy.count,
            busy.mean() as f64 / 1e9
        );
    }
    if snapshot.counter("shard.workers") > 0 {
        let busy = snapshot.histograms.get("shard.busy_nanos");
        let idle = snapshot.histograms.get("shard.idle_nanos");
        eprintln!(
            "  shards: {} worker(s), {} range(s) dispatched ({} re-dispatched), \
             {} outcome batch(es), mean busy {:.3}s / idle {:.3}s",
            snapshot.counter("shard.workers"),
            snapshot.counter("shard.ranges_dispatched"),
            snapshot.counter("shard.ranges_redispatched"),
            snapshot.counter("shard.outcome_batches"),
            busy.map_or(0.0, |h| h.mean() as f64 / 1e9),
            idle.map_or(0.0, |h| h.mean() as f64 / 1e9),
        );
        eprintln!(
            "  shard recovery: {} heartbeat(s) sent / {} missed, {} reconnect(s), \
             segments {} written / {} merged / {} discarded",
            snapshot.counter("shard.heartbeat.sent"),
            snapshot.counter("shard.heartbeat.missed"),
            snapshot.counter("shard.reconnects"),
            snapshot.counter("shard.segments.written"),
            snapshot.counter("shard.segments.merged"),
            snapshot.counter("shard.segments.discarded"),
        );
    }
}

fn cmd_replay(flags: &ParsedFlags<'_>) -> Result<(), String> {
    let name = flags.get("--attack").ok_or("missing --attack <name>")?;
    let (protocol, strategy) = named_attack(name)?;
    let spec = ScenarioSpec::evaluation(protocol);
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy.clone()));
    let verdict = detect(&baseline, &attacked, DEFAULT_THRESHOLD);
    println!("attack   : {name}");
    println!("strategy : {}", strategy.describe());
    println!("impl     : {}", spec.protocol().implementation_name());
    println!(
        "baseline : {:.2} Mbit/s, attacked: {:.2} Mbit/s",
        mbps(baseline.target_bytes, spec.data_secs()),
        mbps(attacked.target_bytes, spec.data_secs())
    );
    println!(
        "sockets  : {} leaked (CLOSE_WAIT {}, queue-wedged {})",
        attacked.leaked_sockets, attacked.leaked_close_wait, attacked.leaked_with_queue
    );
    println!(
        "verdict  : flagged={} {:?}",
        verdict.flagged(),
        verdict.labels()
    );
    Ok(())
}

fn named_attack(name: &str) -> Result<(ProtocolKind, Strategy), String> {
    let on_packet = |endpoint, state: &str, ptype: &str, attack| Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint,
            state: state.into(),
            packet_type: ptype.into(),
            attack,
        },
    };
    Ok(match name {
        "close-wait" => (
            ProtocolKind::Tcp(Profile::linux_3_0_0()),
            on_packet(
                Endpoint::Client,
                "FIN_WAIT_1",
                "RST",
                BasicAttack::Drop { percent: 100 },
            ),
        ),
        "dupack-spoofing" => (
            ProtocolKind::Tcp(Profile::windows_95()),
            on_packet(
                Endpoint::Client,
                "ESTABLISHED",
                "ACK",
                BasicAttack::Duplicate { copies: 2 },
            ),
        ),
        "dupack-rate-limiting" => (
            ProtocolKind::Tcp(Profile::windows_8_1()),
            on_packet(
                Endpoint::Server,
                "ESTABLISHED",
                "PSH+ACK",
                BasicAttack::Duplicate { copies: 10 },
            ),
        ),
        "reset" | "syn-reset" => (
            ProtocolKind::Tcp(Profile::linux_3_13()),
            Strategy {
                id: 1,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: if name == "reset" { "RST" } else { "SYN" }.into(),
                        direction: InjectDirection::ToClient,
                        stride: 65_535,
                        count: 66_000,
                        rate_pps: 20_000,
                        inert: false,
                    },
                },
            },
        ),
        "ack-mung" => (
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
            on_packet(
                Endpoint::Client,
                "OPEN",
                "ACK",
                BasicAttack::Drop { percent: 100 },
            ),
        ),
        "ack-seq-mod" => (
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
            on_packet(
                Endpoint::Client,
                "OPEN",
                "ACK",
                BasicAttack::Lie {
                    field: "seq".into(),
                    mutation: FieldMutation::Add(25),
                },
            ),
        ),
        "request-termination" => (
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
            Strategy {
                id: 1,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "REQUEST".into(),
                    attack: InjectionAttack::Inject {
                        packet_type: "SYNC".into(),
                        seq: SeqChoice::Random,
                        direction: InjectDirection::ToClient,
                        repeat: 3,
                    },
                },
            },
        ),
        other => return Err(format!("unknown attack `{other}` (try `snake list`)")),
    })
}

fn cmd_search_space() -> Result<(), String> {
    println!("Search-space comparison (paper §VI-C, published parameters):\n");
    println!("{}", SearchSpaceParams::paper().render());
    Ok(())
}

fn mbps(bytes: u64, secs: u64) -> f64 {
    bytes as f64 * 8.0 / secs.max(1) as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign_spec() -> &'static CommandSpec {
        COMMANDS.iter().find(|c| c.name == "campaign").unwrap()
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    /// Runs the full flag-parse → config-build pipeline the way `main`
    /// does, returning the error a user would see.
    fn config_err(extra: &[&str]) -> String {
        let mut all = vec!["--impl", "linux-3.13", "--quick"];
        all.extend_from_slice(extra);
        let owned = args(&all);
        let spec = campaign_spec();
        parse_flags(spec, &owned)
            .and_then(|flags| campaign_config(spec, &flags, None).map(|_| ()))
            .expect_err("degenerate flags must be rejected")
    }

    #[test]
    fn help_table_is_well_formed() {
        // The parser and `snake help` read the same table; a malformed
        // entry would corrupt both.
        for command in COMMANDS {
            assert!(!command.summary.is_empty(), "{}", command.name);
            for flag in command.flags {
                assert!(flag.name.starts_with("--"), "{}", flag.name);
                assert!(!flag.help.is_empty(), "{}", flag.name);
            }
        }
    }

    #[test]
    fn unknown_flags_and_missing_values_are_parse_errors() {
        let spec = campaign_spec();
        let err = parse_flags(spec, &args(&["--nope"])).unwrap_err();
        assert!(err.contains("unknown flag `--nope`"), "{err}");
        assert!(err.contains("snake campaign"), "{err}");
        let err = parse_flags(spec, &args(&["--cap"])).unwrap_err();
        assert!(err.contains("--cap expects N"), "{err}");
    }

    #[test]
    fn duplicated_flags_keep_the_last_occurrence() {
        let spec = campaign_spec();
        let owned = args(&["--cap", "3", "--cap", "7"]);
        let flags = parse_flags(spec, &owned).unwrap();
        assert_eq!(flags.get("--cap"), Some("7"));
    }

    #[test]
    fn degenerate_numerics_are_rejected_uniformly_at_parse_time() {
        // Every zero/negative/NaN numeric fails with the one shared
        // message shape, instead of an assorted downstream error.
        for (flags, offender) in [
            (&["--cap", "0"][..], "--cap"),
            (&["--budget", "0"][..], "--budget"),
            (&["--baseline-reps", "0"][..], "--baseline-reps"),
            (&["--deadline", "0"][..], "--deadline"),
            (&["--deadline", "-1"][..], "--deadline"),
            (&["--deadline", "NaN"][..], "--deadline"),
            (&["--deadline", "inf"][..], "--deadline"),
            (&["--shard-timeout", "0"][..], "--shard-timeout"),
            (&["--shard-timeout", "inf"][..], "--shard-timeout"),
            (&["--heartbeat", "0"][..], "--heartbeat"),
            (&["--heartbeat", "NaN"][..], "--heartbeat"),
        ] {
            let err = config_err(flags);
            assert!(
                err.contains(offender) && err.contains("expects a positive"),
                "{flags:?}: {err}"
            );
        }
        // Non-numeric garbage still reports the placeholder.
        let err = config_err(&["--cap", "many"]);
        assert!(err.contains("--cap expects N"), "{err}");
        // Zero remains valid where it is meaningful: `--progress 0` = off,
        // `--seed 0` is a seed like any other.
        let owned = args(&[
            "--impl",
            "linux-3.13",
            "--quick",
            "--progress",
            "0",
            "--seed",
            "0",
        ]);
        let spec = campaign_spec();
        let flags = parse_flags(spec, &owned).unwrap();
        campaign_config(spec, &flags, None).expect("zero progress/seed are valid");
    }

    #[test]
    fn topology_and_flows_rows_share_the_uniform_error_shape() {
        // Malformed composite values fail through the same
        // `parse_field`/`parse_positive_field` helpers as every other
        // numeric flag, so the message shape is uniform.
        for (flags, offender, fragment) in [
            (&["--topology", "star"][..], "--topology", "KIND:HOSTS"),
            (
                &["--topology", "ring:64", "--flows", "attacked=1"][..],
                "--topology",
                "star, tree, or multi-bottleneck",
            ),
            (
                &["--topology", "star:0", "--flows", "attacked=1"][..],
                "--topology",
                "expects a positive HOSTS count",
            ),
            (
                &["--topology", "star:x", "--flows", "attacked=1"][..],
                "--topology",
                "HOSTS count (got `x`)",
            ),
            (
                &["--topology", "star:64", "--flows", "attacked"][..],
                "--flows",
                "ROLE=N",
            ),
            (
                &["--topology", "star:64", "--flows", "mystery=4"][..],
                "--flows",
                "attacked, bulk, request-response, or syn-pressure",
            ),
            (
                &["--topology", "star:64", "--flows", "attacked=0"][..],
                "--flows",
                "expects a positive flow count",
            ),
        ] {
            let err = config_err(flags);
            assert!(
                err.contains(offender) && err.contains(fragment),
                "{flags:?}: {err}"
            );
        }
    }

    #[test]
    fn topology_and_flows_cross_requirements_surface_builder_errors() {
        // Builder-level validation (not flag parsing) catches the
        // half-specified combinations.
        let err = config_err(&["--topology", "star:64"]);
        assert!(err.contains("flow mix"), "{err}");
        let err = config_err(&["--flows", "attacked=4"]);
        assert!(err.contains("generated topology"), "{err}");
        let err = config_err(&["--topology", "star:64", "--flows", "bulk=4"]);
        assert!(err.contains("exactly one attacked group"), "{err}");
        // A complete multi-flow invocation builds cleanly.
        let owned = args(&[
            "--impl",
            "linux-3.13",
            "--quick",
            "--topology",
            "star:64",
            "--flows",
            "attacked=8,bulk=4,rr=4,syn=4",
        ]);
        let spec = campaign_spec();
        let flags = parse_flags(spec, &owned).unwrap();
        campaign_config(spec, &flags, None).expect("valid multi-flow invocation");
    }

    #[test]
    fn bottleneck_row_rejects_degenerates_through_shared_helpers() {
        for (raw, fragment) in [
            ("10/20", "MBIT/DELAY_MS/QUEUE_PKTS"),
            ("0/20/64", "expects a positive Mbit/s bandwidth"),
            ("inf/20/64", "expects a positive Mbit/s bandwidth"),
            ("10/-1/64", "non-negative delay"),
            ("10/20/0", "expects a positive queue packet count"),
        ] {
            let err = config_err(&["--bottleneck", raw]);
            assert!(
                err.contains("--bottleneck") && err.contains(fragment),
                "{raw}: {err}"
            );
        }
    }

    #[test]
    fn memo_store_flag_is_wired_and_contradiction_is_caught() {
        let spec = campaign_spec();
        let owned = args(&[
            "--impl",
            "linux-3.13",
            "--quick",
            "--memo-store",
            "/tmp/store.jsonl",
            "--no-memo",
        ]);
        let flags = parse_flags(spec, &owned).unwrap();
        let err = campaign_config(spec, &flags, None).unwrap_err();
        assert!(err.contains("memo_store requires memoize"), "{err}");
    }

    #[test]
    fn shard_flags_are_wired_and_validated() {
        let spec = campaign_spec();
        // --shard-listen without --shards is a config-build error.
        let err = config_err(&["--shard-listen", "127.0.0.1:0"]);
        assert!(err.contains("require shards > 0"), "{err}");
        // Sharding cannot combine with *evaluation-side* fault injection…
        let err = config_err(&["--shards", "2", "--chaos", "panics"]);
        assert!(err.contains("fault injection"), "{err}");
        // …while wire chaos exists only for sharded runs.
        let err = config_err(&["--chaos", "wire-drop"]);
        assert!(err.contains("shards"), "{err}");
        // The wire deadlines and the insecure-bind acknowledgment are
        // meaningless without their counterpart flags.
        let err = config_err(&["--shard-timeout", "5"]);
        assert!(err.contains("require shards > 0"), "{err}");
        let err = config_err(&["--shards", "2", "--heartbeat", "30"]);
        assert!(err.contains("heartbeat"), "{err}");
        let err = config_err(&["--insecure-bind"]);
        assert!(err.contains("insecure_bind"), "{err}");
        // A non-loopback listen address needs the explicit acknowledgment.
        let err = config_err(&["--shards", "2", "--shard-listen", "0.0.0.0:0"]);
        assert!(err.contains("--insecure-bind"), "{err}");
        // --shards 0 is the explicit in-process default; a positive count
        // with a listen address (loopback, or acknowledged non-loopback),
        // wire chaos, or explicit deadlines builds cleanly.
        for extra in [
            &["--shards", "0"][..],
            &["--shards", "4"][..],
            &["--shards", "2", "--shard-listen", "127.0.0.1:0"][..],
            &[
                "--shards",
                "2",
                "--shard-listen",
                "0.0.0.0:0",
                "--insecure-bind",
            ][..],
            &["--shards", "2", "--chaos", "wire-drop"][..],
            &["--shards", "2", "--chaos", "controller-kill"][..],
            &[
                "--shards",
                "2",
                "--shard-timeout",
                "5",
                "--heartbeat",
                "0.5",
            ][..],
        ] {
            let mut all = vec!["--impl", "linux-3.13", "--quick"];
            all.extend_from_slice(extra);
            let owned = args(&all);
            let flags = parse_flags(spec, &owned).unwrap();
            campaign_config(spec, &flags, None).expect("valid shard flags");
        }
    }

    #[test]
    fn worker_connect_to_a_dead_controller_fails_with_the_stable_shape() {
        // The bounded-retry connect path surfaces one stable message —
        // address, attempt count, elapsed time, underlying cause — so
        // scripts driving `snake shard-worker --connect` can match on it.
        // Port reserved via a bound-then-dropped listener, so nothing is
        // listening there.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let started = Instant::now();
        let err = snake_core::connect_with_backoff(&addr, 2, Duration::from_millis(5))
            .expect_err("nothing is listening");
        assert!(
            started.elapsed() >= Duration::from_millis(5),
            "must back off"
        );
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("could not connect to controller at {addr}")),
            "{msg}"
        );
        assert!(msg.contains("2 attempt(s) over"), "{msg}");
    }
}
