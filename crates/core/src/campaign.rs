use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use snake_netsim::FxHashMap;
use snake_observe::{self as observe, Observer};
use snake_proxy::{InjectionAttack, Strategy, StrategyKind};

use crate::attacks::{classify, cluster_attacks, AttackFinding};
use crate::detect::{baseline_valid, detect_enveloped, Envelope, Verdict, DEFAULT_THRESHOLD};
use crate::journal::{self, JournalHeader, JournalWriter};
use crate::memostore::{scenario_digest, MemoStore, MemoStoreReport, StoreScope};
use crate::scenario::{Executor, ExecutorOptions, PlannedExecutor, ScenarioSpec, TestMetrics};
use crate::segment::{self, SegmentEntry};
use crate::shard::{
    intern_counter, PoolWait, ShardEvent, ShardPool, DEFAULT_HEARTBEAT, DEFAULT_SHARD_TIMEOUT,
};
use crate::strategen::{generate_strategies, is_on_path, is_self_denial, GenerationParams};

/// Configuration of one campaign: one implementation under test, searched
/// exhaustively with the state-based strategy generator.
///
/// Built exclusively through [`CampaignConfig::builder`], which validates
/// the whole configuration once at
/// [`build`](CampaignConfigBuilder::build) time — so a `CampaignConfig`
/// that exists is a `CampaignConfig` that can run. The fields are private
/// on purpose: a public-field-mutation pattern would let callers assemble
/// configurations no validation ever saw (zero feedback rounds, `resume`
/// without a journal).
#[derive(Clone)]
pub struct CampaignConfig {
    // The scenario every strategy is tested in.
    pub(crate) scenario: ScenarioSpec,
    // Basic-attack parameter lists.
    pub(crate) params: GenerationParams,
    // Detection threshold (the paper's 50 %).
    pub(crate) threshold: f64,
    // Executor worker threads (the paper ran five executors).
    pub(crate) parallelism: usize,
    // Optional cap on the number of strategies to test (for quick runs).
    pub(crate) max_strategies: Option<usize>,
    // Feedback rounds of strategy generation: round 0 uses the baseline's
    // observations, later rounds add strategies for states first exposed
    // by attack runs.
    pub(crate) feedback_rounds: usize,
    // Re-test flagged strategies under a different seed (§V-A).
    pub(crate) retest: bool,
    // Streaming JSONL journal path.
    pub(crate) journal: Option<PathBuf>,
    // Reuse journaled outcomes instead of re-running them.
    pub(crate) resume: bool,
    // Progress line to stderr every N completed strategies (0 = off).
    pub(crate) progress_every: usize,
    // Fork baseline snapshots instead of replaying the attack-free prefix.
    pub(crate) snapshot_fork: bool,
    // Cross-strategy memoization (inert elision, class sharing,
    // fingerprint cache, no-op halt).
    pub(crate) memoize: bool,
    // Persistent cross-run fingerprint→verdict store path.
    pub(crate) memo_store: Option<PathBuf>,
    // Test-only fault injection inside the panic isolation boundary.
    pub(crate) fault_hook: Option<FaultHook>,
    // Deterministic chaos injection (panics, stalls, journal faults).
    pub(crate) chaos: Option<ChaosPlan>,
    // Ensemble size: how many seed-jittered no-attack baselines anchor
    // the detection envelope (1 = the legacy single baseline).
    pub(crate) baseline_reps: usize,
    // Per-evaluation wall-clock watchdog deadline (None = no watchdog).
    pub(crate) deadline: Option<Duration>,
    // How many times a stalled evaluation is retried before quarantine.
    pub(crate) stall_retries: usize,
    // Initial backoff between stall retries (doubles each attempt).
    pub(crate) stall_backoff: Duration,
    // Observability sink threaded through the executors and workers.
    pub(crate) observer: Arc<dyn Observer>,
    // Worker processes to shard strategy execution across (0 = in-process).
    pub(crate) shards: usize,
    // Listen address for externally launched shard workers (requires
    // `shards > 0`; workers are not spawned, the controller waits).
    pub(crate) shard_listen: Option<String>,
    // Worker binary override (defaults to the current executable).
    pub(crate) shard_worker_bin: Option<PathBuf>,
    // Read deadline on the shard wire: a worker silent for longer than
    // this (no outcome, no heartbeat) is declared dead — applies to the
    // handshake and to mid-evaluation reads alike.
    pub(crate) shard_timeout: Duration,
    // Interval at which shard workers send keep-alive heartbeats.
    pub(crate) heartbeat: Duration,
    // Explicit acknowledgment required to bind `shard_listen` to a
    // non-loopback address (the wire is digest-checked, not
    // authenticated).
    pub(crate) insecure_bind: bool,
}

/// Fault-injection hook called before each strategy evaluation, inside the
/// panic isolation boundary (see [`CampaignConfigBuilder::fault_hook`]).
pub type FaultHook = Arc<dyn Fn(&Strategy) + Send + Sync>;

/// A deterministic chaos schedule, generalizing the one-off
/// [`FaultHook`]: worker panics, evaluation stalls, and journal write
/// faults are injected by strategy id (and write ordinal), so the same
/// plan perturbs the same runs every time. Like a fault hook, an active
/// *evaluation* fault forces memoization off — an elided strategy would
/// never meet its scheduled fault.
///
/// The `wire_*`, `hang_worker_after` and `kill_controller_at` fields are
/// the distributed-campaign fault lane: they perturb the shard wire (by
/// outcome-frame ordinal, heartbeats excluded so timing noise cannot
/// change which frame is hit), hang a worker mid-campaign, or kill the
/// whole controller process at a chosen admission index. Wire faults
/// require `shards > 0` and leave evaluation untouched, so memoization
/// stays on and recovery must reproduce the unperturbed output exactly.
///
/// Chaos plans exist to prove the campaign runtime survives its
/// environment: panics must isolate, stalls must trip the watchdog,
/// journal faults must be retried, broken wires must re-dispatch, and a
/// killed controller must resume from worker segments — all without
/// changing which strategies get tested or what they produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// Panic inside the evaluation of every strategy whose id is a
    /// multiple of this (`None` = no injected panics).
    pub panic_every: Option<u64>,
    /// Stall (sleep) inside the evaluation of every strategy whose id is a
    /// multiple of this.
    pub stall_every: Option<u64>,
    /// How long an injected stall sleeps, in milliseconds.
    pub stall_for_ms: u64,
    /// Fail every Nth journal write with a transient I/O error (the
    /// campaign's single bounded retry must absorb it).
    pub journal_fail_every: Option<u64>,
    /// Drop every Nth outcome frame on the controller's read path. The
    /// shard then answers out of contract and is killed; its range is
    /// re-dispatched.
    pub wire_drop_every: Option<u64>,
    /// Truncate every Nth outcome frame (torn line: checksum missing).
    pub wire_truncate_every: Option<u64>,
    /// Corrupt every Nth outcome frame (payload flipped under an intact
    /// length: checksum mismatch).
    pub wire_corrupt_every: Option<u64>,
    /// Delay every Nth outcome frame by [`wire_delay_ms`](Self::wire_delay_ms)
    /// before delivering it (a slow-but-alive worker; nothing may die).
    pub wire_delay_every: Option<u64>,
    /// How long a delayed frame is held, in milliseconds.
    pub wire_delay_ms: u64,
    /// Make shard 0's initial worker go silent (heartbeats stopped, wire
    /// open, process alive) after sending this many outcomes — the shape
    /// of a livelocked worker; the controller's read deadline must fire.
    pub hang_worker_after: Option<u64>,
    /// Kill the whole controller process (exit code 23) immediately after
    /// admitting and journaling this many outcomes. A subsequent resume
    /// must rebuild the identical result from journal plus segments.
    pub kill_controller_at: Option<u64>,
}

/// An all-`None` plan, the base the presets patch (struct-update syntax
/// keeps each preset to the fields it actually sets).
const NO_CHAOS: ChaosPlan = ChaosPlan {
    panic_every: None,
    stall_every: None,
    stall_for_ms: 0,
    journal_fail_every: None,
    wire_drop_every: None,
    wire_truncate_every: None,
    wire_corrupt_every: None,
    wire_delay_every: None,
    wire_delay_ms: 0,
    hang_worker_after: None,
    kill_controller_at: None,
};

impl ChaosPlan {
    /// Built-in plans for the chaos test matrix.
    pub fn presets() -> &'static [(&'static str, ChaosPlan)] {
        const PRESETS: &[(&str, ChaosPlan)] = &[
            (
                "panics",
                ChaosPlan {
                    panic_every: Some(5),
                    ..NO_CHAOS
                },
            ),
            (
                "stalls",
                ChaosPlan {
                    stall_every: Some(7),
                    stall_for_ms: 400,
                    ..NO_CHAOS
                },
            ),
            (
                "journal",
                ChaosPlan {
                    journal_fail_every: Some(3),
                    ..NO_CHAOS
                },
            ),
            (
                "mayhem",
                ChaosPlan {
                    panic_every: Some(11),
                    stall_every: Some(13),
                    stall_for_ms: 400,
                    journal_fail_every: Some(5),
                    ..NO_CHAOS
                },
            ),
            (
                "wire-drop",
                ChaosPlan {
                    wire_drop_every: Some(4),
                    ..NO_CHAOS
                },
            ),
            (
                "wire-truncate",
                ChaosPlan {
                    wire_truncate_every: Some(5),
                    ..NO_CHAOS
                },
            ),
            (
                "wire-corrupt",
                ChaosPlan {
                    wire_corrupt_every: Some(5),
                    ..NO_CHAOS
                },
            ),
            (
                "wire-delay",
                ChaosPlan {
                    wire_delay_every: Some(3),
                    wire_delay_ms: 50,
                    ..NO_CHAOS
                },
            ),
            (
                "wire-hang",
                ChaosPlan {
                    hang_worker_after: Some(2),
                    ..NO_CHAOS
                },
            ),
            (
                "controller-kill",
                ChaosPlan {
                    kill_controller_at: Some(6),
                    ..NO_CHAOS
                },
            ),
        ];
        PRESETS
    }

    /// Looks up a built-in plan by name.
    pub fn preset(name: &str) -> Option<ChaosPlan> {
        ChaosPlan::presets()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
    }

    fn hits(every: Option<u64>, id: u64) -> bool {
        every.is_some_and(|n| n > 0 && id.is_multiple_of(n))
    }

    /// Applies the evaluation-side faults for `strategy` (called inside
    /// the panic isolation boundary). Stalls are applied before panics so
    /// a strategy scheduled for both exercises the watchdog first.
    pub fn apply(&self, strategy: &Strategy) {
        if ChaosPlan::hits(self.stall_every, strategy.id) && self.stall_for_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.stall_for_ms));
        }
        if ChaosPlan::hits(self.panic_every, strategy.id) {
            panic!("chaos: injected engine panic (strategy {})", strategy.id);
        }
    }

    /// Whether the `n`th journal write (1-based) is scheduled to fail.
    pub fn fails_journal_write(&self, n: u64) -> bool {
        ChaosPlan::hits(self.journal_fail_every, n)
    }

    /// Whether this plan injects *evaluation-side* faults (panics, stalls,
    /// journal write failures). Only these force memoization off and are
    /// incompatible with shards — they are in-process closures that cannot
    /// cross a process boundary.
    pub fn has_eval_faults(&self) -> bool {
        self.panic_every.is_some()
            || self.stall_every.is_some()
            || self.journal_fail_every.is_some()
    }

    /// Whether this plan injects shard-wire faults (frame drop / truncate
    /// / corrupt / delay, worker hang). These need a wire to act on, so
    /// they require `shards > 0`; the controller kill-switch is not
    /// counted here because it works in-process too.
    pub fn has_wire_faults(&self) -> bool {
        self.wire_drop_every.is_some()
            || self.wire_truncate_every.is_some()
            || self.wire_corrupt_every.is_some()
            || self.wire_delay_every.is_some()
            || self.hang_worker_after.is_some()
    }
}

impl fmt::Debug for CampaignConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignConfig")
            .field("scenario", &self.scenario)
            .field("params", &self.params)
            .field("threshold", &self.threshold)
            .field("parallelism", &self.parallelism)
            .field("max_strategies", &self.max_strategies)
            .field("feedback_rounds", &self.feedback_rounds)
            .field("retest", &self.retest)
            .field("journal", &self.journal)
            .field("resume", &self.resume)
            .field("progress_every", &self.progress_every)
            .field("snapshot_fork", &self.snapshot_fork)
            .field("memoize", &self.memoize)
            .field("memo_store", &self.memo_store)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "<hook>"))
            .field("chaos", &self.chaos)
            .field("baseline_reps", &self.baseline_reps)
            .field("deadline", &self.deadline)
            .field("stall_retries", &self.stall_retries)
            .field("shards", &self.shards)
            .field("shard_listen", &self.shard_listen)
            .field("shard_worker_bin", &self.shard_worker_bin)
            .field("shard_timeout", &self.shard_timeout)
            .field("heartbeat", &self.heartbeat)
            .field("insecure_bind", &self.insecure_bind)
            .field("observer_enabled", &self.observer.enabled())
            .finish()
    }
}

impl CampaignConfig {
    /// Starts a builder with defaults mirroring the paper's setup (five
    /// executors, 50 % threshold, repeatability re-testing, two feedback
    /// rounds) and no observer.
    pub fn builder(scenario: ScenarioSpec) -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            scenario,
            params: GenerationParams::default(),
            threshold: DEFAULT_THRESHOLD,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_strategies: None,
            feedback_rounds: 2,
            retest: true,
            journal: None,
            resume: false,
            progress_every: 0,
            snapshot_fork: true,
            memoize: true,
            memo_store: None,
            fault_hook: None,
            chaos: None,
            baseline_reps: 1,
            deadline: None,
            stall_retries: 2,
            stall_backoff: Duration::from_millis(50),
            observer: observe::noop(),
            shards: 0,
            shard_listen: None,
            shard_worker_bin: None,
            shard_timeout: None,
            heartbeat: None,
            insecure_bind: false,
        }
    }
}

/// Validating builder for [`CampaignConfig`] — the only way to construct
/// one. Every setter is chainable; [`build`](CampaignConfigBuilder::build)
/// checks the combination and returns
/// [`CampaignError::InvalidConfig`] / [`CampaignError::ResumeWithoutJournal`]
/// instead of letting a nonsensical campaign start.
#[derive(Clone)]
pub struct CampaignConfigBuilder {
    scenario: ScenarioSpec,
    params: GenerationParams,
    threshold: f64,
    parallelism: usize,
    max_strategies: Option<usize>,
    feedback_rounds: usize,
    retest: bool,
    journal: Option<PathBuf>,
    resume: bool,
    progress_every: usize,
    snapshot_fork: bool,
    memoize: bool,
    memo_store: Option<PathBuf>,
    fault_hook: Option<FaultHook>,
    chaos: Option<ChaosPlan>,
    baseline_reps: usize,
    deadline: Option<Duration>,
    stall_retries: usize,
    stall_backoff: Duration,
    observer: Arc<dyn Observer>,
    shards: usize,
    shard_listen: Option<String>,
    shard_worker_bin: Option<PathBuf>,
    shard_timeout: Option<Duration>,
    heartbeat: Option<Duration>,
    insecure_bind: bool,
}

impl fmt::Debug for CampaignConfigBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignConfigBuilder")
            .field("scenario", &self.scenario)
            .field("threshold", &self.threshold)
            .field("parallelism", &self.parallelism)
            .field("max_strategies", &self.max_strategies)
            .field("feedback_rounds", &self.feedback_rounds)
            .field("retest", &self.retest)
            .field("journal", &self.journal)
            .field("resume", &self.resume)
            .finish_non_exhaustive()
    }
}

impl CampaignConfigBuilder {
    /// Basic-attack parameter lists for the strategy generator.
    pub fn params(mut self, params: GenerationParams) -> Self {
        self.params = params;
        self
    }

    /// Detection threshold as a fraction (the paper's 50 % is `0.5`).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Executor worker threads.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Caps the number of strategies tested (quick runs, benchmarks).
    pub fn cap(mut self, max_strategies: usize) -> Self {
        self.max_strategies = Some(max_strategies);
        self
    }

    /// How many feedback rounds of strategy generation to run.
    pub fn feedback_rounds(mut self, rounds: usize) -> Self {
        self.feedback_rounds = rounds;
        self
    }

    /// Re-test flagged strategies under a different seed and keep only
    /// repeatable ones (§V-A).
    pub fn retest(mut self, retest: bool) -> Self {
        self.retest = retest;
        self
    }

    /// Streams every outcome to a JSONL journal at `path` as it completes,
    /// so a killed campaign leaves a usable record behind.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Reuses outcomes already recorded in the journal instead of
    /// re-running them. Requires [`journal`](Self::journal).
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Prints a progress line to stderr every `n` completed strategies
    /// (0 disables progress output).
    pub fn progress_every(mut self, n: usize) -> Self {
        self.progress_every = n;
        self
    }

    /// Executes strategies by forking snapshots of the no-attack baseline
    /// instead of replaying the attack-free prefix from scratch (see
    /// [`PlannedExecutor`]). Results are identical either way — the
    /// planner falls back to from-scratch runs whenever fork equivalence
    /// cannot be guaranteed — so this is purely a throughput knob.
    pub fn snapshot_fork(mut self, snapshot_fork: bool) -> Self {
        self.snapshot_fork = snapshot_fork;
        self
    }

    /// Memoizes across strategies: statically provable wire no-ops are
    /// answered with the baseline outcome, trigger-equivalent `OnState`
    /// strategies share one representative run, runs whose wire-effect
    /// fingerprint was seen before share the cached verdict, and the
    /// executor halts runs whose rules are spent without a wire effect.
    /// Every shortcut is conditioned on the snapshot planner's determinism
    /// guard (same philosophy: memoization is disabled whenever identical
    /// replay cannot be guaranteed), so outcomes are bit-identical with
    /// memoization off — this too is purely a throughput knob. Forced off
    /// when a `fault_hook` is installed, because an elided strategy never
    /// reaches the hook.
    pub fn memoize(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Persists the wire-effect fingerprint → verdict cache across
    /// campaign processes: verdicts are loaded from the checksummed store
    /// at `path` when the run starts and new ones are appended as it goes
    /// (see [`MemoStore`]). Entries are keyed by scenario digest,
    /// implementation, seed and impairment spec, so a store can be shared
    /// between arbitrary campaigns — entries from a different
    /// configuration simply never match. Purely an accounting and
    /// persistence layer: verdicts are still computed fresh every run, so
    /// outcomes are bit-identical with the store cold, warm, damaged or
    /// absent. Requires [`memoize`](Self::memoize) (the default); silently
    /// inactive when a `fault_hook` or `chaos` plan forces memoization
    /// off.
    pub fn memo_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.memo_store = Some(path.into());
        self
    }

    /// Test-only fault injection: `hook` is called with each strategy
    /// right before its evaluation, inside the panic isolation boundary.
    /// A hook that panics simulates a crashing engine run.
    pub fn fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Installs a deterministic [`ChaosPlan`]: scheduled worker panics,
    /// evaluation stalls, and transient journal write faults. Forces
    /// memoization off, like [`fault_hook`](Self::fault_hook).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Anchors detection on an ensemble of `reps` seed-jittered no-attack
    /// baselines instead of a single run: verdicts flag only outside the
    /// median/MAD envelope the ensemble spans (see
    /// [`Envelope`](crate::detect::Envelope)), and borderline verdicts are
    /// escalated to a confirmatory re-test. `1` (the default) keeps the
    /// legacy single-baseline comparison bit for bit. Use ≥ 3 whenever
    /// link impairments make runs noisy.
    pub fn baseline_reps(mut self, reps: usize) -> Self {
        self.baseline_reps = reps;
        self
    }

    /// Arms the per-evaluation watchdog: an evaluation that produces no
    /// outcome within `deadline` of wall-clock time is abandoned and
    /// retried (with exponential backoff), and after the retry budget the
    /// strategy is quarantined as [`OutcomeKind::Stalled`] — the campaign
    /// keeps going instead of hanging. The stalled worker thread is
    /// detached, not killed; it can finish late harmlessly because
    /// outcomes are only journaled by the watchdog's caller.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// How many times a stalled evaluation is retried before quarantine
    /// (default 2; 0 quarantines on the first stall).
    pub fn stall_retries(mut self, retries: usize) -> Self {
        self.stall_retries = retries;
        self
    }

    /// Initial wait before a stall retry; doubles on each further retry
    /// (default 50 ms).
    pub fn stall_backoff(mut self, backoff: Duration) -> Self {
        self.stall_backoff = backoff;
        self
    }

    /// Shard strategy execution across `n` worker *processes* (0, the
    /// default, keeps everything in this process). The controller still
    /// owns generation, verdicts, journal, memo store and admission
    /// order, so results are bit-identical at any shard count; if every
    /// worker dies the campaign degrades to in-process execution.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Listen on `addr` for externally launched `snake shard-worker
    /// --connect` processes instead of spawning children. Requires
    /// [`shards`](Self::shards) to say how many to wait for.
    pub fn shard_listen(mut self, addr: impl Into<String>) -> Self {
        self.shard_listen = Some(addr.into());
        self
    }

    /// Binary to spawn shard workers from (default: the current
    /// executable). Lets test harnesses point at the real `snake` binary.
    pub fn shard_worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.shard_worker_bin = Some(path.into());
        self
    }

    /// Read deadline on the shard wire (default 10 s): handshake *and*
    /// mid-evaluation silence longer than this declares the worker dead
    /// (hung or partitioned — heartbeats keep a merely slow worker
    /// alive). Requires `shards > 0`; must exceed
    /// [`heartbeat`](Self::heartbeat).
    pub fn shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// Interval at which shard workers send keep-alive heartbeats
    /// (default 2 s). Requires `shards > 0`; must be shorter than
    /// [`shard_timeout`](Self::shard_timeout).
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = Some(interval);
        self
    }

    /// Acknowledges that [`shard_listen`](Self::shard_listen) may bind a
    /// non-loopback address. The handshake is digest-checked (a worker
    /// with a different scenario is refused) but not authenticated, so
    /// exposing the controller beyond the host is an explicit opt-in.
    pub fn insecure_bind(mut self, insecure: bool) -> Self {
        self.insecure_bind = insecure;
        self
    }

    /// Observability sink for the campaign: phase spans, executor and
    /// netsim counters, per-worker histograms. Pass an
    /// [`observe::Recorder`](snake_observe::Recorder) wrapped in an `Arc`
    /// and snapshot it after the run to build a
    /// [`RunManifest`](snake_observe::RunManifest). The default is the
    /// no-op observer, which compiles the instrumentation down to nothing.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = observer;
        self
    }

    /// Validates the configuration and produces the [`CampaignConfig`].
    pub fn build(self) -> Result<CampaignConfig, CampaignError> {
        let invalid = |detail: String| Err(CampaignError::InvalidConfig { detail });
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return invalid(format!(
                "threshold must be a finite fraction above zero, got {}",
                self.threshold
            ));
        }
        if self.parallelism == 0 {
            return invalid("parallelism must be at least one worker".to_owned());
        }
        if self.feedback_rounds == 0 {
            return invalid(
                "feedback_rounds must be at least one (round 0 is the baseline round)".to_owned(),
            );
        }
        if self.resume && self.journal.is_none() {
            return Err(CampaignError::ResumeWithoutJournal);
        }
        if self.baseline_reps == 0 {
            return invalid("baseline_reps must be at least one".to_owned());
        }
        if self.deadline.is_some_and(|d| d.is_zero()) {
            return invalid("watchdog deadline must be longer than zero".to_owned());
        }
        if self.shards > 0
            && (self.fault_hook.is_some() || self.chaos.is_some_and(|c| c.has_eval_faults()))
        {
            return invalid(
                "shards cannot combine with fault injection: hooks and \
                 evaluation-side chaos are in-process closures that cannot \
                 cross a process boundary (wire chaos is fine)"
                    .to_owned(),
            );
        }
        if self.shards == 0 && self.chaos.is_some_and(|c| c.has_wire_faults()) {
            return invalid(
                "wire chaos faults need a shard wire to act on: set shards > 0".to_owned(),
            );
        }
        if self.shards == 0 && (self.shard_listen.is_some() || self.shard_worker_bin.is_some()) {
            return invalid("shard_listen / shard_worker_bin require shards > 0".to_owned());
        }
        if self.shards == 0 && (self.shard_timeout.is_some() || self.heartbeat.is_some()) {
            return invalid("shard_timeout / heartbeat require shards > 0".to_owned());
        }
        if self.shard_timeout.is_some_and(|t| t.is_zero())
            || self.heartbeat.is_some_and(|t| t.is_zero())
        {
            return invalid("shard_timeout and heartbeat must be longer than zero".to_owned());
        }
        let shard_timeout = self.shard_timeout.unwrap_or(DEFAULT_SHARD_TIMEOUT);
        let heartbeat = self.heartbeat.unwrap_or(DEFAULT_HEARTBEAT);
        if self.shards > 0 && heartbeat >= shard_timeout {
            return invalid(format!(
                "heartbeat ({heartbeat:?}) must be shorter than shard_timeout \
                 ({shard_timeout:?}), or every worker is declared dead between beats"
            ));
        }
        match &self.shard_listen {
            Some(addr) if !listen_is_loopback(addr) && !self.insecure_bind => {
                return invalid(format!(
                    "shard_listen address {addr} is not loopback; binding it \
                     exposes an unauthenticated control wire — pass \
                     insecure_bind (--insecure-bind) to acknowledge"
                ));
            }
            _ => {}
        }
        if self.insecure_bind && self.shard_listen.is_none() {
            return invalid(
                "insecure_bind acknowledges a non-loopback shard_listen; \
                 there is nothing to acknowledge without one"
                    .to_owned(),
            );
        }
        if self.memo_store.is_some() && !self.memoize {
            return invalid(
                "memo_store requires memoize: the persistent store is the \
                 fingerprint cache's disk layer"
                    .to_owned(),
            );
        }
        Ok(CampaignConfig {
            scenario: self.scenario,
            params: self.params,
            threshold: self.threshold,
            parallelism: self.parallelism,
            max_strategies: self.max_strategies,
            feedback_rounds: self.feedback_rounds,
            retest: self.retest,
            journal: self.journal,
            resume: self.resume,
            progress_every: self.progress_every,
            snapshot_fork: self.snapshot_fork,
            memoize: self.memoize,
            memo_store: self.memo_store,
            fault_hook: self.fault_hook,
            chaos: self.chaos,
            baseline_reps: self.baseline_reps,
            deadline: self.deadline,
            stall_retries: self.stall_retries,
            stall_backoff: self.stall_backoff,
            observer: self.observer,
            shards: self.shards,
            shard_listen: self.shard_listen,
            shard_worker_bin: self.shard_worker_bin,
            shard_timeout,
            heartbeat,
            insecure_bind: self.insecure_bind,
        })
    }
}

/// Whether a `shard_listen` address names the loopback interface. An
/// unparseable address is treated as non-loopback: the caller must
/// acknowledge anything we cannot prove local.
fn listen_is_loopback(addr: &str) -> bool {
    match addr.parse::<std::net::SocketAddr>() {
        Ok(sa) => sa.ip().is_loopback(),
        Err(_) => addr
            .rsplit_once(':')
            .is_some_and(|(host, _)| host == "localhost"),
    }
}

/// Why a campaign could not run (as opposed to running and finding
/// nothing).
#[derive(Debug)]
pub enum CampaignError {
    /// The no-attack baseline moved zero bytes on the target connection,
    /// so no throughput comparison can be anchored. The scenario (or the
    /// implementation model) is broken; running strategies against it
    /// would produce garbage verdicts.
    InvalidBaseline {
        /// The implementation whose baseline failed.
        implementation: String,
    },
    /// Reading or writing the journal failed.
    Journal {
        /// The journal path.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The journal belongs to a different campaign (implementation, seed,
    /// or threshold differ), so resuming from it would mix results.
    JournalMismatch {
        /// The journal path.
        path: PathBuf,
        /// What differed.
        detail: String,
    },
    /// Opening the persistent memo store failed with a real I/O error
    /// (a damaged store is recovered from, not an error — see
    /// [`MemoStore::open`]).
    MemoStore {
        /// The store path.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// `resume` was requested without a journal path to resume from.
    ResumeWithoutJournal,
    /// The builder rejected the configuration (non-finite threshold, zero
    /// workers, zero feedback rounds, …) before anything ran.
    InvalidConfig {
        /// Human-readable description of the rejected combination.
        detail: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidBaseline { implementation } => write!(
                f,
                "baseline run for {implementation} transferred no data; \
                 the scenario cannot anchor attack detection"
            ),
            CampaignError::Journal { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            CampaignError::JournalMismatch { path, detail } => {
                write!(
                    f,
                    "journal {} is from a different campaign: {detail}",
                    path.display()
                )
            }
            CampaignError::MemoStore { path, source } => {
                write!(f, "memo store {}: {source}", path.display())
            }
            CampaignError::ResumeWithoutJournal => {
                f.write_str("resume requested without a journal path")
            }
            CampaignError::InvalidConfig { detail } => {
                write!(f, "invalid campaign configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Journal { source, .. } | CampaignError::MemoStore { source, .. } => {
                Some(source)
            }
            _ => None,
        }
    }
}

/// How a strategy's evaluation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// The run completed normally; the verdict is meaningful.
    Ok,
    /// The engine panicked while evaluating the strategy. The panic was
    /// contained, the metrics are zeroed, and the verdict is empty.
    Errored,
    /// The run hit the scenario's event budget (a livelock guard) and was
    /// cut short; the verdict is empty because partial throughput cannot
    /// be compared against a full-length baseline.
    Truncated,
    /// The evaluation produced no outcome within the watchdog's wall-clock
    /// deadline, was retried up to the retry budget, and was quarantined.
    /// The metrics are zeroed and the verdict is empty; the campaign
    /// continues instead of hanging (see
    /// [`CampaignConfigBuilder::deadline`]).
    Stalled,
}

impl OutcomeKind {
    /// Stable lower-case label, used in the journal and TSV export.
    pub fn label(self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Errored => "errored",
            OutcomeKind::Truncated => "truncated",
            OutcomeKind::Stalled => "stalled",
        }
    }
}

/// The outcome of testing one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The strategy tested.
    pub strategy: Strategy,
    /// Detection verdict against the baseline (empty unless `outcome_kind`
    /// is [`OutcomeKind::Ok`]).
    pub verdict: Verdict,
    /// Raw metrics of the (first) attack run.
    pub metrics: TestMetrics,
    /// Whether the flagged result repeated under a different seed.
    pub repeatable: bool,
    /// Whether the strategy requires an on-path attacker.
    pub on_path: bool,
    /// Whether the inert-volume control run showed the impact comes from
    /// packet volume rather than protocol effect (hitseqwindow false
    /// positives, §VI-A).
    pub false_positive: bool,
    /// Whether the evaluation completed, panicked, or was truncated.
    pub outcome_kind: OutcomeKind,
    /// The panic message, when `outcome_kind` is [`OutcomeKind::Errored`].
    pub error: Option<String>,
    /// How memoization produced (or shortened) this outcome: `"inert"`
    /// (statically provable wire no-op, answered with the baseline),
    /// `"class"` (shared the run of a trigger-equivalent representative),
    /// `"fp"` (verdict served from the wire-effect fingerprint cache), or
    /// `"halt"` (the proxy halted the run once every rule was spent
    /// without a wire effect and substituted the baseline). `None` for
    /// outcomes whose run went the ordinary distance. Recorded in the
    /// journal so `--resume` replays memoized outcomes exactly.
    pub memo: Option<String>,
}

impl StrategyOutcome {
    /// Flagged, repeatable, not on-path, not a false positive — and from a
    /// run that actually completed: a true attack strategy (the paper's
    /// final per-row count).
    pub fn is_true_attack(&self) -> bool {
        self.outcome_kind == OutcomeKind::Ok
            && self.verdict.flagged()
            && self.repeatable
            && !self.on_path
            && !self.false_positive
    }
}

/// The paper's *controller*: generates strategies, dispatches them to
/// executors, and judges the outcomes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Controller;

/// A full campaign against one implementation — one row of Table I.
#[derive(Debug, Clone, Copy, Default)]
pub struct Campaign;

/// Aggregated results of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Protocol name ("TCP" / "DCCP").
    pub protocol: String,
    /// Implementation name.
    pub implementation: String,
    /// The baseline (no-attack) metrics.
    pub baseline: TestMetrics,
    /// Every strategy outcome.
    pub outcomes: Vec<StrategyOutcome>,
    /// Unique attacks found (clusters of true attack strategies).
    pub findings: Vec<AttackFinding>,
    /// Outcomes reused from a resumed journal instead of re-run.
    pub resumed: usize,
    /// Journal lines that could not be parsed on resume (a killed writer
    /// can leave a partial final line; it is skipped, not fatal).
    pub journal_lines_skipped: usize,
    /// Memoization hits: outcomes that shared a trigger-equivalent
    /// representative's run (`memo == "class"`) plus verdicts served from
    /// the wire-effect fingerprint cache (`memo == "fp"`). Derived by
    /// counting the outcome markers, so the run manifest's memo breakdown
    /// always sums back to this field. Zero when memoization is off.
    pub memo_hits: usize,
    /// Runs short-circuited outright: statically provable wire no-ops
    /// answered with the baseline outcome (`memo == "inert"`) plus main
    /// runs the proxy halted once every rule was spent without a wire
    /// effect (`memo == "halt"`). Derived from the outcome markers;
    /// auxiliary halts (re-test and control runs) show up in the
    /// executors' own tallies, not here. Zero when memoization is off.
    pub short_circuits: usize,
    /// How many seed-jittered baselines anchor the detection envelope
    /// (1 = the legacy single baseline).
    pub baseline_reps: usize,
    /// The detection envelope every verdict was judged against.
    pub envelope: Envelope,
    /// Borderline verdicts escalated to a confirmatory re-test (only
    /// tallied when `baseline_reps > 1`).
    pub escalated: usize,
    /// Watchdog deadline expiries, counting every attempt (one strategy
    /// retried twice contributes three).
    pub stalls: usize,
    /// Strategies quarantined as [`OutcomeKind::Stalled`] after the
    /// watchdog's retry budget ran out.
    pub quarantined: usize,
    /// What the persistent memo store did, when one was configured and
    /// active (`None` when no store was set, or when a fault hook / chaos
    /// plan forced memoization — and with it the store — off).
    pub memo_store: Option<MemoStoreReport>,
}

impl CampaignResult {
    /// Table I: strategies tried.
    pub fn strategies_tried(&self) -> usize {
        self.outcomes.len()
    }

    /// Table I: attack strategies found (flagged and repeatable, from
    /// completed runs).
    pub fn attack_strategies_found(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome_kind == OutcomeKind::Ok && o.verdict.flagged() && o.repeatable)
            .count()
    }

    /// Table I: of the found strategies, those requiring an on-path
    /// attacker.
    pub fn on_path_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                o.outcome_kind == OutcomeKind::Ok
                    && o.verdict.flagged()
                    && o.repeatable
                    && o.on_path
            })
            .count()
    }

    /// Table I: of the found strategies, hitseqwindow volume artefacts.
    pub fn false_positive_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                o.outcome_kind == OutcomeKind::Ok
                    && o.verdict.flagged()
                    && o.repeatable
                    && !o.on_path
                    && o.false_positive
            })
            .count()
    }

    /// Table I: true attack strategies.
    pub fn true_attack_strategies(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_true_attack()).count()
    }

    /// Table I: unique true attacks after clustering.
    pub fn true_attacks(&self) -> usize {
        self.findings.len()
    }

    /// Strategies whose evaluation panicked (contained, not fatal).
    pub fn errored(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome_kind == OutcomeKind::Errored)
            .count()
    }

    /// Strategies whose run hit the event budget and was cut short.
    pub fn truncated(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome_kind == OutcomeKind::Truncated)
            .count()
    }

    /// Strategies quarantined by the watchdog as stalled.
    pub fn stalled(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome_kind == OutcomeKind::Stalled)
            .count()
    }

    /// Exports every strategy outcome as tab-separated values (one row per
    /// strategy) for offline analysis — the controller-side log the
    /// paper's authors worked from when separating on-path strategies and
    /// false positives by hand. Free-text fields (the strategy description
    /// and panic messages) are escaped so each outcome stays exactly one
    /// row with a fixed column count.
    pub fn export_outcomes_tsv(&self) -> String {
        let mut out = String::from(
            "id\tstrategy\toutcome\tflagged\trepeatable\ton_path\tfalse_positive\ttrue_attack\teffects\ttarget_bytes\tcompeting_bytes\tleaked_sockets\terror\n",
        );
        for o in &self.outcomes {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                o.strategy.id,
                tsv_escape(&o.strategy.describe()),
                o.outcome_kind.label(),
                o.verdict.flagged(),
                o.repeatable,
                o.on_path,
                o.false_positive,
                o.is_true_attack(),
                o.verdict.labels().join(","),
                o.metrics.target_bytes,
                o.metrics.competing_bytes,
                o.metrics.leaked_sockets,
                tsv_escape(o.error.as_deref().unwrap_or("")),
            ));
        }
        out
    }

    /// Renders this campaign as one Table I row.
    pub fn table_row(&self) -> String {
        format!(
            "| {:<5} | {:<13} | {:>16} | {:>23} | {:>15} | {:>15} | {:>22} | {:>12} | {:>7} | {:>9} |",
            self.protocol,
            self.implementation,
            self.strategies_tried(),
            self.attack_strategies_found(),
            self.on_path_count(),
            self.false_positive_count(),
            self.true_attack_strategies(),
            self.true_attacks(),
            self.errored(),
            self.truncated()
        )
    }
}

/// Escapes a free-text value for one TSV cell: backslash, tab, newline and
/// carriage return become two-character escapes, so the row and column
/// structure of the export survives any `Strategy::describe()` output.
fn tsv_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[derive(Default)]
struct Progress {
    done: usize,
    errored: usize,
    truncated: usize,
    stalled: usize,
}

impl Campaign {
    /// Runs a full campaign: baseline, iterative strategy generation,
    /// parallel execution, verdicts, re-tests, false-positive controls,
    /// classification, clustering.
    ///
    /// A panicking engine run or a budget-truncated run does not abort the
    /// campaign: the affected strategy is reported as
    /// [`OutcomeKind::Errored`] / [`OutcomeKind::Truncated`] and the batch
    /// continues. Errors are reserved for broken preconditions (invalid
    /// baseline) and journal I/O.
    pub fn run(config: CampaignConfig) -> Result<CampaignResult, CampaignError> {
        let spec = config.scenario.clone();
        // A fault hook (or evaluation-side chaos) must see every strategy,
        // so memoization (which answers some strategies without ever
        // evaluating them) is forced off under fault injection. Wire-side
        // chaos never touches evaluation, so it leaves memoization alone —
        // that is exactly what lets the wire-chaos tests demand output
        // identical to an unperturbed run.
        let memoize = config.memoize
            && config.fault_hook.is_none()
            && !config.chaos.is_some_and(|c| c.has_eval_faults());
        let exec_options = ExecutorOptions {
            snapshot_fork: config.snapshot_fork,
            memoize,
            halt_arming: true,
            observer: config.observer.clone(),
        };
        let exec = PlannedExecutor::new(&spec, exec_options.clone());
        let baseline = exec.baseline().clone();
        if !baseline_valid(&baseline) {
            return Err(CampaignError::InvalidBaseline {
                implementation: spec.protocol.implementation_name().to_owned(),
            });
        }
        // The repeatability re-test compares a different-seed attack run
        // against the matching different-seed baseline.
        let retest_spec = ScenarioSpec {
            seed: spec.seed.wrapping_add(1),
            ..spec.clone()
        };
        let retest_exec = if config.retest {
            Some(PlannedExecutor::new(&retest_spec, exec_options))
        } else {
            None
        };

        // Detection envelopes. With `baseline_reps == 1` the envelope is
        // the single baseline and `detect_enveloped` degenerates to the
        // legacy `detect` — bit-identical verdicts. With reps ≥ 2, K−1
        // extra seed-jittered no-attack runs widen the band by the noise
        // the scenario (impairments included) actually exhibits.
        let envelope = {
            let _span = observe::span(config.observer.as_ref(), "phase.ensemble", 0);
            build_envelope(&spec, &baseline, config.baseline_reps, config.threshold)
        };
        let retest_envelope = retest_exec.as_ref().map(|retest| {
            let _span = observe::span(config.observer.as_ref(), "phase.ensemble", 0);
            build_envelope(
                &retest_spec,
                retest.baseline(),
                config.baseline_reps,
                config.threshold,
            )
        });
        if config.observer.enabled() {
            let obs = config.observer.as_ref();
            obs.counter_add("detect.envelope.members", envelope.members as u64);
            obs.counter_add(
                "detect.envelope.target_lo",
                envelope.target_lo.max(0.0) as u64,
            );
            obs.counter_add(
                "detect.envelope.target_hi",
                envelope.target_hi.max(0.0) as u64,
            );
            obs.counter_add(
                "detect.envelope.width_permille",
                (envelope.target_width_fraction() * 1000.0) as u64,
            );
        }

        // Journal setup: load previous outcomes when resuming, then keep a
        // writer open for streaming appends. The header records the
        // memoization and impairment settings alongside the campaign
        // identity, so appending to a journal written under different
        // memo/impairment semantics is refused instead of silently mixing
        // provenance markers (or metrics) from two different worlds.
        let impairment_label = spec.bottleneck().impair.to_string();
        let header = JournalHeader {
            implementation: spec.protocol.implementation_name().to_owned(),
            seed: spec.seed,
            threshold: config.threshold,
            memoize: Some(memoize),
            impairment: Some(impairment_label.clone()),
        };
        let mut reusable: BTreeMap<u64, journal::JournalEntry> = BTreeMap::new();
        let mut journal_lines_skipped = 0;
        let writer: Option<JournalWriter> = match (&config.journal, config.resume) {
            (None, true) => return Err(CampaignError::ResumeWithoutJournal),
            (None, false) => None,
            (Some(path), resume) => {
                let journal_err = |source| CampaignError::Journal {
                    path: path.clone(),
                    source,
                };
                if resume {
                    // Stream the journal line by line: a 1M-strategy
                    // journal replays without ever holding the whole file
                    // in memory (only the reusable outcomes themselves).
                    let mut reader = journal::JournalReader::open(path).map_err(journal_err)?;
                    if let Some(detail) = reader.header().and_then(|h| h.mismatch_against(&header))
                    {
                        return Err(CampaignError::JournalMismatch {
                            path: path.clone(),
                            detail,
                        });
                    }
                    let writer = if reader.header().is_some() {
                        while let Some(entry) = reader.next_entry().map_err(journal_err)? {
                            reusable.insert(entry.outcome.strategy.id, entry);
                        }
                        Some(JournalWriter::append(path).map_err(journal_err)?)
                    } else {
                        // Missing or headerless journal: resuming from
                        // nothing is just a fresh run. Drain the reader
                        // first so damaged-line accounting matches what a
                        // whole-file load reported.
                        while reader.next_entry().map_err(journal_err)?.is_some() {}
                        Some(JournalWriter::create(path, &header).map_err(journal_err)?)
                    };
                    journal_lines_skipped = reader.malformed_lines();
                    writer
                } else {
                    Some(JournalWriter::create(path, &header).map_err(journal_err)?)
                }
            }
        };

        let digest = scenario_digest(&spec, config.threshold, config.baseline_reps);

        // Journal segments — the worker-side crash-tolerance layer. A
        // resuming controller merges whatever the crashed run's workers
        // wrote (journal wins on overlap) into a prefetch map, replayed
        // through the ordinary admission path below so nothing a worker
        // already evaluated runs again. The merged files stay on disk
        // until this run completes: if the resume itself crashes before
        // re-journaling a prefetched outcome, the next resume still finds
        // it — the controller pid in segment filenames keeps this run's
        // own workers from overwriting them. A fresh run instead clears
        // stale segments so it cannot inherit another campaign's.
        let mut seg_dir = config.journal.as_deref().map(segment::segment_dir);
        let mut prefetch: BTreeMap<u64, SegmentEntry> = BTreeMap::new();
        if let Some(dir) = &seg_dir {
            if config.resume {
                match segment::merge(dir, digest, memoize, |id| reusable.contains_key(&id)) {
                    Ok(merge) => {
                        config
                            .observer
                            .counter_add("shard.segments.merged", merge.merged);
                        config
                            .observer
                            .counter_add("shard.segments.discarded", merge.discarded);
                        prefetch = merge.entries;
                    }
                    Err(err) => {
                        eprintln!(
                            "snake: segment merge failed ({err}); resuming from the journal alone"
                        );
                    }
                }
            } else {
                segment::clear_dir(dir);
            }
            if config.shards > 0 {
                if let Err(err) = std::fs::create_dir_all(dir) {
                    eprintln!(
                        "snake: cannot create segment directory {} ({err}); \
                         workers will not write segments",
                        dir.display()
                    );
                    seg_dir = None;
                }
            }
        }

        // Controller kill-switch: exit the whole process (code 23) right
        // after the Nth admission reaches the journal — the fault the
        // segment layer exists to survive. Driven by the chaos plan or,
        // for out-of-process harnesses (CI), an environment variable.
        let kill_at: Option<u64> = config.chaos.and_then(|c| c.kill_controller_at).or_else(|| {
            std::env::var("SNAKE_CONTROLLER_EXIT_AT")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        let admissions = AtomicU64::new(0);

        // Persistent memo store: opened only while memoization is live (a
        // fault hook or chaos plan that forces memoization off silently
        // deactivates the store with it). The store never influences a
        // verdict or a memo marker — admission always computes verdicts
        // fresh — so outcomes are bit-identical with the store cold, warm
        // or absent; what it adds is persistence and cross-run hit
        // accounting.
        let store = match (&config.memo_store, memoize) {
            (Some(path), true) => {
                Some(
                    MemoStore::open(path).map_err(|source| CampaignError::MemoStore {
                        path: path.clone(),
                        source,
                    })?,
                )
            }
            _ => None,
        };
        let scope = StoreScope {
            scenario_digest: digest,
            implementation: spec.protocol.implementation_name().to_owned(),
            seed: spec.seed,
            impairment: impairment_label,
        };
        let ledger = Mutex::new(MemoLedger::new(memoize, store, scope));

        let journal_cell = writer.map(Mutex::new);
        let journal_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let journal_writes = AtomicU64::new(0);
        let progress = Mutex::new(Progress::default());
        let progress_every = config.progress_every;
        let chaos = config.chaos;
        let observer_for_journal = config.observer.clone();
        let on_outcome = |outcome: &StrategyOutcome, counters: Option<&[(String, u64)]>| {
            if let Some(cell) = &journal_cell {
                let mut writer = cell.lock().unwrap_or_else(|e| e.into_inner());
                let n = journal_writes.fetch_add(1, Ordering::Relaxed) + 1;
                let counters = counters.unwrap_or(&[]);
                let mut result = if chaos.is_some_and(|c| c.fails_journal_write(n)) {
                    observer_for_journal.counter_add("campaign.journal_faults", 1);
                    Err(io::Error::other("chaos: injected journal write failure"))
                } else {
                    writer.record_with_counters(outcome, counters)
                };
                if result.is_err() {
                    // One bounded retry: a transient write failure (or an
                    // injected chaos fault) gets a second chance before
                    // the campaign aborts with a journal error.
                    observer_for_journal.counter_add("campaign.journal_retries", 1);
                    result = writer.record_with_counters(outcome, counters);
                }
                if let Err(e) = result {
                    let mut slot = journal_error.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
            if let Some(n) = kill_at {
                // The admission is journaled; die exactly here, before any
                // later-index outcome can be admitted.
                if admissions.fetch_add(1, Ordering::Relaxed) + 1 == n {
                    std::process::exit(23);
                }
            }
            if progress_every > 0 {
                let mut p = progress.lock().unwrap_or_else(|e| e.into_inner());
                p.done += 1;
                match outcome.outcome_kind {
                    OutcomeKind::Ok => {}
                    OutcomeKind::Errored => p.errored += 1,
                    OutcomeKind::Truncated => p.truncated += 1,
                    OutcomeKind::Stalled => p.stalled += 1,
                }
                if p.done % progress_every == 0 {
                    eprintln!(
                        "campaign: {} strategies tested ({} errored, {} truncated, {} stalled)",
                        p.done, p.errored, p.truncated, p.stalled
                    );
                }
            }
        };

        let mut next_id = 0u64;
        let mut seen = BTreeSet::new();
        let mut outcomes: Vec<StrategyOutcome> = Vec::new();
        let mut resumed = 0usize;
        let mut reports = vec![baseline.proxy.clone()];
        let shared = Arc::new(SharedCtx {
            exec,
            retest_exec,
            config: config.clone(),
            memoize,
            envelope,
            retest_envelope,
            escalated: AtomicUsize::new(0),
            stalls: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        });

        // The controller/executor split (paper §V): shard strategy
        // execution across worker processes. The pool is best-effort by
        // construction — a launch failure, a lost handshake or a mid-run
        // crash only shrinks it, and a pool with no live shards degrades
        // to the in-process thread pool. Determinism is unaffected either
        // way: generation, admission, journal and memo store never leave
        // this process.
        let mut pool = if config.shards > 0 {
            let _span = observe::span(config.observer.as_ref(), "phase.shard_launch", 0);
            match ShardPool::launch(&config, memoize, seg_dir.clone()) {
                Ok(pool) => {
                    if pool.live() == 0 {
                        eprintln!(
                            "snake: no shard worker survived the handshake; \
                             falling back to in-process execution"
                        );
                    }
                    Some(pool)
                }
                Err(err) => {
                    eprintln!(
                        "snake: shard pool launch failed ({err}); falling \
                         back to in-process execution"
                    );
                    None
                }
            }
        } else {
            None
        };

        for _round in 0..config.feedback_rounds {
            // The cap is re-checked at the top of every round: feedback
            // rounds keep generating strategies, so a cap satisfied in
            // round 0 must still stop rounds 1..n.
            if config
                .max_strategies
                .is_some_and(|cap| outcomes.len() >= cap)
            {
                break;
            }
            let refs: Vec<&snake_proxy::ProxyReport> = reports.iter().map(|r| r.as_ref()).collect();
            let mut fresh = generate_strategies(
                &spec.protocol,
                &refs,
                &config.params,
                &mut next_id,
                &mut seen,
            );
            if let Some(cap) = config.max_strategies {
                let room = cap.saturating_sub(outcomes.len());
                fresh.truncate(room);
            }
            if fresh.is_empty() {
                break;
            }

            // Split the round into journaled outcomes we can reuse and
            // strategies that still need a run. Identity is checked on the
            // full strategy, not just the id, so a stale journal entry is
            // re-run rather than trusted. Reused outcomes re-prime the
            // memoization layers — the fingerprint cache is re-seeded from
            // their recorded verdicts and non-inert reused strategies
            // re-register as class representatives — so a resumed campaign
            // reaches the same memo decisions (and markers) as an
            // uninterrupted one.
            let mut round: Vec<Option<StrategyOutcome>> = fresh.iter().map(|_| None).collect();
            let mut pending: Vec<(usize, Strategy)> = Vec::new();
            let mut class_reps: BTreeMap<String, usize> = BTreeMap::new();
            for (i, s) in fresh.into_iter().enumerate() {
                match reusable.remove(&s.id) {
                    Some(prev) if prev.outcome.strategy == s => {
                        resumed += 1;
                        // Worker counter deltas journaled with the outcome
                        // are folded again, so a resumed sharded campaign
                        // reports the same evaluation tallies as the
                        // uninterrupted run it is reconstructing.
                        fold_worker_counters(&shared, &prev.counters);
                        ledger
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .seed_resumed(&prev.outcome);
                        // An inert-marked outcome never reached the class
                        // grouping in the original run, so it must not
                        // become a representative now.
                        if prev.outcome.memo.as_deref() != Some("inert") {
                            if let Some(key) = class_key(&shared, &s) {
                                class_reps.entry(key).or_insert(i);
                            }
                        }
                        round[i] = Some(prev.outcome);
                    }
                    _ => pending.push((i, s)),
                }
            }
            // Memoization pass over the strategies that still need a run:
            // statically provable wire no-ops are answered with the
            // baseline outcome on the spot, and trigger-equivalent
            // `OnState` strategies are grouped so only one representative
            // per class runs — the rest copy its result afterwards.
            let mut to_run: Vec<(usize, Strategy)> = Vec::new();
            let mut followers: Vec<(usize, Strategy, usize)> = Vec::new();
            for (i, s) in pending {
                if let Some(outcome) = inert_outcome(&shared, &s) {
                    on_outcome(&outcome, None);
                    round[i] = Some(outcome);
                    continue;
                }
                match class_key(&shared, &s) {
                    Some(key) => match class_reps.get(&key) {
                        Some(&rep) => followers.push((i, s, rep)),
                        None => {
                            class_reps.insert(key, i);
                            to_run.push((i, s));
                        }
                    },
                    None => to_run.push((i, s)),
                }
            }
            let batch_span = observe::span(config.observer.as_ref(), "phase.batch", 0);
            let (indices, batch): (Vec<usize>, Vec<Strategy>) = to_run.into_iter().unzip();
            // Segment prefetch: outcomes a crashed run's workers already
            // evaluated replay through the batch machinery (admission,
            // journal, counter fold) at their exact index position instead
            // of running again — full-strategy identity is required, like
            // journal reuse, so a stale segment entry re-runs.
            let pre: Vec<Option<SegmentEntry>> = batch
                .iter()
                .map(|s| match prefetch.remove(&s.id) {
                    Some(entry) if entry.outcome.strategy == *s => Some(entry),
                    _ => None,
                })
                .collect();
            let ran = match pool.as_mut().filter(|p| p.live() > 0) {
                Some(pool) => run_batch_sharded(&shared, &ledger, batch, pre, pool, &on_outcome),
                None => run_batch(
                    &shared,
                    &ledger,
                    batch,
                    pre,
                    config.parallelism,
                    &on_outcome,
                ),
            };
            for (i, outcome) in indices.into_iter().zip(ran) {
                round[i] = Some(outcome);
            }
            for (i, s, rep) in followers {
                let rep_outcome = round[rep]
                    .as_ref()
                    .expect("class representatives are reused or ran in this batch");
                let outcome = if rep_outcome.outcome_kind == OutcomeKind::Errored {
                    // A panicking representative proves nothing about its
                    // class; run the member itself. The fresh run is
                    // admitted like any other (fingerprint marker, cache
                    // insert, store append) — followers re-run in index
                    // order, so admission stays deterministic.
                    let mut o = evaluate_watched(&shared, s);
                    ledger
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .admit(&mut o);
                    o
                } else {
                    materialize_class_member(rep_outcome, s)
                };
                on_outcome(&outcome, None);
                round[i] = Some(outcome);
            }
            drop(batch_span);

            for o in round.into_iter().flatten() {
                // Feedback: states/types newly exposed under attack seed
                // the next round. Only well-behaved runs contribute —
                // zeroed metrics from a panic or a half-finished truncated
                // run would poison the generator's view of the state space.
                if o.outcome_kind == OutcomeKind::Ok {
                    reports.push(o.metrics.proxy.clone());
                }
                outcomes.push(o);
            }
            // Admission checkpoint: one buffered-store flush per round
            // instead of one write syscall per admitted entry.
            ledger
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .flush_store();
        }

        if let Some(mut pool) = pool.take() {
            pool.finish(config.observer.as_ref());
        }

        if let Some(source) = journal_error
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
        {
            return Err(CampaignError::Journal {
                path: config
                    .journal
                    .clone()
                    .expect("journal errors require a journal"),
                source,
            });
        }

        // A completed campaign owes nothing to its segments: every
        // outcome (prefetched ones included) is in the journal now.
        if let Some(dir) = &seg_dir {
            segment::clear_dir(dir);
        }

        // Classify and cluster the true attack strategies.
        let classified: Vec<_> = outcomes
            .iter()
            .filter(|o| o.is_true_attack())
            .map(|o| {
                let attack = classify(&spec.protocol, &o.strategy, &o.verdict, &o.metrics);
                (o.strategy.clone(), o.verdict, attack)
            })
            .collect();
        let findings = cluster_attacks(&classified);

        // The memo totals are derived from the provenance markers the
        // outcomes actually carry, so the campaign counters, the journal
        // and the run manifest can never disagree.
        let mut memo_hits = 0usize;
        let mut short_circuits = 0usize;
        for o in &outcomes {
            match o.memo.as_deref() {
                Some("class") | Some("fp") => memo_hits += 1,
                Some("inert") | Some("halt") => short_circuits += 1,
                _ => {}
            }
        }

        let memo_store = {
            let mut ledger = ledger.into_inner().unwrap_or_else(|e| e.into_inner());
            ledger.flush_store();
            let report = ledger.report();
            if let Some(r) = &report {
                let obs = config.observer.as_ref();
                obs.counter_add("memostore.entries_loaded", r.entries_loaded as u64);
                obs.counter_add("memostore.entries_valid", r.entries_valid as u64);
                obs.counter_add("memostore.entries_skipped", r.entries_skipped as u64);
                obs.counter_add("memostore.cross_run_hits", r.cross_run_hits as u64);
                obs.counter_add("memostore.eligible_runs", r.eligible_runs as u64);
                obs.counter_add("memostore.appended", r.appended as u64);
                obs.counter_add("memostore.write_failures", r.write_failures as u64);
                obs.counter_add("memostore.verdict_mismatches", r.verdict_mismatches as u64);
            }
            report
        };

        Ok(CampaignResult {
            protocol: spec.protocol.protocol_name().to_owned(),
            implementation: spec.protocol.implementation_name().to_owned(),
            baseline,
            outcomes,
            findings,
            resumed,
            journal_lines_skipped,
            memo_hits,
            short_circuits,
            baseline_reps: config.baseline_reps,
            envelope: shared.envelope,
            escalated: shared.escalated.load(Ordering::Relaxed),
            stalls: shared.stalls.load(Ordering::Relaxed),
            quarantined: shared.quarantined.load(Ordering::Relaxed),
            memo_store,
        })
    }
}

/// Deterministic seed for ensemble member `k` (member 0 is the scenario
/// seed itself). The golden-ratio multiply diffuses `k` across the word so
/// member seeds never collide with each other or with the re-test seed.
fn ensemble_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Builds the detection envelope: the campaign's own baseline plus
/// `reps − 1` plain from-scratch no-attack runs at jittered seeds.
pub(crate) fn build_envelope(
    spec: &ScenarioSpec,
    baseline: &TestMetrics,
    reps: usize,
    threshold: f64,
) -> Envelope {
    if reps <= 1 {
        return Envelope::from_baseline(baseline, threshold);
    }
    let mut members = Vec::with_capacity(reps);
    members.push(baseline.clone());
    for k in 1..reps {
        let member_spec = ScenarioSpec {
            seed: ensemble_seed(spec.seed, k),
            ..spec.clone()
        };
        members.push(Executor::run(&member_spec, None));
    }
    Envelope::from_members(&members, threshold)
}

/// Everything the executor workers share read-only: the planned (snapshot
/// holding) executors for the main and re-test seeds, plus the config.
pub(crate) struct SharedCtx {
    pub(crate) exec: PlannedExecutor,
    pub(crate) retest_exec: Option<PlannedExecutor>,
    pub(crate) config: CampaignConfig,
    /// Whether campaign-level memoization is live (config switch and no
    /// fault hook or chaos plan; each executor additionally requires its
    /// determinism guard to have passed).
    pub(crate) memoize: bool,
    /// Detection envelope for the main seed (single-baseline degenerate
    /// when `baseline_reps == 1`).
    pub(crate) envelope: Envelope,
    /// Envelope for the re-test seed, when re-testing is on.
    pub(crate) retest_envelope: Option<Envelope>,
    /// Borderline verdicts escalated to a confirmatory re-test.
    pub(crate) escalated: AtomicUsize,
    /// Watchdog deadline expiries (every attempt counts).
    pub(crate) stalls: AtomicUsize,
    /// Strategies quarantined after the stall retry budget.
    pub(crate) quarantined: AtomicUsize,
}

pub(crate) type Shared = Arc<SharedCtx>;

/// The campaign's memoization bookkeeper, owned by `Campaign::run` and
/// consulted only at *admission* — the single point where a finished
/// outcome is assigned its fingerprint marker, inserted into the
/// in-process cache and appended to the persistent store, strictly in
/// strategy-index order (see [`run_batch`]'s release buffer). Workers
/// never touch it while evaluating, which is what makes memo markers
/// identical at every worker count: under the old design each worker
/// consulted a shared fingerprint cache mid-flight, so which of two
/// equal-fingerprint strategies got the `"fp"` marker depended on
/// completion order.
///
/// The fingerprint cache maps wire-effect fingerprints to verdicts. A
/// fingerprint captures every effect the proxy actually had on the wire
/// (plus its RNG draws), so equal fingerprints mean byte-identical runs
/// and the verdict can be shared. Only unflagged verdicts are cached: a
/// flagged outcome also depends on the different-seed re-test run, which
/// the main run's fingerprint says nothing about.
struct MemoLedger {
    /// Whether campaign-level memoization is live; when off, admission is
    /// a no-op and every outcome keeps whatever marker evaluation gave it.
    memoize: bool,
    /// The in-process fingerprint → verdict cache (this campaign's own
    /// completed runs plus resume-seeded journal entries).
    fp_cache: FxHashMap<(u64, u64), Verdict>,
    /// Fingerprints loaded from the persistent store for this campaign's
    /// scope. Deliberately separate from `fp_cache`: store entries feed
    /// the cross-run hit and mismatch counters but never markers or
    /// verdicts, so a warm store cannot change any outcome bit.
    store_seen: FxHashMap<(u64, u64), Verdict>,
    /// The open store and this campaign's scope key, when configured.
    store: Option<(MemoStore, StoreScope)>,
    /// Loaded store entries matching this campaign's scope.
    entries_valid: usize,
    /// Fresh completed runs whose fingerprint the store already knew.
    cross_run_hits: usize,
    /// Fresh completed runs eligible for a cross-run hit.
    eligible_runs: usize,
    /// Store entries whose recorded verdict disagreed with the freshly
    /// computed one (the computed verdict wins; see [`MemoStoreReport`]).
    verdict_mismatches: usize,
}

impl MemoLedger {
    fn new(memoize: bool, store: Option<MemoStore>, scope: StoreScope) -> MemoLedger {
        let store_seen = store
            .as_ref()
            .map(|s| s.scope_entries(&scope))
            .unwrap_or_default();
        MemoLedger {
            memoize,
            fp_cache: FxHashMap::default(),
            entries_valid: store_seen.len(),
            store_seen,
            store: store.map(|s| (s, scope)),
            cross_run_hits: 0,
            eligible_runs: 0,
            verdict_mismatches: 0,
        }
    }

    /// Admits one freshly evaluated outcome: counts it against the
    /// persistent store, assigns the `"fp"` marker when its fingerprint
    /// was already in the in-process cache (a `"halt"` marker from the
    /// run itself takes precedence), and otherwise caches and persists
    /// the verdict when it is unflagged. Only completed runs participate —
    /// errored, truncated and stalled outcomes carry no meaningful
    /// fingerprint, and inert/class outcomes never reach admission at all
    /// (they never touched the cache under the old design either).
    fn admit(&mut self, outcome: &mut StrategyOutcome) {
        if !self.memoize || outcome.outcome_kind != OutcomeKind::Ok {
            return;
        }
        let fp = (
            outcome.metrics.proxy.effect_fp_a,
            outcome.metrics.proxy.effect_fp_b,
        );
        self.eligible_runs += 1;
        match self.store_seen.get(&fp) {
            Some(v) if *v == outcome.verdict => self.cross_run_hits += 1,
            Some(_) => self.verdict_mismatches += 1,
            None => {}
        }
        match self.fp_cache.entry(fp) {
            // Equal fingerprints mean byte-identical runs, so the freshly
            // computed verdict necessarily equals the cached one — the
            // marker is pure provenance, never a different answer.
            Entry::Occupied(_) => {
                if outcome.memo.is_none() {
                    outcome.memo = Some("fp".to_owned());
                }
            }
            Entry::Vacant(slot) => {
                if !outcome.verdict.flagged() {
                    slot.insert(outcome.verdict);
                    if let Some((store, scope)) = &mut self.store {
                        store.insert(scope, fp, outcome.verdict);
                    }
                }
            }
        }
    }

    /// Re-seeds the fingerprint cache from a journaled outcome on resume.
    /// Only outcomes that would have populated the cache in the original
    /// run qualify: completed, unflagged, and produced by an actual run
    /// (`memo` of `None`), a cache hit (`"fp"`), or a proxy halt
    /// (`"halt"`, whose substituted baseline metrics carry the baseline's
    /// fingerprint) — `"inert"` and `"class"` outcomes never touched the
    /// cache. With the cache restored, the strategies that still need a
    /// run reach the same verdict-sharing decisions as an uninterrupted
    /// campaign. Seeded verdicts are persisted too, so a store shared with
    /// an interrupted campaign still ends up complete. Resumed outcomes do
    /// not count toward the cross-run hit rate — nothing ran.
    fn seed_resumed(&mut self, outcome: &StrategyOutcome) {
        if !self.memoize
            || outcome.outcome_kind != OutcomeKind::Ok
            || outcome.verdict.flagged()
            || !matches!(outcome.memo.as_deref(), None | Some("fp") | Some("halt"))
        {
            return;
        }
        let fp = (
            outcome.metrics.proxy.effect_fp_a,
            outcome.metrics.proxy.effect_fp_b,
        );
        if let Entry::Vacant(slot) = self.fp_cache.entry(fp) {
            slot.insert(outcome.verdict);
            if let Some((store, scope)) = &mut self.store {
                store.insert(scope, fp, outcome.verdict);
            }
        }
    }

    /// The store section of the campaign result (`None` when no store was
    /// active this run).
    fn report(&self) -> Option<MemoStoreReport> {
        let (store, _) = self.store.as_ref()?;
        Some(MemoStoreReport {
            entries_loaded: store.entries_loaded(),
            entries_valid: self.entries_valid,
            entries_skipped: store.entries_skipped(),
            cross_run_hits: self.cross_run_hits,
            eligible_runs: self.eligible_runs,
            appended: store.appended(),
            write_failures: store.write_failures(),
            verdict_mismatches: self.verdict_mismatches,
        })
    }

    /// Pushes the persistent store's buffered appends to disk, if a store
    /// is attached. Called at admission checkpoints (end of each feedback
    /// round and before the final report) so the per-entry write syscall
    /// the store used to pay is amortised across a whole round.
    fn flush_store(&mut self) {
        if let Some((store, _)) = &mut self.store {
            store.flush();
        }
    }
}

/// Answers a statically provable wire no-op with the baseline outcome —
/// exactly what [`evaluate`] would produce, without running anything.
/// Returns `None` when the strategy is not provably inert, or when the
/// baseline compared against itself would flag (a degenerate scenario; the
/// ordinary path then runs the strategy for real, keeping memoized and
/// unmemoized campaigns bit-identical).
fn inert_outcome(shared: &Shared, strategy: &Strategy) -> Option<StrategyOutcome> {
    if !shared.memoize || !shared.exec.provably_inert(strategy) {
        return None;
    }
    let baseline = shared.exec.baseline();
    if baseline.truncated {
        return Some(StrategyOutcome {
            on_path: is_on_path(strategy),
            strategy: strategy.clone(),
            verdict: Verdict::default(),
            metrics: baseline.clone(),
            repeatable: false,
            false_positive: false,
            outcome_kind: OutcomeKind::Truncated,
            error: None,
            memo: Some("inert".to_owned()),
        });
    }
    let verdict = detect_enveloped(&shared.envelope, baseline);
    if verdict.flagged() {
        return None;
    }
    Some(StrategyOutcome {
        on_path: is_on_path(strategy) || is_self_denial(strategy, &verdict),
        strategy: strategy.clone(),
        verdict,
        metrics: baseline.clone(),
        repeatable: true,
        false_positive: false,
        outcome_kind: OutcomeKind::Ok,
        error: None,
        memo: Some("inert".to_owned()),
    })
}

/// Memo-class key covering every run [`evaluate`] might make for a
/// strategy: the main-seed class key joined with the re-test seed's when
/// re-testing is on. Strategies sharing the composite key are
/// trigger-equivalent under every executor involved, so their evaluations
/// are identical end to end — including the inert-volume control run,
/// whose trigger has the same first-visibility instant as the member's.
fn class_key(shared: &Shared, strategy: &Strategy) -> Option<String> {
    if !shared.memoize {
        return None;
    }
    let main = shared.exec.class_key(strategy)?;
    match &shared.retest_exec {
        None => Some(main),
        Some(retest) => {
            let rk = retest.class_key(strategy)?;
            Some(format!("{main}|{rk}"))
        }
    }
}

/// Copies a class representative's outcome onto a trigger-equivalent
/// member. The run results are identical by construction; only the
/// strategy identity and the strategy-derived on-path classification are
/// recomputed (class members can sit on different endpoint/state pairs).
fn materialize_class_member(rep: &StrategyOutcome, strategy: Strategy) -> StrategyOutcome {
    let on_path = match rep.outcome_kind {
        OutcomeKind::Ok => is_on_path(&strategy) || is_self_denial(&strategy, &rep.verdict),
        _ => is_on_path(&strategy),
    };
    StrategyOutcome {
        on_path,
        strategy,
        verdict: rep.verdict,
        metrics: rep.metrics.clone(),
        repeatable: rep.repeatable,
        false_positive: rep.false_positive,
        outcome_kind: rep.outcome_kind,
        error: None,
        memo: Some("class".to_owned()),
    }
}

/// Executes one strategy end to end: attack run, verdict, repeatability
/// re-test, and (for flagged hitseqwindow strategies) the inert-volume
/// false-positive control.
fn evaluate(shared: &Shared, strategy: Strategy) -> StrategyOutcome {
    let SharedCtx {
        exec,
        retest_exec,
        config,
        ..
    } = &**shared;
    let (metrics, info) = exec.run_with_info(Some(strategy.clone()));
    // A halted run (every rule spent with zero wire effect) substituted
    // the baseline outcome; the marker records that this outcome was
    // short-circuited, and takes precedence over a fingerprint-cache hit
    // on the same (baseline-equal) metrics.
    let memo: Option<String> = info.halted.then(|| "halt".to_owned());
    if metrics.truncated {
        // A budget-truncated run transferred less data because it ran for
        // less virtual time; comparing it against a full-length baseline
        // would manufacture degradation verdicts. Report it as truncated
        // and skip the re-test and control runs.
        return StrategyOutcome {
            on_path: is_on_path(&strategy),
            strategy,
            verdict: Verdict::default(),
            metrics,
            repeatable: false,
            false_positive: false,
            outcome_kind: OutcomeKind::Truncated,
            error: None,
            memo,
        };
    }
    // The verdict is always computed fresh here; the wire-effect
    // fingerprint cache lives in the [`MemoLedger`] and is consulted only
    // at admission, after evaluation. Equal fingerprints mean
    // byte-identical runs, so a cache hit's verdict equals this freshly
    // computed one by construction — moving the lookup out of the workers
    // changes no outcome, it only makes the `"fp"` markers independent of
    // worker completion order. Cached (and therefore persisted) verdicts
    // are always unflagged, which keeps the re-test and control logic
    // below trivially consistent with a later marker assignment.
    let verdict = detect_enveloped(&shared.envelope, &metrics);

    // Flagged verdicts re-test as always; with an ensemble (reps > 1),
    // *borderline* results — within BORDERLINE_MARGIN of an envelope edge,
    // on either side — are escalated to the same different-seed re-test
    // instead of trusting a single draw of the noise. A borderline flag
    // must repeat to survive; a borderline near-miss gets a confirmatory
    // run (counted, never promoted to a flag, so the ensemble's zero-FP
    // guarantee is preserved).
    let mut repeatable = true;
    let borderline = shared.config.baseline_reps > 1 && shared.envelope.is_borderline(&metrics);
    if verdict.flagged() || borderline {
        if let Some(retest) = retest_exec {
            if borderline {
                shared.escalated.fetch_add(1, Ordering::Relaxed);
                config.observer.counter_add("campaign.escalated", 1);
            }
            let _span = observe::span(config.observer.as_ref(), "phase.retests", 0);
            let again = retest.run(Some(strategy.clone()));
            let retest_env = shared
                .retest_envelope
                .as_ref()
                .expect("a re-test executor always has a re-test envelope");
            let again_flagged = !again.truncated && detect_enveloped(retest_env, &again).flagged();
            if verdict.flagged() {
                repeatable = again_flagged;
            }
        }
    }

    let mut false_positive = false;
    if verdict.flagged() && repeatable {
        if let StrategyKind::OnState {
            endpoint,
            state,
            attack:
                InjectionAttack::HitSeqWindow {
                    packet_type,
                    direction,
                    stride,
                    count,
                    rate_pps,
                    inert: false,
                },
        } = &strategy.kind
        {
            // Control run: identical volume aimed at a dead port. If the
            // impact persists, it came from the packet volume, not from
            // hitting the sequence window.
            let control = Strategy {
                id: strategy.id,
                kind: StrategyKind::OnState {
                    endpoint: *endpoint,
                    state: state.clone(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: packet_type.clone(),
                        direction: *direction,
                        stride: *stride,
                        count: *count,
                        rate_pps: *rate_pps,
                        inert: true,
                    },
                },
            };
            let control_metrics = exec.run(Some(control));
            let control_verdict = detect_enveloped(&shared.envelope, &control_metrics);
            false_positive = !control_metrics.truncated && control_verdict.flagged();
        }
    }

    StrategyOutcome {
        on_path: is_on_path(&strategy) || is_self_denial(&strategy, &verdict),
        strategy,
        verdict,
        metrics,
        repeatable,
        false_positive,
        outcome_kind: OutcomeKind::Ok,
        error: None,
        memo,
    }
}

/// Wraps [`evaluate`] in a panic boundary: a crashing engine run becomes an
/// [`OutcomeKind::Errored`] outcome carrying the panic message, instead of
/// unwinding through the batch and losing every other result.
fn evaluate_guarded(shared: &Shared, strategy: Strategy) -> StrategyOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(hook) = &shared.config.fault_hook {
            hook(&strategy);
        }
        if let Some(chaos) = &shared.config.chaos {
            chaos.apply(&strategy);
        }
        evaluate(shared, strategy.clone())
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => StrategyOutcome {
            on_path: is_on_path(&strategy),
            strategy,
            verdict: Verdict::default(),
            metrics: TestMetrics::empty(),
            repeatable: false,
            false_positive: false,
            outcome_kind: OutcomeKind::Errored,
            error: Some(panic_message(payload.as_ref())),
            memo: None,
        },
    }
}

/// Wraps [`evaluate_guarded`] in the per-run watchdog when a deadline is
/// configured: the evaluation runs on its own thread, and if no outcome
/// arrives within the wall-clock deadline the attempt is abandoned and
/// retried with doubling backoff. Once the retry budget is spent the
/// strategy is quarantined as [`OutcomeKind::Stalled`] — the campaign
/// moves on instead of hanging on one livelocked engine.
///
/// Abandoned threads are detached, never killed: they hold only `Arc`
/// clones, their late results are dropped on a closed channel, and the
/// journal append happens in the watchdog's caller, so a straggler can
/// never write anything.
pub(crate) fn evaluate_watched(shared: &Shared, strategy: Strategy) -> StrategyOutcome {
    let Some(deadline) = shared.config.deadline else {
        return evaluate_guarded(shared, strategy);
    };
    let observer = shared.config.observer.clone();
    let retries = shared.config.stall_retries;
    let mut backoff = shared.config.stall_backoff;
    for attempt in 0..=retries {
        let (tx, rx) = mpsc::channel();
        let worker_shared = Arc::clone(shared);
        let worker_strategy = strategy.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("snake-eval-{}", strategy.id))
            .spawn(move || {
                let _ = tx.send(evaluate_guarded(&worker_shared, worker_strategy));
            });
        if spawned.is_err() {
            // Thread exhaustion: fall back to an unwatched inline run
            // rather than failing the strategy for a host-side problem.
            return evaluate_guarded(shared, strategy);
        }
        match rx.recv_timeout(deadline) {
            Ok(outcome) => return outcome,
            Err(_) => {
                shared.stalls.fetch_add(1, Ordering::Relaxed);
                observer.counter_add("campaign.stalls", 1);
                if attempt < retries {
                    observer.counter_add("campaign.stall_retries", 1);
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }
    shared.quarantined.fetch_add(1, Ordering::Relaxed);
    observer.counter_add("campaign.quarantined", 1);
    StrategyOutcome {
        on_path: is_on_path(&strategy),
        error: Some(format!(
            "stalled: no outcome within {deadline:?} in any of {} attempts; quarantined",
            retries + 1
        )),
        strategy,
        verdict: Verdict::default(),
        metrics: TestMetrics::empty(),
        repeatable: false,
        false_positive: false,
        outcome_kind: OutcomeKind::Stalled,
        memo: None,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Per-worker activity tally, folded into the observer's histograms when
/// observation is enabled. The `Instant` reads are gated on
/// [`Observer::enabled`], so the default no-op observer costs the workers
/// nothing but a branch per claim.
struct WorkerClock {
    started: Option<Instant>,
    busy_nanos: u64,
    claimed: u64,
}

impl WorkerClock {
    fn start(enabled: bool) -> WorkerClock {
        WorkerClock {
            started: enabled.then(Instant::now),
            busy_nanos: 0,
            claimed: 0,
        }
    }

    /// Runs `work`, attributing its wall time to this worker's busy tally.
    fn time<T>(&mut self, work: impl FnOnce() -> T) -> T {
        let t0 = self.started.map(|_| Instant::now());
        let out = work();
        if let Some(t0) = t0 {
            self.busy_nanos += t0.elapsed().as_nanos() as u64;
        }
        self.claimed += 1;
        out
    }

    /// Emits the per-worker histogram samples: busy wall time, idle wall
    /// time (lifetime minus busy — claim overhead, journal contention,
    /// end-of-batch drain), and strategies claimed.
    fn finish(self, observer: &dyn Observer) {
        let Some(started) = self.started else { return };
        let lifetime = started.elapsed().as_nanos() as u64;
        observer.record("worker.busy_nanos", self.busy_nanos);
        observer.record(
            "worker.idle_nanos",
            lifetime.saturating_sub(self.busy_nanos),
        );
        observer.record("worker.claimed", self.claimed);
    }
}

/// Holds outcomes finished out of order until every lower-index outcome
/// has been admitted, so admission (memo-marker assignment, cache insert,
/// store append) and journaling happen strictly in strategy-index order at
/// any worker count — exactly the sequence a single worker would produce.
/// Entries carry the worker counter deltas to fold at admission (`None`
/// for outcomes evaluated in this process, whose counters reached the
/// observer directly).
struct ReleaseState {
    /// The next strategy index to admit.
    next: usize,
    /// Outcomes evaluated ahead of `next`, keyed by index.
    pending: BTreeMap<usize, PendingOutcome>,
    /// Admitted outcomes, in index order.
    done: Vec<StrategyOutcome>,
}

/// An outcome paired with the worker counter deltas it arrived with
/// (`None` for outcomes evaluated in this process, whose counters reached
/// the observer directly).
type PendingOutcome = (StrategyOutcome, Option<Vec<(String, u64)>>);

/// Admission callback threaded through the batch runtimes: the admitted
/// outcome plus its worker counter deltas, if any.
type OnOutcome<'a> = &'a (dyn Fn(&StrategyOutcome, Option<&[(String, u64)]>) + Sync);

/// An outcome a shard (or a segment prefetch) delivered, with the worker
/// counter deltas that rode along with it.
type DeliveredOutcome = (StrategyOutcome, Vec<(String, u64)>);

/// Admits the contiguous ready prefix of the release buffer: fold the
/// entry's counter deltas (segment-prefetched outcomes carry the crashed
/// run's worker tallies), assign memo markers through the ledger, journal.
fn drain_release(
    state: &mut ReleaseState,
    shared: &Shared,
    ledger: &Mutex<MemoLedger>,
    on_outcome: OnOutcome<'_>,
) {
    loop {
        let turn = state.next;
        let Some((mut outcome, counters)) = state.pending.remove(&turn) else {
            break;
        };
        if let Some(counters) = &counters {
            fold_worker_counters(shared, counters);
        }
        ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admit(&mut outcome);
        on_outcome(&outcome, counters.as_deref());
        state.done.push(outcome);
        state.next += 1;
    }
}

/// Runs a batch of strategies across `parallelism` worker threads — the
/// paper's pool of executors with linear speedup (§V-D). Each outcome is
/// admitted through the [`MemoLedger`] and handed to `on_outcome`
/// (journal append, progress) as soon as every earlier-index outcome has
/// been, so a killed process loses at most the runs that were still in
/// flight or held back by one — and the journal is always an index-order
/// prefix of the batch.
///
/// `pre` holds segment-prefetched outcomes (from a crashed sharded run)
/// positionally: a `Some` index is never evaluated, its outcome replays
/// through the identical admission sequence instead.
fn run_batch(
    shared: &Shared,
    ledger: &Mutex<MemoLedger>,
    strategies: Vec<Strategy>,
    pre: Vec<Option<SegmentEntry>>,
    parallelism: usize,
    on_outcome: OnOutcome<'_>,
) -> Vec<StrategyOutcome> {
    let n = strategies.len();
    if n == 0 {
        return Vec::new();
    }
    let observer = shared.config.observer.as_ref();
    let enabled = observer.enabled();
    let workers = parallelism.clamp(1, n);
    if workers == 1 {
        let mut clock = WorkerClock::start(enabled);
        let mut pre = pre.into_iter();
        let out = strategies
            .into_iter()
            .map(|s| {
                let (mut outcome, counters) = match pre.next().flatten() {
                    Some(entry) => (entry.outcome, Some(entry.counters)),
                    None => (clock.time(|| evaluate_watched(shared, s)), None),
                };
                if let Some(counters) = &counters {
                    fold_worker_counters(shared, counters);
                }
                ledger
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .admit(&mut outcome);
                on_outcome(&outcome, counters.as_deref());
                outcome
            })
            .collect();
        clock.finish(observer);
        return out;
    }
    // Lock-free work distribution: workers claim the next strategy index
    // with a relaxed fetch-add (no queue mutex on the hot path). Finished
    // outcomes flow through the release buffer, which admits and journals
    // them in index order regardless of which worker finished first —
    // evaluation itself (the expensive part) still runs fully in
    // parallel; only the cheap admission step is serialized. Lock order
    // is always release → ledger → journal.
    let jobs = &strategies[..];
    let prefetched: Vec<bool> = pre.iter().map(Option::is_some).collect();
    let mut seeded: BTreeMap<usize, PendingOutcome> = BTreeMap::new();
    for (i, entry) in pre.into_iter().enumerate() {
        if let Some(entry) = entry {
            seeded.insert(i, (entry.outcome, Some(entry.counters)));
        }
    }
    let next = AtomicUsize::new(0);
    let release = Mutex::new(ReleaseState {
        next: 0,
        pending: seeded,
        done: Vec::with_capacity(n),
    });
    // A fully prefetched prefix (or batch) must admit even if no worker
    // ever inserts ahead of it.
    drain_release(
        &mut release.lock().unwrap_or_else(|e| e.into_inner()),
        shared,
        ledger,
        on_outcome,
    );
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut clock = WorkerClock::start(enabled);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(strategy) = jobs.get(i) else { break };
                    if prefetched[i] {
                        continue;
                    }
                    let outcome = clock.time(|| evaluate_watched(shared, strategy.clone()));
                    let mut state = release.lock().unwrap_or_else(|e| e.into_inner());
                    state.pending.insert(i, (outcome, None));
                    drain_release(&mut state, shared, ledger, on_outcome);
                }
                clock.finish(observer);
            });
        }
    });
    release.into_inner().unwrap_or_else(|e| e.into_inner()).done
}

/// Replays the counter deltas a shard worker reported for one outcome
/// into the controller's observer, so manifest tallies match a
/// single-process run. The `campaign.*` watchdog/escalation counters also
/// feed the shared atomics [`CampaignResult`] reports from — in-process
/// those are bumped inside `evaluate`, which sharded execution never
/// calls on the controller. Names outside the intern table are dropped.
fn fold_worker_counters(shared: &Shared, counters: &[(String, u64)]) {
    let observer = shared.config.observer.as_ref();
    for (name, delta) in counters {
        let Some(interned) = intern_counter(name) else {
            continue;
        };
        match interned {
            "campaign.escalated" => {
                shared
                    .escalated
                    .fetch_add(*delta as usize, Ordering::Relaxed);
            }
            "campaign.stalls" => {
                shared.stalls.fetch_add(*delta as usize, Ordering::Relaxed);
            }
            "campaign.quarantined" => {
                shared
                    .quarantined
                    .fetch_add(*delta as usize, Ordering::Relaxed);
            }
            _ => {}
        }
        observer.counter_add(interned, *delta);
    }
}

/// Returns a dead shard's not-yet-received indices to the dispatch queue
/// as contiguous ranges, front of the queue so the lowest indices (the
/// ones holding back admission) go back out first. Returns how many
/// ranges were re-created, for the re-dispatch tally.
fn requeue_outstanding(
    queue: &mut std::collections::VecDeque<(usize, usize)>,
    outstanding: &mut std::collections::VecDeque<usize>,
) -> u64 {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for index in outstanding.drain(..) {
        match ranges.last_mut() {
            Some((start, len)) if *start + *len == index => *len += 1,
            _ => ranges.push((index, 1)),
        }
    }
    let count = ranges.len() as u64;
    for range in ranges.into_iter().rev() {
        queue.push_front(range);
    }
    count
}

/// Runs a batch across the shard worker pool — the multi-process analogue
/// of [`run_batch`], with the identical admission contract: outcomes pass
/// through the [`MemoLedger`] and `on_outcome` strictly in strategy-index
/// order, so journal, memo markers and TSV are bit-identical to the
/// in-process path no matter how many shards raced, died or got their
/// ranges re-dispatched.
///
/// Dispatch is pull-ish: the batch is cut into contiguous ranges of about
/// a quarter of a shard's fair share, and each shard holds at most two
/// ranges' worth of outstanding work, so a slow shard strands little.
/// A shard that disconnects, breaks the framing, or answers out of
/// contract (wrong index order, an index it was never given, a strategy
/// id that does not match) is killed and its unfinished indices are
/// re-dispatched. If every shard dies mid-batch the controller finishes
/// the remainder in-process — results identical, only slower.
///
/// `pre` seeds `received` with segment-prefetched outcomes from a crashed
/// run: those indices are never dispatched (the queue covers only the
/// gaps), yet they admit at their exact position with the crashed run's
/// worker counter deltas — so a resumed campaign re-evaluates nothing and
/// still produces byte-identical output.
fn run_batch_sharded(
    shared: &Shared,
    ledger: &Mutex<MemoLedger>,
    strategies: Vec<Strategy>,
    pre: Vec<Option<SegmentEntry>>,
    pool: &mut ShardPool,
    on_outcome: OnOutcome<'_>,
) -> Vec<StrategyOutcome> {
    let n = strategies.len();
    if n == 0 {
        return Vec::new();
    }
    let mut received: Vec<Option<DeliveredOutcome>> = pre
        .into_iter()
        .map(|entry| entry.map(|e| (e.outcome, e.counters)))
        .collect();
    let mut got = received.iter().filter(|slot| slot.is_some()).count();
    let chunk = n.div_ceil(pool.live().max(1) * 4).max(1);
    // Queue only the gaps between prefetched outcomes, as contiguous
    // ranges cut to chunk size (the `n` sentinel closes a trailing run).
    let mut queue: std::collections::VecDeque<(usize, usize)> = Default::default();
    let mut run_start: Option<usize> = None;
    for i in 0..=n {
        let needs_eval = received.get(i).is_some_and(Option::is_none);
        match (run_start, needs_eval) {
            (None, true) => run_start = Some(i),
            (Some(start), false) => {
                let mut cursor = start;
                while cursor < i {
                    let len = chunk.min(i - cursor);
                    queue.push_back((cursor, len));
                    cursor += len;
                }
                run_start = None;
            }
            _ => {}
        }
    }
    let mut outstanding: Vec<std::collections::VecDeque<usize>> =
        (0..pool.len()).map(|_| Default::default()).collect();
    let mut done: Vec<StrategyOutcome> = Vec::with_capacity(n);
    let mut next_admit = 0usize;

    let admit = |outcome: &mut StrategyOutcome| {
        ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admit(outcome);
    };

    // Release any prefetched prefix before dispatching: its counters fold
    // and its journal lines write exactly as an uninterrupted run's would.
    while next_admit < n {
        let Some((mut outcome, counters)) = received[next_admit].take() else {
            break;
        };
        fold_worker_counters(shared, &counters);
        admit(&mut outcome);
        on_outcome(&outcome, Some(&counters));
        done.push(outcome);
        next_admit += 1;
    }

    // Per-shard progress deadline: heartbeats prove a worker *process* is
    // alive (they feed the read deadline), but only outcomes prove it is
    // *working*. A shard that holds outstanding work for a whole
    // `shard_timeout` without delivering anything — a frame lost on the
    // wire, an evaluation thread wedged behind a live heartbeat thread —
    // is killed and its work re-dispatched.
    let progress_window = shared.config.shard_timeout;
    let mut progress: Vec<Instant> = vec![Instant::now(); pool.len()];
    while got < n {
        if pool.live() == 0 {
            break;
        }
        // Top-up: hand queued ranges to the least-loaded live shards.
        loop {
            let target = (0..pool.len())
                .filter(|&s| pool.is_live(s) && outstanding[s].len() < 2 * chunk)
                .min_by_key(|&s| outstanding[s].len());
            let Some(shard) = target else { break };
            let Some((start, len)) = queue.pop_front() else {
                break;
            };
            if pool.send_range(shard, start, &strategies[start..start + len]) {
                outstanding[shard].extend(start..start + len);
                progress[shard] = Instant::now();
            } else {
                queue.push_front((start, len));
            }
        }
        if pool.live() == 0 {
            break;
        }
        match pool.next_event_timeout(progress_window) {
            PoolWait::Idle => {
                for shard in 0..pool.len() {
                    if pool.is_live(shard)
                        && !outstanding[shard].is_empty()
                        && progress[shard].elapsed() >= progress_window
                    {
                        pool.kill(shard);
                        pool.ranges_redispatched +=
                            requeue_outstanding(&mut queue, &mut outstanding[shard]);
                        pool.try_reconnect(shard, &shared.config);
                    }
                }
            }
            PoolWait::Closed => {
                // Every reader thread is gone; nothing further can arrive.
                for shard in 0..pool.len() {
                    pool.kill(shard);
                }
                break;
            }
            PoolWait::Event(ShardEvent::Dead {
                shard,
                generation,
                timed_out,
            }) => {
                // Gate on generation alone, NOT liveness: a failed
                // `send_range` kills the link without draining its
                // outstanding indices (the Dead event owns that), so a
                // Dead for the *current* generation must still requeue
                // even when the slot was already killed. Only a retired
                // generation's reader winding down is stale.
                if generation != pool.generation(shard) {
                    continue;
                }
                if timed_out {
                    pool.heartbeats_missed += 1;
                }
                pool.kill(shard);
                pool.ranges_redispatched +=
                    requeue_outstanding(&mut queue, &mut outstanding[shard]);
                pool.try_reconnect(shard, &shared.config);
            }
            PoolWait::Event(ShardEvent::Outcome {
                shard,
                generation,
                index,
                busy_nanos,
                counters,
                outcome,
            }) => {
                if generation != pool.generation(shard) || !pool.is_live(shard) {
                    // Late traffic from a connection already declared dead;
                    // its indices were re-queued, so this result is stale.
                    continue;
                }
                let in_contract = outstanding[shard].front() == Some(&index)
                    && index < n
                    && index >= next_admit
                    && received[index].is_none()
                    && outcome.strategy.id == strategies[index].id;
                if !in_contract {
                    pool.kill(shard);
                    pool.ranges_redispatched +=
                        requeue_outstanding(&mut queue, &mut outstanding[shard]);
                    pool.try_reconnect(shard, &shared.config);
                    continue;
                }
                outstanding[shard].pop_front();
                progress[shard] = Instant::now();
                pool.record_busy(shard, busy_nanos);
                received[index] = Some((*outcome, counters));
                got += 1;
                // Admission drain: release the contiguous prefix. Counters
                // fold here, not at receipt, so a stale result that never
                // admits never skews the observer either.
                while next_admit < n {
                    let Some((mut outcome, counters)) = received[next_admit].take() else {
                        break;
                    };
                    fold_worker_counters(shared, &counters);
                    admit(&mut outcome);
                    on_outcome(&outcome, Some(&counters));
                    done.push(outcome);
                    next_admit += 1;
                }
            }
        }
    }

    // In-process completion of whatever the pool did not deliver — the
    // whole batch when the pool died at launch, the tail when it died
    // mid-run. Already-received outcomes are reused, not re-run.
    for index in next_admit..n {
        let (mut outcome, counters) = match received[index].take() {
            Some((outcome, counters)) => (outcome, Some(counters)),
            None => (evaluate_watched(shared, strategies[index].clone()), None),
        };
        if let Some(counters) = &counters {
            fold_worker_counters(shared, counters);
        }
        admit(&mut outcome);
        on_outcome(&outcome, counters.as_deref());
        done.push(outcome);
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;
    use snake_proxy::{BasicAttack, Endpoint};
    use snake_tcp::Profile;

    #[test]
    fn tiny_campaign_runs_end_to_end() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let config = CampaignConfig::builder(spec)
            .cap(12)
            .parallelism(4)
            .feedback_rounds(1)
            .retest(false)
            .build()
            .expect("valid config");
        let result = Campaign::run(config).expect("valid baseline");
        assert_eq!(result.strategies_tried(), 12);
        assert_eq!(result.protocol, "TCP");
        assert!(result.baseline.target_bytes > 0);
        assert_eq!(result.errored(), 0);
        assert_eq!(result.truncated(), 0);
        // Bookkeeping invariants.
        assert!(result.attack_strategies_found() >= result.true_attack_strategies());
        let row = result.table_row();
        assert!(row.contains("Linux 3.13"));
    }

    #[test]
    fn tsv_export_has_one_row_per_outcome() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let config = CampaignConfig::builder(spec)
            .cap(6)
            .parallelism(2)
            .feedback_rounds(1)
            .retest(false)
            .build()
            .expect("valid config");
        let result = Campaign::run(config).expect("valid baseline");
        let tsv = result.export_outcomes_tsv();
        assert_eq!(tsv.lines().count(), 1 + 6, "header + one row per strategy");
        assert!(tsv.starts_with("id\tstrategy"));
        assert!(tsv.contains("drop=100%"));
    }

    #[test]
    fn tsv_export_escapes_free_text_fields() {
        let hostile = Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "EST\tABL\nISHED".into(),
                packet_type: "ACK\r".into(),
                attack: BasicAttack::Drop { percent: 100 },
            },
        };
        let outcome = StrategyOutcome {
            strategy: hostile,
            verdict: Verdict::default(),
            metrics: TestMetrics::empty(),
            repeatable: false,
            on_path: false,
            false_positive: false,
            outcome_kind: OutcomeKind::Errored,
            error: Some("boom\tat line\n3".into()),
            memo: None,
        };
        let result = CampaignResult {
            protocol: "TCP".into(),
            implementation: "test".into(),
            baseline: TestMetrics::empty(),
            outcomes: vec![outcome],
            findings: Vec::new(),
            resumed: 0,
            journal_lines_skipped: 0,
            memo_hits: 0,
            short_circuits: 0,
            baseline_reps: 1,
            envelope: Envelope::from_baseline(&TestMetrics::empty(), DEFAULT_THRESHOLD),
            escalated: 0,
            stalls: 0,
            quarantined: 0,
            memo_store: None,
        };
        let tsv = result.export_outcomes_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 2, "hostile describe() must not add rows");
        let columns = lines[1].split('\t').count();
        assert_eq!(
            columns,
            lines[0].split('\t').count(),
            "column structure survives"
        );
        assert!(tsv.contains("EST\\tABL\\nISHED"));
        assert!(tsv.contains("boom\\tat line\\n3"));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let config = |workers| {
            CampaignConfig::builder(spec.clone())
                .cap(8)
                .feedback_rounds(1)
                .retest(false)
                .parallelism(workers)
                .build()
                .expect("valid config")
        };
        let serial = Campaign::run(config(1)).expect("valid baseline");
        let parallel = Campaign::run(config(4)).expect("valid baseline");
        let v1: Vec<_> = serial
            .outcomes
            .iter()
            .map(|o| (o.strategy.id, o.verdict))
            .collect();
        let v2: Vec<_> = parallel
            .outcomes
            .iter()
            .map(|o| (o.strategy.id, o.verdict))
            .collect();
        assert_eq!(v1, v2, "parallelism must not change results");
    }

    #[test]
    fn invalid_baseline_is_an_error_not_a_table() {
        // A scenario with no data phase moves no bytes, so the baseline
        // cannot anchor throughput comparisons.
        let mut spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        spec.data_secs = 0;
        spec.grace_secs = 0;
        let config = CampaignConfig::builder(spec)
            .cap(2)
            .feedback_rounds(1)
            .retest(false)
            .build()
            .expect("valid config");
        match Campaign::run(config) {
            Err(CampaignError::InvalidBaseline { implementation }) => {
                assert!(implementation.contains("3.13"), "{implementation}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
    }

    #[test]
    fn resume_without_journal_is_rejected() {
        // The builder catches the combination before anything runs.
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        assert!(matches!(
            CampaignConfig::builder(spec).resume(true).build(),
            Err(CampaignError::ResumeWithoutJournal)
        ));
    }

    #[test]
    fn builder_rejects_degenerate_settings() {
        let spec = || ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        for broken in [
            CampaignConfig::builder(spec()).threshold(f64::NAN),
            CampaignConfig::builder(spec()).threshold(0.0),
            CampaignConfig::builder(spec()).parallelism(0),
            CampaignConfig::builder(spec()).feedback_rounds(0),
            CampaignConfig::builder(spec()).baseline_reps(0),
            CampaignConfig::builder(spec()).deadline(Duration::ZERO),
            // The store is the fingerprint cache's disk layer; explicitly
            // disabling memoization while asking for one is contradictory.
            CampaignConfig::builder(spec())
                .memo_store("/tmp/unused-store.jsonl")
                .memoize(false),
        ] {
            match broken.build() {
                Err(CampaignError::InvalidConfig { detail }) => {
                    assert!(!detail.is_empty());
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_presets_resolve_by_name_and_schedule_deterministically() {
        for (name, plan) in ChaosPlan::presets() {
            assert_eq!(ChaosPlan::preset(name), Some(*plan));
        }
        assert_eq!(ChaosPlan::preset("nope"), None);
        let plan = ChaosPlan::preset("journal").unwrap();
        assert!(plan.fails_journal_write(3));
        assert!(plan.fails_journal_write(6));
        assert!(!plan.fails_journal_write(4));
        // A default (empty) plan injects nothing anywhere.
        let noop = ChaosPlan::default();
        assert!(!noop.fails_journal_write(1));
        noop.apply(&Strategy {
            id: 0,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Drop { percent: 100 },
            },
        });
    }

    #[test]
    fn ensemble_seeds_are_distinct_and_avoid_the_retest_seed() {
        let seed = 7u64;
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(seed);
        seen.insert(seed.wrapping_add(1)); // the re-test seed
        for k in 1..16 {
            assert!(seen.insert(ensemble_seed(seed, k)), "collision at k={k}");
        }
    }
}
