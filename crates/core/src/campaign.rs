use std::collections::BTreeSet;
use std::sync::Arc;

use crossbeam::channel;
use serde::{Deserialize, Serialize};
use snake_proxy::{InjectionAttack, Strategy, StrategyKind};

use crate::attacks::{classify, cluster_attacks, AttackFinding};
use crate::detect::{detect, Verdict, DEFAULT_THRESHOLD};
use crate::scenario::{Executor, ScenarioSpec, TestMetrics};
use crate::strategen::{generate_strategies, is_on_path, is_self_denial, GenerationParams};

/// Configuration of one campaign: one implementation under test, searched
/// exhaustively with the state-based strategy generator.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The scenario every strategy is tested in.
    pub scenario: ScenarioSpec,
    /// Basic-attack parameter lists.
    pub params: GenerationParams,
    /// Detection threshold (the paper's 50 %).
    pub threshold: f64,
    /// Executor worker threads (the paper ran five executors).
    pub parallelism: usize,
    /// Optional cap on the number of strategies to test (for quick runs).
    pub max_strategies: Option<usize>,
    /// How many feedback rounds of strategy generation to run: round 0
    /// uses the baseline's observations, later rounds add strategies for
    /// states first exposed by attack runs.
    pub feedback_rounds: usize,
    /// Re-test flagged strategies under a different seed and keep only
    /// repeatable ones (§V-A).
    pub retest: bool,
}

impl CampaignConfig {
    /// Defaults mirroring the paper's setup (five executors, 50 %
    /// threshold, repeatability re-testing, two feedback rounds).
    pub fn new(scenario: ScenarioSpec) -> CampaignConfig {
        CampaignConfig {
            scenario,
            params: GenerationParams::default(),
            threshold: DEFAULT_THRESHOLD,
            parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_strategies: None,
            feedback_rounds: 2,
            retest: true,
        }
    }
}

/// The outcome of testing one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// The strategy tested.
    pub strategy: Strategy,
    /// Detection verdict against the baseline.
    pub verdict: Verdict,
    /// Raw metrics of the (first) attack run.
    pub metrics: TestMetrics,
    /// Whether the flagged result repeated under a different seed.
    pub repeatable: bool,
    /// Whether the strategy requires an on-path attacker.
    pub on_path: bool,
    /// Whether the inert-volume control run showed the impact comes from
    /// packet volume rather than protocol effect (hitseqwindow false
    /// positives, §VI-A).
    pub false_positive: bool,
}

impl StrategyOutcome {
    /// Flagged, repeatable, not on-path, not a false positive: a true
    /// attack strategy (the paper's final per-row count).
    pub fn is_true_attack(&self) -> bool {
        self.verdict.flagged() && self.repeatable && !self.on_path && !self.false_positive
    }
}

/// The paper's *controller*: generates strategies, dispatches them to
/// executors, and judges the outcomes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Controller;

/// A full campaign against one implementation — one row of Table I.
#[derive(Debug, Clone, Copy, Default)]
pub struct Campaign;

/// Aggregated results of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Protocol name ("TCP" / "DCCP").
    pub protocol: String,
    /// Implementation name.
    pub implementation: String,
    /// The baseline (no-attack) metrics.
    pub baseline: TestMetrics,
    /// Every strategy outcome.
    pub outcomes: Vec<StrategyOutcome>,
    /// Unique attacks found (clusters of true attack strategies).
    pub findings: Vec<AttackFinding>,
}

impl CampaignResult {
    /// Table I: strategies tried.
    pub fn strategies_tried(&self) -> usize {
        self.outcomes.len()
    }

    /// Table I: attack strategies found (flagged and repeatable).
    pub fn attack_strategies_found(&self) -> usize {
        self.outcomes.iter().filter(|o| o.verdict.flagged() && o.repeatable).count()
    }

    /// Table I: of the found strategies, those requiring an on-path
    /// attacker.
    pub fn on_path_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.flagged() && o.repeatable && o.on_path)
            .count()
    }

    /// Table I: of the found strategies, hitseqwindow volume artefacts.
    pub fn false_positive_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.flagged() && o.repeatable && !o.on_path && o.false_positive)
            .count()
    }

    /// Table I: true attack strategies.
    pub fn true_attack_strategies(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_true_attack()).count()
    }

    /// Table I: unique true attacks after clustering.
    pub fn true_attacks(&self) -> usize {
        self.findings.len()
    }

    /// Exports every strategy outcome as tab-separated values (one row per
    /// strategy) for offline analysis — the controller-side log the
    /// paper's authors worked from when separating on-path strategies and
    /// false positives by hand.
    pub fn export_outcomes_tsv(&self) -> String {
        let mut out = String::from(
            "id	strategy	flagged	repeatable	on_path	false_positive	true_attack	effects	target_bytes	competing_bytes	leaked_sockets
",
        );
        for o in &self.outcomes {
            out.push_str(&format!(
                "{}	{}	{}	{}	{}	{}	{}	{}	{}	{}	{}
",
                o.strategy.id,
                o.strategy.describe(),
                o.verdict.flagged(),
                o.repeatable,
                o.on_path,
                o.false_positive,
                o.is_true_attack(),
                o.verdict.labels().join(","),
                o.metrics.target_bytes,
                o.metrics.competing_bytes,
                o.metrics.leaked_sockets,
            ));
        }
        out
    }

    /// Renders this campaign as one Table I row.
    pub fn table_row(&self) -> String {
        format!(
            "| {:<5} | {:<13} | {:>16} | {:>23} | {:>15} | {:>15} | {:>22} | {:>12} |",
            self.protocol,
            self.implementation,
            self.strategies_tried(),
            self.attack_strategies_found(),
            self.on_path_count(),
            self.false_positive_count(),
            self.true_attack_strategies(),
            self.true_attacks()
        )
    }
}

impl Campaign {
    /// Runs a full campaign: baseline, iterative strategy generation,
    /// parallel execution, verdicts, re-tests, false-positive controls,
    /// classification, clustering.
    pub fn run(config: CampaignConfig) -> CampaignResult {
        let spec = config.scenario.clone();
        let baseline = Executor::run(&spec, None);
        // The repeatability re-test compares a different-seed attack run
        // against the matching different-seed baseline.
        let retest_spec = ScenarioSpec { seed: spec.seed.wrapping_add(1), ..spec.clone() };
        let retest_baseline = if config.retest { Some(Executor::run(&retest_spec, None)) } else { None };

        let mut next_id = 0u64;
        let mut seen = BTreeSet::new();
        let mut outcomes: Vec<StrategyOutcome> = Vec::new();
        let mut reports = vec![baseline.proxy.clone()];
        let shared = Arc::new((spec.clone(), retest_spec, baseline.clone(), retest_baseline, config.clone()));

        for _round in 0..config.feedback_rounds.max(1) {
            let refs: Vec<&snake_proxy::ProxyReport> = reports.iter().collect();
            let mut fresh = generate_strategies(
                &spec.protocol,
                &refs,
                &config.params,
                &mut next_id,
                &mut seen,
            );
            if let Some(cap) = config.max_strategies {
                let room = cap.saturating_sub(outcomes.len());
                fresh.truncate(room);
            }
            if fresh.is_empty() {
                break;
            }
            let round_outcomes = run_batch(&shared, fresh, config.parallelism);
            for o in &round_outcomes {
                // Feedback: states/types newly exposed under attack seed
                // the next round. Only well-behaved runs contribute.
                reports.push(o.metrics.proxy.clone());
            }
            outcomes.extend(round_outcomes);
            if let Some(cap) = config.max_strategies {
                if outcomes.len() >= cap {
                    break;
                }
            }
        }

        // Classify and cluster the true attack strategies.
        let classified: Vec<_> = outcomes
            .iter()
            .filter(|o| o.is_true_attack())
            .map(|o| {
                let attack = classify(&spec.protocol, &o.strategy, &o.verdict, &o.metrics);
                (o.strategy.clone(), o.verdict, attack)
            })
            .collect();
        let findings = cluster_attacks(&classified);

        CampaignResult {
            protocol: spec.protocol.protocol_name().to_owned(),
            implementation: spec.protocol.implementation_name().to_owned(),
            baseline,
            outcomes,
            findings,
        }
    }
}

type Shared = Arc<(
    ScenarioSpec,
    ScenarioSpec,
    TestMetrics,
    Option<TestMetrics>,
    CampaignConfig,
)>;

/// Executes one strategy end to end: attack run, verdict, repeatability
/// re-test, and (for flagged hitseqwindow strategies) the inert-volume
/// false-positive control.
fn evaluate(shared: &Shared, strategy: Strategy) -> StrategyOutcome {
    let (spec, retest_spec, baseline, retest_baseline, config) = &**shared;
    let metrics = Executor::run(spec, Some(strategy.clone()));
    let verdict = detect(baseline, &metrics, config.threshold);

    let mut repeatable = true;
    if verdict.flagged() {
        if let Some(base2) = retest_baseline {
            let again = Executor::run(retest_spec, Some(strategy.clone()));
            repeatable = detect(base2, &again, config.threshold).flagged();
        }
    }

    let mut false_positive = false;
    if verdict.flagged() && repeatable {
        if let StrategyKind::OnState { endpoint, state, attack: InjectionAttack::HitSeqWindow {
            packet_type, direction, stride, count, rate_pps, inert: false } } = &strategy.kind
        {
            // Control run: identical volume aimed at a dead port. If the
            // impact persists, it came from the packet volume, not from
            // hitting the sequence window.
            let control = Strategy {
                id: strategy.id,
                kind: StrategyKind::OnState {
                    endpoint: *endpoint,
                    state: state.clone(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: packet_type.clone(),
                        direction: *direction,
                        stride: *stride,
                        count: *count,
                        rate_pps: *rate_pps,
                        inert: true,
                    },
                },
            };
            let control_metrics = Executor::run(spec, Some(control));
            let control_verdict = detect(baseline, &control_metrics, config.threshold);
            false_positive = control_verdict.flagged();
        }
    }

    StrategyOutcome {
        on_path: is_on_path(&strategy) || is_self_denial(&strategy, &verdict),
        strategy,
        verdict,
        metrics,
        repeatable,
        false_positive,
    }
}

/// Runs a batch of strategies across `parallelism` worker threads — the
/// paper's pool of executors with linear speedup (§V-D).
fn run_batch(shared: &Shared, strategies: Vec<Strategy>, parallelism: usize) -> Vec<StrategyOutcome> {
    let n = strategies.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = parallelism.clamp(1, n);
    if workers == 1 {
        return strategies.into_iter().map(|s| evaluate(shared, s)).collect();
    }
    let (job_tx, job_rx) = channel::unbounded::<(usize, Strategy)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, StrategyOutcome)>();
    for (i, s) in strategies.into_iter().enumerate() {
        job_tx.send((i, s)).expect("queue open");
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let shared = Arc::clone(shared);
            scope.spawn(move || {
                while let Ok((i, strategy)) = job_rx.recv() {
                    let outcome = evaluate(&shared, strategy);
                    if res_tx.send((i, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<StrategyOutcome>> = (0..n).map(|_| None).collect();
        while let Ok((i, outcome)) = res_rx.recv() {
            slots[i] = Some(outcome);
        }
        slots.into_iter().map(|o| o.expect("every job produced a result")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;
    use snake_tcp::Profile;

    #[test]
    fn tiny_campaign_runs_end_to_end() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let config = CampaignConfig {
            max_strategies: Some(12),
            parallelism: 4,
            feedback_rounds: 1,
            retest: false,
            ..CampaignConfig::new(spec)
        };
        let result = Campaign::run(config);
        assert_eq!(result.strategies_tried(), 12);
        assert_eq!(result.protocol, "TCP");
        assert!(result.baseline.target_bytes > 0);
        // Bookkeeping invariants.
        assert!(result.attack_strategies_found() >= result.true_attack_strategies());
        let row = result.table_row();
        assert!(row.contains("Linux 3.13"));
    }

    #[test]
    fn tsv_export_has_one_row_per_outcome() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let config = CampaignConfig {
            max_strategies: Some(6),
            parallelism: 2,
            feedback_rounds: 1,
            retest: false,
            ..CampaignConfig::new(spec)
        };
        let result = Campaign::run(config);
        let tsv = result.export_outcomes_tsv();
        assert_eq!(tsv.lines().count(), 1 + 6, "header + one row per strategy");
        assert!(tsv.starts_with("id\tstrategy"));
        assert!(tsv.contains("drop=100%"));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let base = CampaignConfig {
            max_strategies: Some(8),
            feedback_rounds: 1,
            retest: false,
            ..CampaignConfig::new(spec)
        };
        let serial = Campaign::run(CampaignConfig { parallelism: 1, ..base.clone() });
        let parallel = Campaign::run(CampaignConfig { parallelism: 4, ..base });
        let v1: Vec<_> = serial.outcomes.iter().map(|o| (o.strategy.id, o.verdict)).collect();
        let v2: Vec<_> = parallel.outcomes.iter().map(|o| (o.strategy.id, o.verdict)).collect();
        assert_eq!(v1, v2, "parallelism must not change results");
    }
}
