use crate::scenario::TestMetrics;

/// The paper's detection threshold: "an increase or decrease in achieved
/// throughput of at least 50% compared to the non-attack case" (§VI),
/// grounded in the factor-of-two fairness notion of TFRC.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// What an attempted strategy did to the connection, relative to the
/// baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// The target connection transferred no data at all — a
    /// connection-establishment attack.
    pub establishment_prevented: bool,
    /// Target throughput fell below `(1 - threshold) ×` baseline.
    pub throughput_degradation: bool,
    /// Target throughput rose above `(1 + threshold) ×` baseline — a
    /// fairness attack (the gain comes out of the competing flow).
    pub throughput_gain: bool,
    /// The competing connection fell below `(1 - threshold) ×` its
    /// baseline.
    pub competing_degradation: bool,
    /// Server sockets were not released after the test — a resource
    /// exhaustion candidate.
    pub socket_leak: bool,
}

impl Verdict {
    /// Whether the strategy is flagged as a candidate attack.
    pub fn flagged(&self) -> bool {
        self.establishment_prevented
            || self.throughput_degradation
            || self.throughput_gain
            || self.competing_degradation
            || self.socket_leak
    }

    /// Short labels for reports.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.establishment_prevented {
            v.push("no-connection");
        }
        if self.throughput_degradation {
            v.push("degradation");
        }
        if self.throughput_gain {
            v.push("gain");
        }
        if self.competing_degradation {
            v.push("competing-degradation");
        }
        if self.socket_leak {
            v.push("socket-leak");
        }
        v
    }
}

/// Compares a strategy run against the baseline run (paper §V-A: "the
/// controller ... compares the received metrics observed after the tested
/// attack with the metrics observed in a non-attack test run").
///
/// A baseline that moved zero bytes cannot anchor any throughput
/// comparison — every attack run would spuriously flag `throughput_gain`
/// against it. [`baseline_valid`] rejects such baselines, and
/// `Campaign::run` surfaces that as an explicit error before testing a
/// single strategy; here the throughput comparisons simply disengage so a
/// caller probing `detect` directly gets no bogus flags either.
pub fn detect(baseline: &TestMetrics, attacked: &TestMetrics, threshold: f64) -> Verdict {
    let lo = 1.0 - threshold;
    let hi = 1.0 + threshold;
    let base_t = baseline.target_bytes as f64;
    let base_c = baseline.competing_bytes as f64;
    let t = attacked.target_bytes as f64;
    let c = attacked.competing_bytes as f64;

    Verdict {
        establishment_prevented: attacked.target_bytes == 0 && baseline.target_bytes > 0,
        throughput_degradation: baseline.target_bytes > 0
            && attacked.target_bytes > 0
            && t < base_t * lo,
        throughput_gain: baseline.target_bytes > 0 && t > base_t * hi,
        competing_degradation: baseline.competing_bytes > 0 && c < base_c * lo,
        socket_leak: attacked.leaked_sockets > baseline.leaked_sockets,
    }
}

/// Whether a baseline run can anchor detection: it must have moved data on
/// the target connection. Campaigns treat a failing baseline as an invalid
/// precondition (see `CampaignError::InvalidBaseline`).
pub fn baseline_valid(baseline: &TestMetrics) -> bool {
    baseline.target_bytes > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(target: u64, competing: u64, leaked: usize) -> TestMetrics {
        TestMetrics {
            target_bytes: target,
            competing_bytes: competing,
            leaked_sockets: leaked,
            ..TestMetrics::empty()
        }
    }

    #[test]
    fn no_change_is_clean() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &base.clone(), DEFAULT_THRESHOLD);
        assert!(!v.flagged());
    }

    #[test]
    fn small_changes_stay_below_threshold() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(7_000_000, 12_000_000, 0), DEFAULT_THRESHOLD);
        assert!(
            !v.flagged(),
            "30% dip is within the factor-of-two fairness band"
        );
    }

    #[test]
    fn degradation_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(2_000_000, 14_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.throughput_degradation);
        assert!(!v.establishment_prevented);
        assert!(v.flagged());
    }

    #[test]
    fn gain_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(16_000_000, 4_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.throughput_gain);
        assert!(v.competing_degradation);
    }

    #[test]
    fn zero_data_is_establishment_prevention() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(0, 10_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.establishment_prevented);
        assert!(!v.throughput_degradation, "zero data is its own category");
    }

    #[test]
    fn zero_byte_baseline_is_invalid_not_a_gain() {
        let broken = metrics(0, 0, 0);
        assert!(!baseline_valid(&broken));
        assert!(baseline_valid(&metrics(1, 0, 0)));
        // Even when probed directly, a broken baseline produces no bogus
        // throughput flags (previously every run flagged `gain` against a
        // baseline clamped to one byte).
        let v = detect(
            &broken,
            &metrics(10_000_000, 10_000_000, 0),
            DEFAULT_THRESHOLD,
        );
        assert!(!v.throughput_gain);
        assert!(!v.flagged());
    }

    #[test]
    fn socket_leak_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(9_500_000, 10_000_000, 1), DEFAULT_THRESHOLD);
        assert!(v.socket_leak);
        assert!(v.flagged());
        assert_eq!(v.labels(), vec!["socket-leak"]);
    }
}
