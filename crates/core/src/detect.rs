use serde::{Deserialize, Serialize};

use crate::scenario::TestMetrics;

/// The paper's detection threshold: "an increase or decrease in achieved
/// throughput of at least 50% compared to the non-attack case" (§VI),
/// grounded in the factor-of-two fairness notion of TFRC.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// What an attempted strategy did to the connection, relative to the
/// baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Verdict {
    /// The target connection transferred no data at all — a
    /// connection-establishment attack.
    pub establishment_prevented: bool,
    /// Target throughput fell below `(1 - threshold) ×` baseline.
    pub throughput_degradation: bool,
    /// Target throughput rose above `(1 + threshold) ×` baseline — a
    /// fairness attack (the gain comes out of the competing flow).
    pub throughput_gain: bool,
    /// The competing connection fell below `(1 - threshold) ×` its
    /// baseline.
    pub competing_degradation: bool,
    /// Server sockets were not released after the test — a resource
    /// exhaustion candidate.
    pub socket_leak: bool,
}

impl Verdict {
    /// Whether the strategy is flagged as a candidate attack.
    pub fn flagged(&self) -> bool {
        self.establishment_prevented
            || self.throughput_degradation
            || self.throughput_gain
            || self.competing_degradation
            || self.socket_leak
    }

    /// Short labels for reports.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.establishment_prevented {
            v.push("no-connection");
        }
        if self.throughput_degradation {
            v.push("degradation");
        }
        if self.throughput_gain {
            v.push("gain");
        }
        if self.competing_degradation {
            v.push("competing-degradation");
        }
        if self.socket_leak {
            v.push("socket-leak");
        }
        v
    }
}

/// Compares a strategy run against the baseline run (paper §V-A: "the
/// controller ... compares the received metrics observed after the tested
/// attack with the metrics observed in a non-attack test run").
pub fn detect(baseline: &TestMetrics, attacked: &TestMetrics, threshold: f64) -> Verdict {
    let lo = 1.0 - threshold;
    let hi = 1.0 + threshold;
    let base_t = baseline.target_bytes.max(1) as f64;
    let base_c = baseline.competing_bytes.max(1) as f64;
    let t = attacked.target_bytes as f64;
    let c = attacked.competing_bytes as f64;

    Verdict {
        establishment_prevented: attacked.target_bytes == 0 && baseline.target_bytes > 0,
        throughput_degradation: attacked.target_bytes > 0 && t < base_t * lo,
        throughput_gain: t > base_t * hi,
        competing_degradation: c < base_c * lo,
        socket_leak: attacked.leaked_sockets > baseline.leaked_sockets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_proxy::ProxyReport;

    fn metrics(target: u64, competing: u64, leaked: usize) -> TestMetrics {
        TestMetrics {
            target_bytes: target,
            competing_bytes: competing,
            leaked_sockets: leaked,
            leaked_close_wait: 0,
            leaked_with_queue: 0,
            proxy: ProxyReport::default(),
        }
    }

    #[test]
    fn no_change_is_clean() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &base.clone(), DEFAULT_THRESHOLD);
        assert!(!v.flagged());
    }

    #[test]
    fn small_changes_stay_below_threshold() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(7_000_000, 12_000_000, 0), DEFAULT_THRESHOLD);
        assert!(!v.flagged(), "30% dip is within the factor-of-two fairness band");
    }

    #[test]
    fn degradation_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(2_000_000, 14_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.throughput_degradation);
        assert!(!v.establishment_prevented);
        assert!(v.flagged());
    }

    #[test]
    fn gain_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(16_000_000, 4_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.throughput_gain);
        assert!(v.competing_degradation);
    }

    #[test]
    fn zero_data_is_establishment_prevention() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(0, 10_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.establishment_prevented);
        assert!(!v.throughput_degradation, "zero data is its own category");
    }

    #[test]
    fn socket_leak_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(9_500_000, 10_000_000, 1), DEFAULT_THRESHOLD);
        assert!(v.socket_leak);
        assert!(v.flagged());
        assert_eq!(v.labels(), vec!["socket-leak"]);
    }
}
