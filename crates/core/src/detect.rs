use crate::scenario::TestMetrics;

/// The paper's detection threshold: "an increase or decrease in achieved
/// throughput of at least 50% compared to the non-attack case" (§VI),
/// grounded in the factor-of-two fairness notion of TFRC.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// How close (relative to the boundary) an attacked measurement must sit
/// to an envelope edge to count as *borderline* — the campaign escalates
/// such verdicts to a different-seed re-test regardless of which side of
/// the edge they landed on.
pub const BORDERLINE_MARGIN: f64 = 0.1;

/// Consistency factor making the median absolute deviation comparable to a
/// standard deviation for normally distributed noise.
const MAD_SCALE: f64 = 1.4826;

/// Absolute slack on the table-exhaustion edges: leak totals and occupancy
/// readings must clear the baseline's worst observation by more than this
/// many sockets before flagging, so connection-churn jitter of a handful of
/// TIME_WAIT slots never looks like exhaustion.
pub const TABLE_LEAK_MARGIN: usize = 8;

/// The occupancy edge for table exhaustion: strictly above twice the worst
/// baseline occupancy plus the absolute margin. Doubling mirrors the
/// paper's factor-of-two throughput notion; the margin handles near-zero
/// baselines where a ratio alone is meaningless.
fn exhaustion_edge(observed_max: usize) -> usize {
    2 * observed_max + TABLE_LEAK_MARGIN
}

/// What an attempted strategy did to the connection, relative to the
/// baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// The target connection transferred no data at all — a
    /// connection-establishment attack.
    pub establishment_prevented: bool,
    /// Target throughput fell below `(1 - threshold) ×` baseline.
    pub throughput_degradation: bool,
    /// Target throughput rose above `(1 + threshold) ×` baseline — a
    /// fairness attack (the gain comes out of the competing flow).
    pub throughput_gain: bool,
    /// The competing connection fell below `(1 - threshold) ×` its
    /// baseline.
    pub competing_degradation: bool,
    /// Server sockets were not released after the test — a resource
    /// exhaustion candidate.
    pub socket_leak: bool,
    /// Jain's fairness index over the per-flow delivery vector collapsed
    /// below the baseline band — bandwidth is being redistributed across
    /// flows even if aggregate throughput looks healthy. Multi-flow
    /// scenarios only (more than two flows).
    pub fairness_collapse: bool,
    /// More flows were starved of the shared bottleneck (delivered under
    /// 10 % of their fair share) than in any baseline run. Multi-flow
    /// scenarios only.
    pub flow_starvation: bool,
    /// Server socket tables held far more connections than any baseline
    /// run — accept-queue/socket-table exhaustion, the state-holding attack
    /// class. Multi-flow scenarios only.
    pub table_exhaustion: bool,
}

impl Verdict {
    /// Whether the strategy is flagged as a candidate attack.
    pub fn flagged(&self) -> bool {
        self.establishment_prevented
            || self.throughput_degradation
            || self.throughput_gain
            || self.competing_degradation
            || self.socket_leak
            || self.fairness_collapse
            || self.flow_starvation
            || self.table_exhaustion
    }

    /// Short labels for reports.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.establishment_prevented {
            v.push("no-connection");
        }
        if self.throughput_degradation {
            v.push("degradation");
        }
        if self.throughput_gain {
            v.push("gain");
        }
        if self.competing_degradation {
            v.push("competing-degradation");
        }
        if self.socket_leak {
            v.push("socket-leak");
        }
        if self.fairness_collapse {
            v.push("fairness-collapse");
        }
        if self.flow_starvation {
            v.push("flow-starvation");
        }
        if self.table_exhaustion {
            v.push("table-exhaustion");
        }
        v
    }
}

/// Compares a strategy run against the baseline run (paper §V-A: "the
/// controller ... compares the received metrics observed after the tested
/// attack with the metrics observed in a non-attack test run").
///
/// A baseline that moved zero bytes cannot anchor any throughput
/// comparison — every attack run would spuriously flag `throughput_gain`
/// against it. [`baseline_valid`] rejects such baselines, and
/// `Campaign::run` surfaces that as an explicit error before testing a
/// single strategy; here the throughput comparisons simply disengage so a
/// caller probing `detect` directly gets no bogus flags either.
pub fn detect(baseline: &TestMetrics, attacked: &TestMetrics, threshold: f64) -> Verdict {
    let lo = 1.0 - threshold;
    let hi = 1.0 + threshold;
    let base_t = baseline.target_bytes as f64;
    let base_c = baseline.competing_bytes as f64;
    let t = attacked.target_bytes as f64;
    let c = attacked.competing_bytes as f64;
    // The cross-flow metrics engage only when both runs actually carried a
    // multi-flow workload; classic two-flow scenarios keep their legacy
    // verdicts bit for bit (fairness over two flows is already covered by
    // the throughput/competing comparisons).
    let multi = baseline.flow_bytes.len() > 2 && attacked.flow_bytes.len() > 2;
    let base_jain = baseline.jain_index();
    let jain_lo = (lo * base_jain).min(base_jain);

    Verdict {
        establishment_prevented: attacked.target_bytes == 0 && baseline.target_bytes > 0,
        throughput_degradation: baseline.target_bytes > 0
            && attacked.target_bytes > 0
            && t < base_t * lo,
        throughput_gain: baseline.target_bytes > 0 && t > base_t * hi,
        competing_degradation: baseline.competing_bytes > 0 && c < base_c * lo,
        socket_leak: attacked.leaked_sockets > baseline.leaked_sockets,
        fairness_collapse: multi && base_jain > 0.0 && attacked.jain_index() < jain_lo,
        flow_starvation: multi && attacked.starved_flows() > baseline.starved_flows(),
        table_exhaustion: multi
            && (attacked.leaked_total > baseline.leaked_total + TABLE_LEAK_MARGIN
                || attacked.server_sockets > exhaustion_edge(baseline.server_sockets)),
    }
}

/// Whether a baseline run can anchor detection: it must have moved data on
/// the target connection. Campaigns treat a failing baseline as an invalid
/// precondition (see `CampaignError::InvalidBaseline`).
pub fn baseline_valid(baseline: &TestMetrics) -> bool {
    baseline.target_bytes > 0
}

/// A noise-tolerant detection band, built from an *ensemble* of
/// seed-jittered no-attack runs under the active network conditions.
///
/// A single deterministic baseline is one unlucky queue drop away from a
/// false "degradation" flag the moment link impairments add stochastic
/// loss or jitter. The envelope widens the paper's `threshold` band by the
/// spread the ensemble actually exhibited: the throughput edges are the
/// threshold band around the ensemble *median*, pushed out by three
/// scaled-MAD units of observed noise, and — by construction — always wide
/// enough to contain every member, so a no-attack run that was itself a
/// member can never flag.
///
/// With a single member the MAD is zero and the min/max expansion is the
/// member itself, so [`detect_enveloped`] degenerates to exactly
/// [`detect`] against that baseline — campaigns with `baseline_reps == 1`
/// keep the legacy behaviour bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// How many ensemble members the envelope was built from.
    pub members: usize,
    /// Median target-connection bytes across the members.
    pub target_median: f64,
    /// Degradation edge: flag only below this many target bytes.
    pub target_lo: f64,
    /// Gain edge: flag only above this many target bytes.
    pub target_hi: f64,
    /// Median competing-connection bytes across the members.
    pub competing_median: f64,
    /// Competing-degradation edge.
    pub competing_lo: f64,
    /// Largest leaked-socket count any member showed; leaks flag only
    /// strictly above it.
    pub leaked_max: usize,
    /// Smallest member target-byte count. Zero disables
    /// establishment-prevention detection (some member failed to connect
    /// on its own, so a zero-byte attacked run proves nothing).
    pub target_min: u64,
    /// Whether every member carried a multi-flow workload (more than two
    /// flows); the cross-flow detectors disengage otherwise.
    pub cross_flow: bool,
    /// Median Jain's index across the members.
    pub jain_median: f64,
    /// Fairness-collapse edge: flag only strictly below this index.
    pub jain_lo: f64,
    /// Largest starved-flow count any member showed.
    pub starved_max: usize,
    /// Largest socket-table occupancy any member showed.
    pub sockets_max: usize,
    /// Largest all-server leak total any member showed.
    pub leaked_total_max: usize,
}

/// Median and median-absolute-deviation of a sample (empty ⇒ zeros).
fn median_mad(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let med = median_of(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    (med, median_of(&deviations))
}

fn median_of(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

impl Envelope {
    /// Builds the envelope from the ensemble members (at least one) and
    /// the detection threshold.
    pub fn from_members(members: &[TestMetrics], threshold: f64) -> Envelope {
        assert!(!members.is_empty(), "an envelope needs at least one member");
        let targets: Vec<f64> = members.iter().map(|m| m.target_bytes as f64).collect();
        let competing: Vec<f64> = members.iter().map(|m| m.competing_bytes as f64).collect();
        let (t_med, t_mad) = median_mad(&targets);
        let (c_med, c_mad) = median_mad(&competing);
        let t_noise = 3.0 * MAD_SCALE * t_mad;
        let c_noise = 3.0 * MAD_SCALE * c_mad;
        let t_min = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let t_max = targets.iter().cloned().fold(0.0f64, f64::max);
        let c_min = competing.iter().cloned().fold(f64::INFINITY, f64::min);
        let jains: Vec<f64> = members.iter().map(|m| m.jain_index()).collect();
        let (j_med, j_mad) = median_mad(&jains);
        let j_noise = 3.0 * MAD_SCALE * j_mad;
        let j_min = jains.iter().cloned().fold(f64::INFINITY, f64::min);
        Envelope {
            members: members.len(),
            target_median: t_med,
            target_lo: ((1.0 - threshold) * t_med - t_noise).min(t_min),
            target_hi: ((1.0 + threshold) * t_med + t_noise).max(t_max),
            competing_median: c_med,
            competing_lo: ((1.0 - threshold) * c_med - c_noise).min(c_min),
            leaked_max: members.iter().map(|m| m.leaked_sockets).max().unwrap_or(0),
            target_min: members.iter().map(|m| m.target_bytes).min().unwrap_or(0),
            cross_flow: members.iter().all(|m| m.flow_bytes.len() > 2),
            jain_median: j_med,
            // Like target_lo: the threshold band around the median, pushed
            // out by observed noise, never excluding a member.
            jain_lo: ((1.0 - threshold) * j_med - j_noise).min(j_min),
            starved_max: members.iter().map(|m| m.starved_flows()).max().unwrap_or(0),
            sockets_max: members.iter().map(|m| m.server_sockets).max().unwrap_or(0),
            leaked_total_max: members.iter().map(|m| m.leaked_total).max().unwrap_or(0),
        }
    }

    /// The single-baseline envelope [`detect`] implicitly uses.
    pub fn from_baseline(baseline: &TestMetrics, threshold: f64) -> Envelope {
        Envelope::from_members(std::slice::from_ref(baseline), threshold)
    }

    /// Whether `attacked` lands within [`BORDERLINE_MARGIN`] of a
    /// throughput edge (either side) or exactly on the leak edge — close
    /// enough that the campaign escalates the verdict to a re-test instead
    /// of trusting one draw of the noise.
    pub fn is_borderline(&self, attacked: &TestMetrics) -> bool {
        let near =
            |value: f64, edge: f64| edge > 0.0 && (value - edge).abs() <= BORDERLINE_MARGIN * edge;
        let t = attacked.target_bytes as f64;
        let c = attacked.competing_bytes as f64;
        (self.target_median > 0.0 && (near(t, self.target_lo) || near(t, self.target_hi)))
            || (self.competing_median > 0.0 && near(c, self.competing_lo))
            || (self.leaked_max > 0 && attacked.leaked_sockets == self.leaked_max)
    }

    /// Width of the target-throughput band, as a fraction of the median
    /// (for the run manifest's robustness section).
    pub fn target_width_fraction(&self) -> f64 {
        if self.target_median > 0.0 {
            (self.target_hi - self.target_lo) / self.target_median
        } else {
            0.0
        }
    }
}

/// [`detect`] generalized to an ensemble envelope: flags only outside the
/// noise-widened band. A member of the ensemble can never flag against its
/// own envelope (the edges were expanded to contain every member), which
/// is what guarantees zero false positives for no-attack runs under the
/// impairment preset the ensemble was measured under.
pub fn detect_enveloped(envelope: &Envelope, attacked: &TestMetrics) -> Verdict {
    let t = attacked.target_bytes as f64;
    let c = attacked.competing_bytes as f64;
    let multi = envelope.cross_flow && attacked.flow_bytes.len() > 2;
    Verdict {
        establishment_prevented: attacked.target_bytes == 0 && envelope.target_min > 0,
        throughput_degradation: envelope.target_median > 0.0
            && attacked.target_bytes > 0
            && t < envelope.target_lo,
        throughput_gain: envelope.target_median > 0.0 && t > envelope.target_hi,
        competing_degradation: envelope.competing_median > 0.0 && c < envelope.competing_lo,
        socket_leak: attacked.leaked_sockets > envelope.leaked_max,
        fairness_collapse: multi
            && envelope.jain_median > 0.0
            && attacked.jain_index() < envelope.jain_lo,
        flow_starvation: multi && attacked.starved_flows() > envelope.starved_max,
        table_exhaustion: multi
            && (attacked.leaked_total > envelope.leaked_total_max + TABLE_LEAK_MARGIN
                || attacked.server_sockets > exhaustion_edge(envelope.sockets_max)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(target: u64, competing: u64, leaked: usize) -> TestMetrics {
        TestMetrics {
            target_bytes: target,
            competing_bytes: competing,
            leaked_sockets: leaked,
            ..TestMetrics::empty()
        }
    }

    #[test]
    fn no_change_is_clean() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &base.clone(), DEFAULT_THRESHOLD);
        assert!(!v.flagged());
    }

    #[test]
    fn small_changes_stay_below_threshold() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(7_000_000, 12_000_000, 0), DEFAULT_THRESHOLD);
        assert!(
            !v.flagged(),
            "30% dip is within the factor-of-two fairness band"
        );
    }

    #[test]
    fn degradation_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(2_000_000, 14_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.throughput_degradation);
        assert!(!v.establishment_prevented);
        assert!(v.flagged());
    }

    #[test]
    fn gain_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(16_000_000, 4_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.throughput_gain);
        assert!(v.competing_degradation);
    }

    #[test]
    fn zero_data_is_establishment_prevention() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(0, 10_000_000, 0), DEFAULT_THRESHOLD);
        assert!(v.establishment_prevented);
        assert!(!v.throughput_degradation, "zero data is its own category");
    }

    #[test]
    fn zero_byte_baseline_is_invalid_not_a_gain() {
        let broken = metrics(0, 0, 0);
        assert!(!baseline_valid(&broken));
        assert!(baseline_valid(&metrics(1, 0, 0)));
        // Even when probed directly, a broken baseline produces no bogus
        // throughput flags (previously every run flagged `gain` against a
        // baseline clamped to one byte).
        let v = detect(
            &broken,
            &metrics(10_000_000, 10_000_000, 0),
            DEFAULT_THRESHOLD,
        );
        assert!(!v.throughput_gain);
        assert!(!v.flagged());
    }

    #[test]
    fn socket_leak_detected() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let v = detect(&base, &metrics(9_500_000, 10_000_000, 1), DEFAULT_THRESHOLD);
        assert!(v.socket_leak);
        assert!(v.flagged());
        assert_eq!(v.labels(), vec!["socket-leak"]);
    }

    #[test]
    fn single_member_envelope_degenerates_to_detect() {
        let base = metrics(10_000_000, 9_000_000, 0);
        let env = Envelope::from_baseline(&base, DEFAULT_THRESHOLD);
        for attacked in [
            metrics(10_000_000, 9_000_000, 0),
            metrics(2_000_000, 14_000_000, 0),
            metrics(16_000_000, 4_000_000, 0),
            metrics(0, 9_000_000, 0),
            metrics(9_500_000, 9_000_000, 1),
            metrics(4_999_999, 9_000_000, 0),
            metrics(5_000_000, 9_000_000, 0),
        ] {
            assert_eq!(
                detect_enveloped(&env, &attacked),
                detect(&base, &attacked, DEFAULT_THRESHOLD),
                "K=1 must reproduce the legacy verdict for {attacked:?}"
            );
        }
    }

    #[test]
    fn ensemble_members_never_flag_against_their_own_envelope() {
        // A wild ensemble — the min/max expansion must cover even members
        // far outside the threshold band around the median.
        let members = [
            metrics(10_000_000, 9_000_000, 0),
            metrics(4_000_000, 12_000_000, 1),
            metrics(17_000_000, 2_000_000, 0),
        ];
        let env = Envelope::from_members(&members, DEFAULT_THRESHOLD);
        for m in &members {
            assert!(
                !detect_enveloped(&env, m).flagged(),
                "member {m:?} flagged against its own envelope"
            );
        }
    }

    #[test]
    fn envelope_widens_with_observed_noise() {
        let tight = [
            metrics(10_000_000, 10_000_000, 0),
            metrics(10_000_100, 10_000_000, 0),
            metrics(9_999_900, 10_000_000, 0),
        ];
        let noisy = [
            metrics(10_000_000, 10_000_000, 0),
            metrics(11_000_000, 10_000_000, 0),
            metrics(9_000_000, 10_000_000, 0),
        ];
        let tight_env = Envelope::from_members(&tight, DEFAULT_THRESHOLD);
        let noisy_env = Envelope::from_members(&noisy, DEFAULT_THRESHOLD);
        assert!(noisy_env.target_lo < tight_env.target_lo);
        assert!(noisy_env.target_hi > tight_env.target_hi);
        assert!(noisy_env.target_width_fraction() > tight_env.target_width_fraction());
        // A dip that would flag against the tight envelope survives the
        // noisy one: the verdict adapts to the conditions measured.
        let dip = metrics(4_300_000, 10_000_000, 0);
        assert!(detect_enveloped(&tight_env, &dip).throughput_degradation);
        assert!(!detect_enveloped(&noisy_env, &dip).throughput_degradation);
    }

    #[test]
    fn borderline_detection_brackets_the_edges() {
        let base = metrics(10_000_000, 10_000_000, 0);
        let env = Envelope::from_baseline(&base, DEFAULT_THRESHOLD);
        // lo edge is 5e6: within 10 % either side is borderline.
        assert!(env.is_borderline(&metrics(4_600_000, 10_000_000, 0)));
        assert!(env.is_borderline(&metrics(5_400_000, 10_000_000, 0)));
        assert!(!env.is_borderline(&metrics(8_000_000, 10_000_000, 0)));
        // hi edge is 15e6.
        assert!(env.is_borderline(&metrics(14_000_000, 10_000_000, 0)));
        assert!(!env.is_borderline(&metrics(20_000_000, 10_000_000, 0)));
    }

    /// A multi-flow measurement: per-flow bytes plus table readings.
    fn multiflow(flows: Vec<u64>, sockets: usize, leaked_total: usize) -> TestMetrics {
        TestMetrics {
            target_bytes: flows.first().copied().unwrap_or(0),
            competing_bytes: flows.iter().skip(1).sum(),
            server_sockets: sockets,
            leaked_total,
            flow_bytes: flows,
            ..TestMetrics::empty()
        }
    }

    #[test]
    fn jain_index_and_starved_flows_behave() {
        let fair = multiflow(vec![1_000_000; 8], 0, 0);
        assert!((fair.jain_index() - 1.0).abs() < 1e-12);
        assert_eq!(fair.starved_flows(), 0);
        let skewed = multiflow(vec![8_000_000, 0, 0, 0, 0, 0, 0, 0], 0, 0);
        assert!((skewed.jain_index() - 0.125).abs() < 1e-12);
        assert_eq!(skewed.starved_flows(), 7);
        // Degenerate vectors are trivially fair and starve no one.
        assert_eq!(TestMetrics::empty().jain_index(), 1.0);
        assert_eq!(multiflow(vec![0, 0, 0], 0, 0).starved_flows(), 0);
    }

    #[test]
    fn fairness_collapse_detected() {
        let base = multiflow(vec![1_000_000; 8], 0, 0);
        // Aggregate bytes unchanged, but one background flow monopolizes.
        let attacked = multiflow(vec![1_000_000, 7_000_000, 0, 0, 0, 0, 0, 0], 0, 0);
        let v = detect(&base, &attacked, DEFAULT_THRESHOLD);
        assert!(v.fairness_collapse, "{v:?}");
        assert!(v.flow_starvation, "monopolized flows are also starved");
        assert!(!v.throughput_degradation, "target kept its bytes");
        assert!(v.labels().contains(&"fairness-collapse"));
    }

    #[test]
    fn flow_starvation_detected_without_fairness_collapse() {
        let base = multiflow(vec![1_000_000; 8], 0, 0);
        // One flow starved; the rest stay fair, so Jain's barely moves.
        let mut flows = vec![1_000_000; 8];
        flows[7] = 50_000;
        let attacked = multiflow(flows, 0, 0);
        let v = detect(&base, &attacked, DEFAULT_THRESHOLD);
        assert!(v.flow_starvation, "{v:?}");
        assert!(!v.fairness_collapse, "{v:?}");
    }

    #[test]
    fn table_exhaustion_detected_on_both_edges() {
        let base = multiflow(vec![1_000_000; 8], 4, 0);
        // Leak edge: strictly more than baseline + margin.
        let leaky = multiflow(vec![1_000_000; 8], 4, TABLE_LEAK_MARGIN + 1);
        assert!(detect(&base, &leaky, DEFAULT_THRESHOLD).table_exhaustion);
        let within = multiflow(vec![1_000_000; 8], 4, TABLE_LEAK_MARGIN);
        assert!(!detect(&base, &within, DEFAULT_THRESHOLD).table_exhaustion);
        // Occupancy edge: strictly above 2×baseline + margin.
        let crowded = multiflow(vec![1_000_000; 8], 2 * 4 + TABLE_LEAK_MARGIN + 1, 0);
        let v = detect(&base, &crowded, DEFAULT_THRESHOLD);
        assert!(v.table_exhaustion);
        assert_eq!(v.labels(), vec!["table-exhaustion"]);
        let tolerable = multiflow(vec![1_000_000; 8], 2 * 4 + TABLE_LEAK_MARGIN, 0);
        assert!(!detect(&base, &tolerable, DEFAULT_THRESHOLD).table_exhaustion);
    }

    #[test]
    fn cross_flow_metrics_disengage_on_classic_two_flow_runs() {
        // Two-flow metrics (the classic dumbbell) never trip the new flags,
        // however extreme the readings: legacy verdicts stay bit-identical.
        let base = multiflow(vec![10_000_000, 10_000_000], 0, 0);
        let attacked = multiflow(vec![10_000_000, 0], 500, 500);
        let v = detect(&base, &attacked, DEFAULT_THRESHOLD);
        assert!(!v.fairness_collapse);
        assert!(!v.flow_starvation);
        assert!(!v.table_exhaustion);
        let env = Envelope::from_baseline(&base, DEFAULT_THRESHOLD);
        let ve = detect_enveloped(&env, &attacked);
        assert!(!ve.fairness_collapse && !ve.flow_starvation && !ve.table_exhaustion);
    }

    #[test]
    fn single_member_envelope_degenerates_to_detect_for_multiflow() {
        let base = multiflow(vec![1_000_000; 8], 4, 1);
        let env = Envelope::from_baseline(&base, DEFAULT_THRESHOLD);
        for attacked in [
            multiflow(vec![1_000_000; 8], 4, 1),
            multiflow(vec![1_000_000, 7_000_000, 0, 0, 0, 0, 0, 0], 4, 1),
            multiflow(vec![1_000_000; 8], 40, 1),
            multiflow(vec![1_000_000; 8], 4, 20),
            multiflow(vec![500_000; 8], 16, 9),
        ] {
            assert_eq!(
                detect_enveloped(&env, &attacked),
                detect(&base, &attacked, DEFAULT_THRESHOLD),
                "K=1 must reproduce the direct verdict for {attacked:?}"
            );
        }
    }

    #[test]
    fn multiflow_ensemble_members_never_flag_cross_flow() {
        let members = [
            multiflow(vec![1_000_000; 8], 4, 0),
            multiflow(
                vec![
                    900_000, 1_100_000, 80_000, 1_000_000, 950_000, 1_050_000, 1_000_000, 1_000_000,
                ],
                9,
                2,
            ),
            multiflow(
                vec![
                    1_200_000, 800_000, 1_000_000, 1_000_000, 0, 1_000_000, 1_000_000, 1_000_000,
                ],
                6,
                1,
            ),
        ];
        let env = Envelope::from_members(&members, DEFAULT_THRESHOLD);
        assert!(env.cross_flow);
        for m in &members {
            assert!(
                !detect_enveloped(&env, m).flagged(),
                "member {m:?} flagged against its own envelope"
            );
        }
    }

    #[test]
    fn envelope_disables_establishment_when_a_member_failed_to_connect() {
        let members = [
            metrics(10_000_000, 10_000_000, 0),
            metrics(0, 10_000_000, 0),
        ];
        let env = Envelope::from_members(&members, DEFAULT_THRESHOLD);
        assert_eq!(env.target_min, 0);
        let v = detect_enveloped(&env, &metrics(0, 10_000_000, 0));
        assert!(!v.establishment_prevented);
    }
}
