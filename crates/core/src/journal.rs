//! Streaming JSONL campaign journal.
//!
//! One line per completed [`StrategyOutcome`], appended and flushed as the
//! executors finish, preceded by a header line identifying the campaign. A
//! campaign process that is killed (or crashes) mid-run leaves behind every
//! outcome that completed; `Campaign::run` with `resume: true` reloads
//! them, re-runs only what is missing, and reproduces the same final table.
//!
//! The format is deliberately line-oriented: a writer dying mid-append can
//! corrupt at most the final line, which the loader skips (and counts)
//! instead of rejecting the whole journal.
//!
//! Two hardening measures protect resumes against torn and silently
//! corrupted data:
//!
//! * every line the writer emits carries a trailing FNV-1a checksum
//!   (`<json>\t<16 hex digits>`), verified on load — a line whose payload
//!   was damaged in place (bit rot, a partially overwritten sector, an
//!   editor mishap) is counted as malformed and skipped instead of being
//!   trusted, and the affected strategy simply re-runs;
//! * the header is first written to a temporary sibling file and then
//!   renamed into place, so a crash during journal creation can never
//!   leave a half-written header behind.
//!
//! Checksums are optional on read: journals written before this scheme
//! (bare JSON lines) still load.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use snake_json::{obj, FromJson, JsonError, ObjExt, ToJson, Value};
use snake_proxy::{ProxyReport, Strategy};

use crate::campaign::{OutcomeKind, StrategyOutcome};
use crate::detect::Verdict;
use crate::scenario::TestMetrics;

impl ToJson for Verdict {
    fn to_json(&self) -> Value {
        obj([
            (
                "establishment_prevented",
                Value::Bool(self.establishment_prevented),
            ),
            (
                "throughput_degradation",
                Value::Bool(self.throughput_degradation),
            ),
            ("throughput_gain", Value::Bool(self.throughput_gain)),
            (
                "competing_degradation",
                Value::Bool(self.competing_degradation),
            ),
            ("socket_leak", Value::Bool(self.socket_leak)),
            ("fairness_collapse", Value::Bool(self.fairness_collapse)),
            ("flow_starvation", Value::Bool(self.flow_starvation)),
            ("table_exhaustion", Value::Bool(self.table_exhaustion)),
        ])
    }
}

impl FromJson for Verdict {
    fn from_json(value: &Value) -> Result<Verdict, JsonError> {
        // The cross-flow flags postdate the journal format; journals
        // written before them decode with the flags clear, which is also
        // what their two-flow scenarios would have computed.
        let opt_bool = |key: &str| -> Result<bool, JsonError> {
            match value.get(key) {
                Some(_) => value.req_bool(key),
                None => Ok(false),
            }
        };
        Ok(Verdict {
            establishment_prevented: value.req_bool("establishment_prevented")?,
            throughput_degradation: value.req_bool("throughput_degradation")?,
            throughput_gain: value.req_bool("throughput_gain")?,
            competing_degradation: value.req_bool("competing_degradation")?,
            socket_leak: value.req_bool("socket_leak")?,
            fairness_collapse: opt_bool("fairness_collapse")?,
            flow_starvation: opt_bool("flow_starvation")?,
            table_exhaustion: opt_bool("table_exhaustion")?,
        })
    }
}

impl ToJson for TestMetrics {
    fn to_json(&self) -> Value {
        obj([
            ("target_bytes", Value::U64(self.target_bytes)),
            ("competing_bytes", Value::U64(self.competing_bytes)),
            ("leaked_sockets", Value::U64(self.leaked_sockets as u64)),
            (
                "leaked_close_wait",
                Value::U64(self.leaked_close_wait as u64),
            ),
            (
                "leaked_with_queue",
                Value::U64(self.leaked_with_queue as u64),
            ),
            ("truncated", Value::Bool(self.truncated)),
            ("sim_events", Value::U64(self.sim_events)),
            (
                "flow_bytes",
                Value::Arr(self.flow_bytes.iter().map(|&b| Value::U64(b)).collect()),
            ),
            ("server_sockets", Value::U64(self.server_sockets as u64)),
            ("leaked_total", Value::U64(self.leaked_total as u64)),
            ("proxy", self.proxy.to_json()),
        ])
    }
}

impl FromJson for TestMetrics {
    fn from_json(value: &Value) -> Result<TestMetrics, JsonError> {
        let count = |key: &str| -> Result<usize, JsonError> {
            usize::try_from(value.req_u64(key)?)
                .map_err(|_| JsonError::decode(format!("field `{key}` out of range")))
        };
        let target_bytes = value.req_u64("target_bytes")?;
        let competing_bytes = value.req_u64("competing_bytes")?;
        let leaked_sockets = count("leaked_sockets")?;
        // The cross-flow fields postdate the journal format. An old line
        // decodes to the values its classic two-flow run would have
        // measured: the two known per-flow byte counts, no occupancy
        // reading, and the attacked server's leaks as the total.
        let flow_bytes = match value.get("flow_bytes") {
            Some(v) => v
                .as_arr()
                .ok_or_else(|| JsonError::decode("field `flow_bytes` is not an array"))?
                .iter()
                .map(|b| {
                    b.as_u64()
                        .ok_or_else(|| JsonError::decode("flow_bytes entries must be u64"))
                })
                .collect::<Result<Vec<u64>, JsonError>>()?,
            None => vec![target_bytes, competing_bytes],
        };
        let server_sockets = if value.get("server_sockets").is_some() {
            count("server_sockets")?
        } else {
            0
        };
        let leaked_total = if value.get("leaked_total").is_some() {
            count("leaked_total")?
        } else {
            leaked_sockets
        };
        Ok(TestMetrics {
            target_bytes,
            competing_bytes,
            leaked_sockets,
            leaked_close_wait: count("leaked_close_wait")?,
            leaked_with_queue: count("leaked_with_queue")?,
            truncated: value.req_bool("truncated")?,
            // Journals written before event accounting lack the field;
            // default to zero rather than rejecting the whole journal.
            sim_events: if value.get("sim_events").is_some() {
                value.req_u64("sim_events")?
            } else {
                0
            },
            flow_bytes,
            server_sockets,
            leaked_total,
            proxy: std::sync::Arc::new(ProxyReport::from_json(value.req("proxy")?)?),
        })
    }
}

impl ToJson for OutcomeKind {
    fn to_json(&self) -> Value {
        Value::Str(self.label().to_owned())
    }
}

impl FromJson for OutcomeKind {
    fn from_json(value: &Value) -> Result<OutcomeKind, JsonError> {
        match value.as_str() {
            Some("ok") => Ok(OutcomeKind::Ok),
            Some("errored") => Ok(OutcomeKind::Errored),
            Some("truncated") => Ok(OutcomeKind::Truncated),
            Some("stalled") => Ok(OutcomeKind::Stalled),
            _ => Err(JsonError::decode(
                "outcome kind must be ok/errored/truncated/stalled",
            )),
        }
    }
}

impl ToJson for StrategyOutcome {
    fn to_json(&self) -> Value {
        obj([
            ("type", Value::Str("outcome".into())),
            ("outcome", self.outcome_kind.to_json()),
            (
                "error",
                match &self.error {
                    Some(e) => Value::Str(e.clone()),
                    None => Value::Null,
                },
            ),
            ("strategy", self.strategy.to_json()),
            ("verdict", self.verdict.to_json()),
            ("metrics", self.metrics.to_json()),
            ("repeatable", Value::Bool(self.repeatable)),
            ("on_path", Value::Bool(self.on_path)),
            ("false_positive", Value::Bool(self.false_positive)),
            (
                "memo",
                match &self.memo {
                    Some(m) => Value::Str(m.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl FromJson for StrategyOutcome {
    fn from_json(value: &Value) -> Result<StrategyOutcome, JsonError> {
        let error = match value.req("error")? {
            Value::Null => None,
            Value::Str(s) => Some(s.clone()),
            _ => return Err(JsonError::decode("field `error` must be a string or null")),
        };
        Ok(StrategyOutcome {
            strategy: Strategy::from_json(value.req("strategy")?)?,
            verdict: Verdict::from_json(value.req("verdict")?)?,
            metrics: TestMetrics::from_json(value.req("metrics")?)?,
            repeatable: value.req_bool("repeatable")?,
            on_path: value.req_bool("on_path")?,
            false_positive: value.req_bool("false_positive")?,
            outcome_kind: OutcomeKind::from_json(value.req("outcome")?)?,
            error,
            // Journals written before memoization lack the field; those
            // outcomes all ran for real.
            memo: match value.get("memo") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err(JsonError::decode("field `memo` must be a string or null")),
            },
        })
    }
}

/// The journal's first line: which campaign the outcomes belong to. Resume
/// refuses a journal whose header does not match the current config (see
/// [`JournalHeader::mismatch_against`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Implementation under test.
    pub implementation: String,
    /// Scenario seed.
    pub seed: u64,
    /// Detection threshold.
    pub threshold: f64,
    /// Whether campaign-level memoization was live when the journal was
    /// written. Memoized and unmemoized campaigns produce the same
    /// verdicts but different provenance markers, so mixing them in one
    /// journal would corrupt the memo accounting on resume. `None` in
    /// journals written before this field existed (accepted as matching).
    pub memoize: Option<bool>,
    /// Bottleneck impairment spec (its round-trippable `Display` form,
    /// `"none"` when unimpaired). An impaired and an unimpaired campaign
    /// share implementation, seed and threshold yet produce incomparable
    /// outcomes; recording the spec closes that resume hole. `None` in
    /// journals written before this field existed (accepted as matching).
    pub impairment: Option<String>,
}

impl JournalHeader {
    /// Compares a header loaded from disk (`self`) against the header the
    /// current campaign would write, returning a human-readable list of
    /// the fields that differ — or `None` when resuming is safe. The
    /// optional fields (`memoize`, `impairment`) only mismatch when the
    /// loaded journal actually recorded them: a legacy journal predating
    /// those fields is accepted, exactly as before they existed.
    pub fn mismatch_against(&self, current: &JournalHeader) -> Option<String> {
        let mut diffs: Vec<String> = Vec::new();
        if self.implementation != current.implementation {
            diffs.push(format!(
                "implementation: journal has `{}`, campaign has `{}`",
                self.implementation, current.implementation
            ));
        }
        if self.seed != current.seed {
            diffs.push(format!(
                "seed: journal has {}, campaign has {}",
                self.seed, current.seed
            ));
        }
        if self.threshold != current.threshold {
            diffs.push(format!(
                "threshold: journal has {}, campaign has {}",
                self.threshold, current.threshold
            ));
        }
        if let (Some(a), Some(b)) = (self.memoize, current.memoize) {
            if a != b {
                diffs.push(format!(
                    "memoization: journal was written with memoize={a}, campaign has memoize={b}"
                ));
            }
        }
        if let (Some(a), Some(b)) = (&self.impairment, &current.impairment) {
            if a != b {
                diffs.push(format!("impairment: journal has `{a}`, campaign has `{b}`"));
            }
        }
        if diffs.is_empty() {
            None
        } else {
            Some(diffs.join("; "))
        }
    }
}

impl ToJson for JournalHeader {
    fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("type", Value::Str("campaign".into())),
            ("implementation", Value::Str(self.implementation.clone())),
            ("seed", Value::U64(self.seed)),
            ("threshold", Value::F64(self.threshold)),
        ];
        if let Some(memoize) = self.memoize {
            pairs.push(("memoize", Value::Bool(memoize)));
        }
        if let Some(impairment) = &self.impairment {
            pairs.push(("impairment", Value::Str(impairment.clone())));
        }
        obj(pairs)
    }
}

impl FromJson for JournalHeader {
    fn from_json(value: &Value) -> Result<JournalHeader, JsonError> {
        Ok(JournalHeader {
            implementation: value.req_str("implementation")?.to_owned(),
            seed: value.req_u64("seed")?,
            threshold: value.req_f64("threshold")?,
            // Absent in journals written before config-drift detection;
            // those headers match any setting, as they always did.
            memoize: match value.get("memoize") {
                None | Some(Value::Null) => None,
                Some(Value::Bool(b)) => Some(*b),
                Some(_) => return Err(JsonError::decode("field `memoize` must be a bool or null")),
            },
            impairment: match value.get("impairment") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => {
                    return Err(JsonError::decode(
                        "field `impairment` must be a string or null",
                    ))
                }
            },
        })
    }
}

/// Encodes worker counter deltas as a JSON object (`name -> count`), the
/// shape they travel in on the shard wire, in journal outcome lines, and
/// in journal segments.
pub(crate) fn counters_json(counters: &[(String, u64)]) -> Value {
    Value::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    )
}

/// Decodes a counters object back into pairs. Tolerant by design: a
/// missing or malformed field is an empty delta (journals written before
/// counters existed have no field at all), and non-numeric entries are
/// dropped rather than poisoning the line.
pub(crate) fn decode_counters(value: Option<&Value>) -> Vec<(String, u64)> {
    match value {
        Some(Value::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    }
}

/// FNV-1a 64-bit hash of a line's JSON payload — the per-line checksum.
/// Small, dependency-free, and plenty for detecting torn or bit-rotted
/// lines (this guards against accidents, not adversaries). Shared with the
/// persistent memo store, which uses the same framing.
pub(crate) fn line_checksum(payload: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in payload.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Renders one journal line: compact JSON, a tab, and the checksum as 16
/// lowercase hex digits. The tab can never appear inside the payload (the
/// JSON writer escapes control characters), so the loader can split
/// unambiguously from the right.
pub(crate) fn checksummed_line(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "journal lines must be single-line");
    debug_assert!(
        !payload.contains('\t'),
        "payload tabs would break the checksum split"
    );
    format!("{payload}\t{:016x}\n", line_checksum(payload))
}

/// Splits a loaded line into its JSON payload, verifying the checksum
/// when one is present. Returns `None` for a checksum mismatch (the line
/// is damaged); bare lines without a checksum pass through untouched for
/// backward compatibility.
pub(crate) fn verify_line(line: &str) -> Option<&str> {
    match line.rsplit_once('\t') {
        Some((payload, suffix))
            if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            let expected = u64::from_str_radix(suffix, 16).ok()?;
            (line_checksum(payload) == expected).then_some(payload)
        }
        _ => Some(line),
    }
}

/// Appends outcomes to a journal file, flushing after every line so a
/// killed process loses at most the line being written.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Starts a fresh journal and writes the header line. The header is
    /// written to a temporary sibling file and renamed into place, so a
    /// crash here leaves either the old journal or a complete new header —
    /// never a torn one. The returned writer keeps appending through the
    /// same (renamed) file handle.
    pub fn create(path: &Path, header: &JournalHeader) -> io::Result<JournalWriter> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp_path = std::path::PathBuf::from(tmp);
        let mut file = File::create(&tmp_path)?;
        let line = checksummed_line(&header.to_json().to_string_compact());
        file.write_all(line.as_bytes())?;
        file.flush()?;
        file.sync_all()?;
        // Renaming moves the inode the handle already points at, so the
        // writer needs no reopen — appends after this land in `path`.
        fs::rename(&tmp_path, path)?;
        Ok(JournalWriter { file })
    }

    /// Reopens an existing journal for appending (resume). If the previous
    /// writer was killed mid-line, the file may not end with a newline;
    /// one is added so the torn fragment cannot glue onto the next record.
    pub fn append(path: &Path) -> io::Result<JournalWriter> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                file.flush()?;
            }
        }
        Ok(JournalWriter { file })
    }

    /// Appends one outcome as a single checksummed JSONL line and flushes.
    pub fn record(&mut self, outcome: &StrategyOutcome) -> io::Result<()> {
        self.record_with_counters(outcome, &[])
    }

    /// Like [`record`](JournalWriter::record), additionally embedding the
    /// worker counter deltas the outcome's evaluation produced (sharded
    /// campaigns receive them over the wire). On resume the deltas are
    /// re-folded into the observer, so a resumed sharded run's manifest
    /// counters match the uninterrupted run's exactly instead of missing
    /// every reused outcome's contribution. An empty slice writes the
    /// classic line with no `counters` field; readers that predate the
    /// field ignore it ([`StrategyOutcome`]'s decoder skips unknown keys).
    pub fn record_with_counters(
        &mut self,
        outcome: &StrategyOutcome,
        counters: &[(String, u64)],
    ) -> io::Result<()> {
        let mut json = outcome.to_json();
        if !counters.is_empty() {
            if let Value::Obj(pairs) = &mut json {
                pairs.push(("counters".to_owned(), counters_json(counters)));
            }
        }
        let line = checksummed_line(&json.to_string_compact());
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// One journal outcome line read back with its embedded worker counter
/// deltas (empty for lines written without any).
#[derive(Debug)]
pub struct JournalEntry {
    /// The recorded outcome.
    pub outcome: StrategyOutcome,
    /// Worker counter deltas embedded alongside it, if any.
    pub counters: Vec<(String, u64)>,
}

/// A journal read back from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The header line, when present and well-formed.
    pub header: Option<JournalHeader>,
    /// Every well-formed outcome line, in file order.
    pub outcomes: Vec<StrategyOutcome>,
    /// Lines that failed to parse (typically one partial final line left
    /// by a killed writer).
    pub malformed_lines: usize,
}

/// Streams a journal's outcome lines one at a time, so resuming a huge
/// journal never holds the whole file in memory. The header line (raw
/// line 0) is classified eagerly at [`open`](JournalReader::open), so
/// [`header`](JournalReader::header) is meaningful before any outcome has
/// been pulled. Tolerance matches [`load`]: a missing file is an empty
/// journal, and a line that fails its checksum, fails to parse, or
/// carries an unexpected type is skipped and counted in
/// [`malformed_lines`](JournalReader::malformed_lines), never fatal.
#[derive(Debug)]
pub struct JournalReader {
    /// `None` for a missing file or once the file is exhausted.
    lines: Option<std::io::Lines<BufReader<File>>>,
    /// Raw line index of the next line `lines` will yield (blank and
    /// malformed lines count, exactly as [`load`]'s enumeration did).
    line_index: usize,
    header: Option<JournalHeader>,
    /// An outcome sitting at raw line 0 (a headerless journal), decoded
    /// during `open` and handed out by the first `next_outcome` call.
    pending: Option<Box<JournalEntry>>,
    malformed_lines: usize,
}

impl JournalReader {
    /// Opens a journal for streaming, classifying its first line so the
    /// header is available immediately. A missing file is an empty
    /// journal, not an error.
    pub fn open(path: &Path) -> io::Result<JournalReader> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(JournalReader {
                    lines: None,
                    line_index: 0,
                    header: None,
                    pending: None,
                    malformed_lines: 0,
                })
            }
            Err(e) => return Err(e),
        };
        let mut reader = JournalReader {
            lines: Some(BufReader::new(file).lines()),
            line_index: 0,
            header: None,
            pending: None,
            malformed_lines: 0,
        };
        // Classify raw line 0 eagerly: it is the only line a header may
        // legitimately occupy, and callers decide resume-vs-fresh from
        // `header()` before replaying anything.
        if let Some(first) = reader.next_line()? {
            match reader.classify(&first, 0) {
                Classified::Header(header) => reader.header = Some(header),
                Classified::Outcome(outcome) => reader.pending = Some(outcome),
                Classified::Skipped => {}
            }
        }
        Ok(reader)
    }

    /// The header line, when raw line 0 carried a well-formed one.
    pub fn header(&self) -> Option<&JournalHeader> {
        self.header.as_ref()
    }

    /// Malformed lines encountered *so far*. Equals [`load`]'s total once
    /// [`next_outcome`](JournalReader::next_outcome) has returned `None`.
    pub fn malformed_lines(&self) -> usize {
        self.malformed_lines
    }

    /// Returns the next well-formed outcome, or `None` at end of file.
    /// I/O errors abort; damaged lines are skipped and counted.
    pub fn next_outcome(&mut self) -> io::Result<Option<StrategyOutcome>> {
        Ok(self.next_entry()?.map(|entry| entry.outcome))
    }

    /// Like [`next_outcome`](JournalReader::next_outcome), but keeps the
    /// worker counter deltas embedded in the line (empty for lines
    /// written without any), so resuming campaigns can re-fold them.
    pub fn next_entry(&mut self) -> io::Result<Option<JournalEntry>> {
        if let Some(pending) = self.pending.take() {
            return Ok(Some(*pending));
        }
        loop {
            let index = self.line_index;
            let Some(line) = self.next_line()? else {
                return Ok(None);
            };
            match self.classify(&line, index) {
                Classified::Outcome(entry) => return Ok(Some(*entry)),
                Classified::Header(_) | Classified::Skipped => {}
            }
        }
    }

    fn next_line(&mut self) -> io::Result<Option<String>> {
        let Some(lines) = &mut self.lines else {
            return Ok(None);
        };
        match lines.next() {
            Some(line) => {
                self.line_index += 1;
                Ok(Some(line?))
            }
            None => {
                self.lines = None;
                Ok(None)
            }
        }
    }

    fn classify(&mut self, line: &str, index: usize) -> Classified {
        if line.trim().is_empty() {
            return Classified::Skipped;
        }
        // Checksum gate first: a damaged line must not be trusted even if
        // it still happens to parse as JSON.
        let Some(payload) = verify_line(line) else {
            self.malformed_lines += 1;
            return Classified::Skipped;
        };
        let Ok(parsed) = snake_json::parse(payload) else {
            self.malformed_lines += 1;
            return Classified::Skipped;
        };
        match parsed.req_str("type") {
            Ok("campaign") if index == 0 => match JournalHeader::from_json(&parsed) {
                Ok(header) => Classified::Header(header),
                Err(_) => {
                    self.malformed_lines += 1;
                    Classified::Skipped
                }
            },
            Ok("outcome") => match StrategyOutcome::from_json(&parsed) {
                Ok(outcome) => Classified::Outcome(Box::new(JournalEntry {
                    outcome,
                    counters: decode_counters(parsed.get("counters")),
                })),
                Err(_) => {
                    self.malformed_lines += 1;
                    Classified::Skipped
                }
            },
            _ => {
                self.malformed_lines += 1;
                Classified::Skipped
            }
        }
    }
}

enum Classified {
    Header(JournalHeader),
    Outcome(Box<JournalEntry>),
    Skipped,
}

/// Loads a whole journal into memory, tolerating a missing file (empty
/// journal) and malformed lines (skipped and counted, never fatal).
/// Implemented over the streaming [`JournalReader`]; prefer the reader
/// directly when the journal may be large.
pub fn load(path: &Path) -> io::Result<LoadedJournal> {
    let mut reader = JournalReader::open(path)?;
    let mut outcomes = Vec::new();
    while let Some(outcome) = reader.next_outcome()? {
        outcomes.push(outcome);
    }
    Ok(LoadedJournal {
        header: reader.header.take(),
        outcomes,
        malformed_lines: reader.malformed_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_proxy::{BasicAttack, Endpoint, StrategyKind};

    fn outcome(id: u64) -> StrategyOutcome {
        StrategyOutcome {
            strategy: Strategy {
                id,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    packet_type: "ACK".into(),
                    attack: BasicAttack::Drop { percent: 100 },
                },
            },
            verdict: Verdict {
                throughput_degradation: true,
                ..Verdict::default()
            },
            metrics: TestMetrics {
                target_bytes: 123,
                ..TestMetrics::empty()
            },
            repeatable: true,
            on_path: false,
            false_positive: false,
            outcome_kind: OutcomeKind::Ok,
            error: None,
            memo: Some("inert".into()),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "snake-journal-test-{}-{name}.jsonl",
            std::process::id()
        ));
        p
    }

    fn header(implementation: &str, seed: u64) -> JournalHeader {
        JournalHeader {
            implementation: implementation.into(),
            seed,
            threshold: 0.5,
            memoize: Some(true),
            impairment: Some("none".into()),
        }
    }

    #[test]
    fn outcomes_roundtrip_through_json() {
        let mut o = outcome(7);
        o.outcome_kind = OutcomeKind::Errored;
        o.error = Some("engine panicked: index out of bounds".into());
        let text = o.to_json().to_string_compact();
        assert!(!text.contains('\n'));
        let back = StrategyOutcome::from_json(&snake_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn write_then_load_preserves_everything() {
        let path = temp_path("roundtrip");
        let header = header("Linux 3.13", 42);
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.record(&outcome(1)).unwrap();
        w.record(&outcome(2)).unwrap();
        drop(w);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.header, Some(header));
        assert_eq!(loaded.outcomes.len(), 2);
        assert_eq!(loaded.outcomes[0], outcome(1));
        assert_eq!(loaded.malformed_lines, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_final_line_is_skipped_not_fatal() {
        let path = temp_path("partial");
        let header = header("x", 1);
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.record(&outcome(1)).unwrap();
        drop(w);
        // Simulate a writer killed mid-append: a truncated JSON fragment.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"outcome\",\"outcome\":\"ok\",\"err");
        std::fs::write(&path, text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.outcomes.len(), 1);
        assert_eq!(loaded.malformed_lines, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counters_roundtrip_through_the_journal() {
        let path = temp_path("counters");
        let header = header("x", 1);
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.record_with_counters(&outcome(1), &[("exec.runs.from_scratch".into(), 3)])
            .unwrap();
        w.record(&outcome(2)).unwrap();
        drop(w);
        let mut r = JournalReader::open(&path).unwrap();
        let first = r.next_entry().unwrap().expect("first entry");
        assert_eq!(first.outcome, outcome(1));
        assert_eq!(
            first.counters,
            vec![("exec.runs.from_scratch".to_owned(), 3)]
        );
        let second = r.next_entry().unwrap().expect("second entry");
        assert_eq!(second.outcome, outcome(2));
        assert!(second.counters.is_empty(), "no field decodes as no deltas");
        assert!(r.next_entry().unwrap().is_none());
        assert_eq!(r.malformed_lines(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let loaded = load(Path::new("/nonexistent/snake-journal.jsonl")).unwrap();
        assert!(loaded.header.is_none());
        assert!(loaded.outcomes.is_empty());
    }

    #[test]
    fn stalled_outcomes_roundtrip_through_the_journal() {
        let path = temp_path("stalled");
        let header = header("x", 1);
        let mut o = outcome(9);
        o.outcome_kind = OutcomeKind::Stalled;
        o.error = Some("stalled: no outcome within 2s in any of 3 attempts; quarantined".into());
        o.verdict = Verdict::default();
        o.repeatable = false;
        o.memo = None;
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.record(&o).unwrap();
        drop(w);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.outcomes, vec![o]);
        assert_eq!(loaded.malformed_lines, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checksum_line_is_skipped_not_trusted() {
        let path = temp_path("corrupt");
        let header = header("x", 1);
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.record(&outcome(1)).unwrap();
        w.record(&outcome(2)).unwrap();
        drop(w);
        // Damage outcome 2's payload in place without touching its
        // checksum: the line still parses as JSON, so only the checksum
        // can reveal the corruption.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let last = lines.last_mut().unwrap();
        let damaged = last.replace("\"target_bytes\":123", "\"target_bytes\":999");
        assert_ne!(*last, damaged, "the replacement must hit");
        *last = damaged;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.outcomes.len(), 1, "the damaged line must be dropped");
        assert_eq!(loaded.outcomes[0].strategy.id, 1);
        assert_eq!(loaded.malformed_lines, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_journals_without_checksums_still_load() {
        let path = temp_path("legacy");
        // A legacy header predates the memoize/impairment fields too.
        let header = JournalHeader {
            implementation: "x".into(),
            seed: 1,
            threshold: 0.5,
            memoize: None,
            impairment: None,
        };
        // A pre-checksum journal: bare JSON lines, no tab suffix.
        let mut text = header.to_json().to_string_compact();
        text.push('\n');
        text.push_str(&outcome(1).to_json().to_string_compact());
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.header, Some(header));
        assert_eq!(loaded.outcomes, vec![outcome(1)]);
        assert_eq!(loaded.malformed_lines, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_reports_every_drifted_field() {
        let ours = header("x", 1);
        assert_eq!(ours.mismatch_against(&ours), None);

        let mut other = header("x", 1);
        other.seed = 2;
        other.memoize = Some(false);
        other.impairment = Some("loss=0.02".into());
        let detail = other.mismatch_against(&ours).expect("must mismatch");
        assert!(detail.contains("seed"), "{detail}");
        assert!(detail.contains("memoize=false"), "{detail}");
        assert!(detail.contains("loss=0.02"), "{detail}");

        // A legacy header that never recorded memoize/impairment matches
        // any current setting — resuming old journals must keep working.
        let legacy = JournalHeader {
            memoize: None,
            impairment: None,
            ..header("x", 1)
        };
        assert_eq!(legacy.mismatch_against(&ours), None);
        let mut degraded = ours.clone();
        degraded.memoize = Some(false);
        assert!(legacy.mismatch_against(&degraded).is_none());
    }

    #[test]
    fn header_roundtrips_with_and_without_optional_fields() {
        let full = header("Linux 3.13", 9);
        let back = JournalHeader::from_json(
            &snake_json::parse(&full.to_json().to_string_compact()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, full);
        let legacy = JournalHeader {
            memoize: None,
            impairment: None,
            ..header("Linux 3.13", 9)
        };
        let text = legacy.to_json().to_string_compact();
        assert!(!text.contains("memoize"), "absent fields are not written");
        let back = JournalHeader::from_json(&snake_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, legacy);
    }

    #[test]
    fn create_leaves_no_temporary_file_behind() {
        let path = temp_path("atomic");
        let header = header("x", 1);
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.record(&outcome(1)).unwrap();
        drop(w);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !Path::new(&tmp).exists(),
            "header temp file must be renamed away"
        );
        // The writer kept appending through the renamed handle, so the
        // final file holds both the header and the outcome.
        let loaded = load(&path).unwrap();
        assert!(loaded.header.is_some());
        assert_eq!(loaded.outcomes.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
