//! SNAKE: State-based Network AttacK Explorer.
//!
//! The paper's primary contribution: automated attack discovery on
//! unmodified transport protocol implementations, using the protocol state
//! machine to reduce the search space. This crate ties the substrates
//! together into the controller/executor architecture of §V:
//!
//! * [`ScenarioSpec`] / [`Executor`] — one test run: the dumbbell topology,
//!   four protocol hosts, the attack proxy on client 1's access link, a
//!   scripted workload (bulk download, end-of-test abort), and metric
//!   collection (per-connection throughput plus the server socket census).
//! * [`generate_strategies`] — strategy generation from the packet-format
//!   spec × the `(state, packet type)` pairs observed by the state tracker
//!   (§IV-C), iteratively extended as attack runs expose new states.
//! * [`detect`] — attack detection against the no-attack baseline: ±50 %
//!   throughput change, zero-data establishment failure, or leaked server
//!   sockets (§V-A).
//! * [`Controller`] / [`Campaign`] — the parallel search loop with
//!   repeatability re-testing, hitseqwindow false-positive checking, and
//!   on-path classification (§VI), producing the rows of Table I.
//! * [`cluster_attacks`] — grouping true attack strategies into the named,
//!   unique attacks of Table II.
//! * [`search`] — the §VI-C comparison against the send-packet-based and
//!   time-interval-based injection models.
//!
//! # Examples
//!
//! A miniature campaign (a few strategies) against Linux 3.13 TCP:
//!
//! ```no_run
//! use snake_core::{Campaign, CampaignConfig, ProtocolKind, ScenarioSpec};
//! use snake_tcp::Profile;
//!
//! let spec = ScenarioSpec::evaluation(ProtocolKind::Tcp(Profile::linux_3_13()));
//! let config = CampaignConfig::builder(spec).cap(25).build().expect("valid config");
//! let result = Campaign::run(config).expect("baseline must transfer data");
//! println!("{}", result.table_row());
//! ```
//!
//! To observe a campaign (phase spans, memo-layer counters, per-worker
//! histograms), attach a [`Recorder`] through the builder and fold its
//! snapshot into a [`RunManifest`] with [`build_run_manifest`]:
//!
//! ```no_run
//! use std::sync::Arc;
//! use snake_core::{build_run_manifest, Campaign, CampaignConfig, ProtocolKind, ScenarioSpec};
//! use snake_observe::Recorder;
//! use snake_tcp::Profile;
//!
//! let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
//! let recorder = Arc::new(Recorder::new());
//! let config = CampaignConfig::builder(spec)
//!     .cap(25)
//!     .observer(recorder.clone())
//!     .build()
//!     .expect("valid config");
//! let start = std::time::Instant::now();
//! let result = Campaign::run(config).expect("baseline must transfer data");
//! let manifest = build_run_manifest(&result, &recorder.snapshot(), start.elapsed().as_secs_f64());
//! println!("{}", manifest.to_json().to_string_compact());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod attacks;
mod campaign;
mod detect;
pub mod journal;
mod manifest;
mod memostore;
mod report;
mod scenario;
pub mod search;
mod segment;
mod shard;
mod strategen;

pub use attacks::{classify, cluster_attacks, AttackFinding, KnownAttack};
pub use campaign::{
    Campaign, CampaignConfig, CampaignConfigBuilder, CampaignError, CampaignResult, ChaosPlan,
    Controller, FaultHook, OutcomeKind, StrategyOutcome,
};
pub use detect::{
    baseline_valid, detect, detect_enveloped, Envelope, Verdict, DEFAULT_THRESHOLD,
    TABLE_LEAK_MARGIN,
};
pub use manifest::build_run_manifest;
pub use memostore::{scenario_digest, MemoStore, MemoStoreReport, StoreScope, MEMO_STORE_VERSION};
pub use report::{render_table1, render_table2};
pub use scenario::{
    Executor, ExecutorOptions, FlowGroup, FlowRole, PlannedExecutor, ProtocolKind, RunInfo,
    ScenarioError, ScenarioSpec, ScenarioSpecBuilder, TestMetrics, TopologySpec,
};
pub use shard::{connect_with_backoff, run_shard_worker};
pub use snake_netsim::{TopologyGenSpec, TopologyKind};
pub use snake_observe::{NullObserver, Observer, Recorder, RecorderSnapshot, RunManifest};
pub use strategen::{generate_strategies, is_on_path, is_self_denial, GenerationParams};
