//! Run manifest assembly: folds a finished [`CampaignResult`] and a
//! [`RecorderSnapshot`] into one structured JSON document per campaign
//! run — the `snake campaign --manifest FILE` output.
//!
//! Determinism contract: every section except `timing` and `shards` is
//! derived from the campaign's deterministic outputs (outcomes, memo
//! markers, simulator event counters), so two same-seed single-worker runs
//! produce byte-identical manifests once those sections are stripped. The
//! `timing` section is wall-clock by definition; `shards` (present only on
//! `--shards` runs) carries per-worker busy/idle time and dispatch counts,
//! which depend on scheduling.

use std::collections::BTreeMap;

use snake_json::{obj, Value};
use snake_observe::{RecorderSnapshot, RunManifest};
use snake_proxy::{InjectionAttack, StrategyKind};

use crate::campaign::CampaignResult;

/// Builds the per-run manifest from the campaign's result, the observer's
/// merged snapshot, and the run's wall-clock duration in seconds.
///
/// The `memo` section's totals are computed from the same outcome markers
/// as [`CampaignResult::memo_hits`] / [`CampaignResult::short_circuits`],
/// so the manifest and the in-process counters cannot disagree.
pub fn build_run_manifest(
    result: &CampaignResult,
    snapshot: &RecorderSnapshot,
    wall_secs: f64,
) -> RunManifest {
    let mut manifest = RunManifest::new("snake campaign");
    manifest.set_section("run", run_section(result));
    manifest.set_section("memo", memo_section(result));
    if let Some(store) = &result.memo_store {
        manifest.set_section("memo_store", memo_store_section(store));
    }
    manifest.set_section("exec", exec_section(snapshot));
    manifest.set_section("netsim", netsim_section(snapshot));
    manifest.set_section("robustness", robustness_section(result, snapshot));
    manifest.set_section("proxy", proxy_section(result));
    if snapshot.counter("shard.workers") > 0 {
        manifest.set_section("shards", shards_section(snapshot));
    }
    manifest.set_section("timing", timing_section(snapshot, wall_secs));
    manifest
}

/// Per-shard execution and crash-recovery tallies, present only when the
/// campaign ran with `--shards`. Like `timing`, this section is
/// nondeterministic: busy/idle time, the dispatched/re-dispatched range
/// split, heartbeat and reconnect counts, and segment activity all depend
/// on process scheduling, so manifest-comparing consumers strip it
/// alongside `timing`.
fn shards_section(snapshot: &RecorderSnapshot) -> Value {
    let histogram = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .map_or(Value::Null, |h| h.to_json())
    };
    obj([
        ("workers", Value::U64(snapshot.counter("shard.workers"))),
        (
            "ranges_dispatched",
            Value::U64(snapshot.counter("shard.ranges_dispatched")),
        ),
        (
            "ranges_redispatched",
            Value::U64(snapshot.counter("shard.ranges_redispatched")),
        ),
        (
            "outcome_batches",
            Value::U64(snapshot.counter("shard.outcome_batches")),
        ),
        (
            "heartbeats_sent",
            Value::U64(snapshot.counter("shard.heartbeat.sent")),
        ),
        (
            "heartbeats_missed",
            Value::U64(snapshot.counter("shard.heartbeat.missed")),
        ),
        (
            "reconnects",
            Value::U64(snapshot.counter("shard.reconnects")),
        ),
        (
            "segments_written",
            Value::U64(snapshot.counter("shard.segments.written")),
        ),
        (
            "segments_merged",
            Value::U64(snapshot.counter("shard.segments.merged")),
        ),
        (
            "segments_discarded",
            Value::U64(snapshot.counter("shard.segments.discarded")),
        ),
        ("busy_nanos", histogram("shard.busy_nanos")),
        ("idle_nanos", histogram("shard.idle_nanos")),
    ])
}

/// Campaign identity and Table-I-style outcome tallies.
fn run_section(result: &CampaignResult) -> Value {
    obj([
        ("protocol", Value::Str(result.protocol.clone())),
        ("implementation", Value::Str(result.implementation.clone())),
        (
            "strategies_tried",
            Value::U64(result.strategies_tried() as u64),
        ),
        (
            "attack_strategies_found",
            Value::U64(result.attack_strategies_found() as u64),
        ),
        (
            "true_attack_strategies",
            Value::U64(result.true_attack_strategies() as u64),
        ),
        ("true_attacks", Value::U64(result.true_attacks() as u64)),
        ("errored", Value::U64(result.errored() as u64)),
        ("truncated", Value::U64(result.truncated() as u64)),
        ("stalled", Value::U64(result.stalled() as u64)),
        ("resumed", Value::U64(result.resumed as u64)),
        (
            "journal_lines_skipped",
            Value::U64(result.journal_lines_skipped as u64),
        ),
    ])
}

/// Memo-layer hit breakdown, counted from the outcome provenance markers.
fn memo_section(result: &CampaignResult) -> Value {
    let count = |marker: &str| {
        Value::U64(
            result
                .outcomes
                .iter()
                .filter(|o| o.memo.as_deref() == Some(marker))
                .count() as u64,
        )
    };
    obj([
        (
            "breakdown",
            obj([
                ("inert", count("inert")),
                ("class", count("class")),
                ("fingerprint", count("fp")),
                ("halt", count("halt")),
            ]),
        ),
        ("memo_hits", Value::U64(result.memo_hits as u64)),
        ("short_circuits", Value::U64(result.short_circuits as u64)),
    ])
}

/// Persistent memo store accounting. Present only when a store was
/// configured and active. Everything except the load-side tallies
/// (`entries_loaded` / `entries_valid` / `entries_skipped`, which depend
/// on what earlier campaigns left in the file) is deterministic; two runs
/// against equally-warm stores produce identical sections.
fn memo_store_section(store: &crate::MemoStoreReport) -> Value {
    obj([
        ("entries_loaded", Value::U64(store.entries_loaded as u64)),
        ("entries_valid", Value::U64(store.entries_valid as u64)),
        ("entries_skipped", Value::U64(store.entries_skipped as u64)),
        ("cross_run_hits", Value::U64(store.cross_run_hits as u64)),
        ("eligible_runs", Value::U64(store.eligible_runs as u64)),
        ("hit_rate", Value::F64(store.hit_rate())),
        ("appended", Value::U64(store.appended as u64)),
        ("write_failures", Value::U64(store.write_failures as u64)),
        (
            "verdict_mismatches",
            Value::U64(store.verdict_mismatches as u64),
        ),
    ])
}

/// Executor run-dispatch tallies: how each run was actually executed,
/// across the main, re-test and control executors.
fn exec_section(snapshot: &RecorderSnapshot) -> Value {
    obj([
        (
            "runs_from_scratch",
            Value::U64(snapshot.counter("exec.runs.from_scratch")),
        ),
        (
            "runs_forked",
            Value::U64(snapshot.counter("exec.runs.forked")),
        ),
        (
            "runs_elided",
            Value::U64(snapshot.counter("exec.runs.elided")),
        ),
        (
            "runs_halted",
            Value::U64(snapshot.counter("exec.runs.halted")),
        ),
    ])
}

/// Simulator event-loop totals summed over every run the campaign made.
fn netsim_section(snapshot: &RecorderSnapshot) -> Value {
    let c = |name: &str| Value::U64(snapshot.counter(name));
    obj([
        ("events", c("netsim.events")),
        ("timers_cancelled", c("netsim.timers_cancelled")),
        ("timers_purged", c("netsim.timers_purged")),
        ("queue_compactions", c("netsim.queue_compactions")),
        ("queue_depth_hwm", c("netsim.queue.depth_hwm")),
        ("arena_alloc", c("netsim.arena.alloc")),
        ("arena_reuse", c("netsim.arena.reuse")),
        ("snapshot_forks", c("netsim.snapshot_forks")),
        ("snapshot_clone_bytes", c("netsim.snapshot_clone_bytes")),
        ("forks", c("netsim.forks")),
        ("fork_clone_bytes", c("netsim.fork_clone_bytes")),
    ])
}

/// Robustness report: impairment draws on the emulated links, the
/// detection envelope the verdicts were judged against, and the watchdog /
/// chaos tallies. Everything here is deterministic (impairment draws come
/// from seeded per-link RNG lanes; the envelope from seed-jittered runs)
/// except that stall counts can vary with host load when a watchdog
/// deadline is armed.
fn robustness_section(result: &CampaignResult, snapshot: &RecorderSnapshot) -> Value {
    let c = |name: &str| Value::U64(snapshot.counter(name));
    let envelope = &result.envelope;
    obj([
        (
            "impairments",
            obj([
                ("lost", c("netsim.impair.lost")),
                ("duplicated", c("netsim.impair.duplicated")),
                ("corrupted", c("netsim.impair.corrupted")),
                ("reordered", c("netsim.impair.reordered")),
                ("flap_dropped", c("netsim.impair.flap_dropped")),
            ]),
        ),
        (
            "envelope",
            obj([
                ("members", Value::U64(envelope.members as u64)),
                ("target_lo", Value::F64(envelope.target_lo.max(0.0))),
                ("target_hi", Value::F64(envelope.target_hi)),
                ("competing_lo", Value::F64(envelope.competing_lo.max(0.0))),
                ("leaked_max", Value::U64(envelope.leaked_max as u64)),
                (
                    "target_width_fraction",
                    Value::F64(envelope.target_width_fraction()),
                ),
            ]),
        ),
        (
            "watchdog",
            obj([
                ("stalls", Value::U64(result.stalls as u64)),
                ("stall_retries", c("campaign.stall_retries")),
                ("quarantined", Value::U64(result.quarantined as u64)),
            ]),
        ),
        ("escalated", Value::U64(result.escalated as u64)),
        (
            "journal",
            obj([
                ("injected_faults", c("campaign.journal_faults")),
                ("write_retries", c("campaign.journal_retries")),
            ]),
        ),
    ])
}

/// The `(state, packet type)` pair a strategy constrains, with `"*"` for
/// dimensions the strategy kind leaves unconstrained.
fn strategy_dims(kind: &StrategyKind) -> (String, String) {
    let injected = |attack: &InjectionAttack| match attack {
        InjectionAttack::Inject { packet_type, .. }
        | InjectionAttack::HitSeqWindow { packet_type, .. } => packet_type.clone(),
    };
    match kind {
        StrategyKind::OnPacket {
            state, packet_type, ..
        } => (state.clone(), packet_type.clone()),
        StrategyKind::OnState { state, attack, .. } => (state.clone(), injected(attack)),
        StrategyKind::OnNthPacket { .. } => ("*".to_owned(), "*".to_owned()),
        StrategyKind::AtTime { attack, .. } => ("*".to_owned(), injected(attack)),
    }
}

/// Proxy rule-hit histogram per `(state, packet type)`: for every outcome
/// whose run had wire-visible rule activity, the hits are attributed to
/// the strategy's constrained dimensions. Sorted by key (a `BTreeMap`),
/// so the section is deterministic regardless of outcome order.
fn proxy_section(result: &CampaignResult) -> Value {
    let mut per_dims: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for outcome in &result.outcomes {
        let hits: u64 = outcome
            .metrics
            .proxy
            .rule_hits
            .iter()
            .map(|(_, count)| *count)
            .sum();
        if hits == 0 {
            continue;
        }
        let entry = per_dims
            .entry(strategy_dims(&outcome.strategy.kind))
            .or_insert((0, 0));
        entry.0 += 1;
        entry.1 += hits;
    }
    let rows: Vec<Value> = per_dims
        .into_iter()
        .map(|((state, packet_type), (strategies, hits))| {
            obj([
                ("state", Value::Str(state)),
                ("packet_type", Value::Str(packet_type)),
                ("strategies", Value::U64(strategies)),
                ("rule_hits", Value::U64(hits)),
            ])
        })
        .collect();
    obj([("rule_hits", Value::Arr(rows))])
}

/// Wall-clock timing: total duration, per-phase span totals, and the
/// per-worker busy/idle/claimed histograms. Everything in here is
/// nondeterministic by nature; manifest consumers comparing runs must
/// strip this section (the determinism tests do).
fn timing_section(snapshot: &RecorderSnapshot, wall_secs: f64) -> Value {
    let phases: Vec<(String, Value)> = snapshot
        .span_totals()
        .into_iter()
        .map(|(name, (count, wall_nanos))| {
            (
                name.to_owned(),
                obj([
                    ("count", Value::U64(count)),
                    ("wall_nanos", Value::U64(wall_nanos)),
                ]),
            )
        })
        .collect();
    let workers: Vec<(String, Value)> = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("worker."))
        .map(|(name, histogram)| (name.to_string(), histogram.to_json()))
        .collect();
    obj([
        ("wall_clock_secs", Value::F64(wall_secs)),
        ("phases", Value::Obj(phases)),
        ("workers", Value::Obj(workers)),
    ])
}
