//! Persistent cross-run memo store: an on-disk, append-only cache of
//! wire-effect fingerprint → verdict entries that survives process exits,
//! so repeated campaigns (CI sweeps, warm benchmark reps, resumed
//! explorations) stop paying for verdicts they have already established.
//!
//! The file reuses the journal's torn-line-tolerant framing: one compact
//! JSON payload per line with a trailing FNV-1a checksum
//! (`<json>\t<16 hex digits>`), preceded by a version header that is
//! written to a temporary sibling and renamed into place. Unlike the
//! journal there is no legacy-format grace: a store line without a valid
//! checksum is skipped, and a store whose header is missing, malformed or
//! carries the wrong version is discarded wholesale and recreated — stale
//! or damaged entries are never trusted (ROADMAP open item 2's
//! "checksummed, versioned on-disk cache keyed by scenario digest").
//!
//! # Keying and invalidation
//!
//! Every entry is keyed by a [`StoreScope`] — the scenario digest (an
//! FNV-1a hash over the full [`ScenarioSpec`] plus the detection threshold
//! and baseline-ensemble size), the implementation name, the simulation
//! seed, and the impairment spec — plus the run's two wire-effect
//! fingerprint lanes. Equal fingerprints under an equal scope mean the
//! runs were byte-identical on the wire, so the verdict is sound to share
//! across campaigns; any configuration change lands in a different scope
//! and can never match stale entries. Mirroring the in-process fingerprint
//! cache, only unflagged verdicts from completed (`Ok`) runs are
//! persisted — a flagged outcome also depends on the different-seed
//! re-test run, which the main run's fingerprint says nothing about.
//!
//! # Sharing and concurrency
//!
//! The store is safe to share between sequential campaigns of *any*
//! configuration (entries simply live in different scopes). Concurrent
//! appenders are tolerated on a best-effort basis: the file is opened in
//! append mode and every entry is exactly one line, so whole-line
//! interleavings from two processes both survive, and a torn interleave is
//! caught by the checksum and skipped on the next load. Duplicate keys
//! keep the first occurrence. Write failures never abort a campaign: one
//! bounded retry, then writing is disabled for the rest of the run and the
//! failures are counted in the [`MemoStoreReport`].
//!
//! Appends are buffered through a [`BufWriter`] and pushed to disk at
//! admission checkpoints ([`MemoStore::flush`], called by the campaign
//! once per feedback round and on drop) rather than per entry — the
//! per-entry write-and-flush syscall pair used to make warm runs slower
//! than cold ones. Buffering keeps the one-line-per-write invariant for
//! concurrent appenders: whole lines are handed to the writer, and a
//! flush emits complete buffered lines.
//!
//! # Crash tolerance
//!
//! A campaign killed mid-run (including the controller-kill chaos fault)
//! can leave the store missing entries it would otherwise have appended —
//! never wrong ones, thanks to the checksum framing. The resumed campaign
//! replays every admitted outcome through the same admission path
//! (journal reuse and worker journal segments, see the `segment` module),
//! so missing entries are simply re-appended; entries the crashed run
//! *did* persist dedupe through first-occurrence-wins on load. The
//! [`StoreScope`]'s scenario digest is the same value the segment headers
//! gate on, so a store and a segment directory can never disagree about
//! which scenario produced them.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use snake_json::{obj, FromJson, ObjExt, ToJson, Value};
use snake_netsim::FxHashMap;

use crate::detect::Verdict;
use crate::journal::{checksummed_line, verify_line};
use crate::scenario::ScenarioSpec;

/// On-disk format version. A header carrying any other version causes the
/// whole store to be discarded and recreated — entries written by a
/// different format are rejected, never reinterpreted.
pub const MEMO_STORE_VERSION: u64 = 1;

/// The configuration slice an entry is valid under. Two campaigns share
/// entries exactly when their scopes are equal; everything that can change
/// a verdict (scenario shape, threshold, ensemble size, seed, impairments,
/// implementation) is folded into the scope, so a stale entry can never
/// match a changed configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreScope {
    /// FNV-1a digest over the scenario spec, threshold and baseline reps
    /// (see [`scenario_digest`]).
    pub scenario_digest: u64,
    /// Implementation under test.
    pub implementation: String,
    /// Simulation seed.
    pub seed: u64,
    /// Bottleneck impairment spec (`Display` form, `"none"` when
    /// unimpaired).
    pub impairment: String,
}

/// What the persistent store did during one campaign — surfaced on
/// [`CampaignResult::memo_store`](crate::CampaignResult::memo_store), in
/// the run manifest's `memo_store` section and the observe summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStoreReport {
    /// Well-formed entries loaded from disk, across all scopes.
    pub entries_loaded: usize,
    /// Loaded entries matching this campaign's scope.
    pub entries_valid: usize,
    /// Lines rejected on load: failed checksums, malformed payloads, or a
    /// wholesale discard after a missing/wrong-version header.
    pub entries_skipped: usize,
    /// Completed fresh runs whose fingerprint (and verdict) the store
    /// already knew from an earlier campaign.
    pub cross_run_hits: usize,
    /// Completed fresh runs eligible for a cross-run hit (everything that
    /// actually executed, as opposed to inert-elided or class-shared
    /// outcomes).
    pub eligible_runs: usize,
    /// New entries appended during this campaign.
    pub appended: usize,
    /// Append attempts that failed even after the bounded retry (writing
    /// is disabled after the first such failure; the campaign continues).
    pub write_failures: usize,
    /// Store entries whose recorded verdict disagreed with the freshly
    /// computed one. The computed verdict always wins; a nonzero count
    /// means the store was damaged in a checksum-preserving way and should
    /// be deleted.
    pub verdict_mismatches: usize,
}

impl MemoStoreReport {
    /// Fraction of eligible fresh runs whose verdict the store already
    /// knew (0.0 when nothing was eligible).
    pub fn hit_rate(&self) -> f64 {
        if self.eligible_runs == 0 {
            0.0
        } else {
            self.cross_run_hits as f64 / self.eligible_runs as f64
        }
    }
}

/// Stable FNV-1a digest of everything scenario-side that can influence a
/// verdict: the full [`ScenarioSpec`] (topology, workload, budgets, seed,
/// impairments), the detection threshold, and the baseline-ensemble size.
/// Hashing the spec's `Debug` rendering deliberately over-approximates —
/// any representational change (a new field, a reordered one) moves the
/// digest and invalidates old entries in the safe direction.
pub fn scenario_digest(spec: &ScenarioSpec, threshold: f64, baseline_reps: usize) -> u64 {
    let text = format!("{spec:?}|threshold={threshold}|baseline_reps={baseline_reps}");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The persistent store: loaded entries (all scopes) plus an append handle
/// for new ones. Opened once per campaign by `Campaign::run`.
#[derive(Debug)]
pub struct MemoStore {
    path: PathBuf,
    /// `None` once appending has been disabled by a persistent write
    /// failure — lookups keep working, the campaign keeps going. Appends
    /// are buffered; see [`MemoStore::flush`].
    file: Option<BufWriter<File>>,
    entries: FxHashMap<StoreScope, FxHashMap<(u64, u64), Verdict>>,
    entries_loaded: usize,
    entries_skipped: usize,
    appended: usize,
    write_failures: usize,
}

impl MemoStore {
    /// Opens (or creates) the store at `path`: loads every well-formed
    /// entry, skipping damaged lines, and discarding the whole file when
    /// the version header is missing or wrong. Returns an error only for
    /// real I/O failures (unreadable path, permission denied) — a damaged
    /// or empty store is recoverable by construction.
    pub fn open(path: &Path) -> io::Result<MemoStore> {
        let mut entries: FxHashMap<StoreScope, FxHashMap<(u64, u64), Verdict>> =
            FxHashMap::default();
        let mut entries_loaded = 0usize;
        let mut entries_skipped = 0usize;
        let mut header_ok = false;
        match File::open(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(file) => {
                for (index, line) in BufReader::new(file).lines().enumerate() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    // Unlike the journal there is no pre-checksum legacy:
                    // a line without a valid checksum is damage, full stop.
                    let payload = match verify_line(&line) {
                        Some(p) if p.len() + 17 == line.len() => p,
                        _ => {
                            entries_skipped += 1;
                            continue;
                        }
                    };
                    let Ok(parsed) = snake_json::parse(payload) else {
                        entries_skipped += 1;
                        continue;
                    };
                    match parsed.req_str("type") {
                        Ok("memostore") if index == 0 => {
                            header_ok = parsed.get("version").and_then(Value::as_u64)
                                == Some(MEMO_STORE_VERSION);
                        }
                        Ok("entry") => match parse_entry(&parsed) {
                            Some((scope, fp, verdict)) => {
                                entries_loaded += 1;
                                entries
                                    .entry(scope)
                                    .or_default()
                                    .entry(fp)
                                    .or_insert(verdict);
                            }
                            None => entries_skipped += 1,
                        },
                        _ => entries_skipped += 1,
                    }
                }
            }
        }
        if !header_ok {
            // Missing file, torn header, or a different format version:
            // whatever was there is rejected wholesale and the store is
            // recreated fresh (header to a temp sibling, then rename — a
            // crash here leaves the old file or a complete new header,
            // never a torn one).
            entries_skipped += entries_loaded;
            entries_loaded = 0;
            entries.clear();
            let mut tmp = path.as_os_str().to_owned();
            tmp.push(".tmp");
            let tmp_path = PathBuf::from(tmp);
            let mut file = File::create(&tmp_path)?;
            let header = obj([
                ("type", Value::Str("memostore".into())),
                ("version", Value::U64(MEMO_STORE_VERSION)),
            ]);
            file.write_all(checksummed_line(&header.to_string_compact()).as_bytes())?;
            file.flush()?;
            file.sync_all()?;
            fs::rename(&tmp_path, path)?;
            return Ok(MemoStore {
                path: path.to_owned(),
                file: Some(BufWriter::new(file)),
                entries,
                entries_loaded,
                entries_skipped,
                appended: 0,
                write_failures: 0,
            });
        }
        // Valid store: reopen for appending. A previous writer killed
        // mid-line may have left no trailing newline; add one so the torn
        // fragment cannot glue onto the next entry.
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                file.flush()?;
            }
        }
        Ok(MemoStore {
            path: path.to_owned(),
            file: Some(BufWriter::new(file)),
            entries,
            entries_loaded,
            entries_skipped,
            appended: 0,
            write_failures: 0,
        })
    }

    /// The entries recorded for `scope` (a clone; the campaign consults it
    /// lock-free while the store itself stays behind the memo ledger).
    pub fn scope_entries(&self, scope: &StoreScope) -> FxHashMap<(u64, u64), Verdict> {
        self.entries.get(scope).cloned().unwrap_or_default()
    }

    /// Records one fingerprint → verdict entry, buffering the line for
    /// the next [`flush`](Self::flush) unless the key is already present.
    /// Write failures are absorbed: one bounded retry, then appending is
    /// disabled for the rest of the run (counted in
    /// [`write_failures`](Self::write_failures)) — a broken disk must not
    /// break the campaign.
    pub fn insert(&mut self, scope: &StoreScope, fp: (u64, u64), verdict: Verdict) {
        let slot = self.entries.entry(scope.clone()).or_default();
        if slot.contains_key(&fp) {
            return;
        }
        slot.insert(fp, verdict);
        let Some(file) = &mut self.file else { return };
        let line = checksummed_line(&entry_json(scope, fp, verdict).to_string_compact());
        let write = |file: &mut BufWriter<File>| file.write_all(line.as_bytes());
        if write(file).is_err() && write(file).is_err() {
            self.write_failures += 1;
            self.file = None;
            return;
        }
        self.appended += 1;
    }

    /// Pushes buffered appends to disk — the admission checkpoint. The
    /// campaign calls this once per feedback round and before the final
    /// report; [`Drop`] calls it too, so a store that merely goes out of
    /// scope loses nothing. A flush that fails after one retry disables
    /// appending, like a failed write.
    pub fn flush(&mut self) {
        let Some(file) = &mut self.file else { return };
        if file.flush().is_err() && file.flush().is_err() {
            self.write_failures += 1;
            self.file = None;
        }
    }

    /// The store's path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Well-formed entries loaded from disk, across all scopes.
    pub fn entries_loaded(&self) -> usize {
        self.entries_loaded
    }

    /// Lines rejected on load (damaged, malformed, or wrong-version).
    pub fn entries_skipped(&self) -> usize {
        self.entries_skipped
    }

    /// New entries appended during this run.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Append attempts that failed after the bounded retry.
    pub fn write_failures(&self) -> usize {
        self.write_failures
    }
}

impl Drop for MemoStore {
    fn drop(&mut self) {
        self.flush();
    }
}

fn entry_json(scope: &StoreScope, fp: (u64, u64), verdict: Verdict) -> Value {
    obj([
        ("type", Value::Str("entry".into())),
        ("scenario", Value::U64(scope.scenario_digest)),
        ("impl", Value::Str(scope.implementation.clone())),
        ("seed", Value::U64(scope.seed)),
        ("impair", Value::Str(scope.impairment.clone())),
        ("fp_a", Value::U64(fp.0)),
        ("fp_b", Value::U64(fp.1)),
        ("verdict", verdict.to_json()),
    ])
}

fn parse_entry(value: &Value) -> Option<(StoreScope, (u64, u64), Verdict)> {
    let scope = StoreScope {
        scenario_digest: value.req_u64("scenario").ok()?,
        implementation: value.req_str("impl").ok()?.to_owned(),
        seed: value.req_u64("seed").ok()?,
        impairment: value.req_str("impair").ok()?.to_owned(),
    };
    let fp = (value.req_u64("fp_a").ok()?, value.req_u64("fp_b").ok()?);
    let verdict = Verdict::from_json(value.req("verdict").ok()?).ok()?;
    // The fingerprint-cache rule carries over to disk: flagged verdicts
    // are never persisted, so a flagged entry is damage (or tampering)
    // regardless of its checksum.
    if verdict.flagged() {
        return None;
    }
    Some((scope, fp, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;
    use snake_netsim::Impairment;
    use snake_tcp::Profile;

    fn temp_store(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "snake-memostore-unit-{}-{name}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&p).ok();
        p
    }

    fn scope(seed: u64) -> StoreScope {
        StoreScope {
            scenario_digest: 0xdead_beef,
            implementation: "Linux 3.13".into(),
            seed,
            impairment: "none".into(),
        }
    }

    #[test]
    fn digest_moves_with_every_verdict_relevant_knob() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let base = scenario_digest(&spec, 0.5, 1);
        assert_eq!(base, scenario_digest(&spec.clone(), 0.5, 1), "stable");
        assert_ne!(base, scenario_digest(&spec, 0.4, 1), "threshold");
        assert_ne!(base, scenario_digest(&spec, 0.5, 3), "baseline reps");
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(base, scenario_digest(&other, 0.5, 1), "seed");
        let impaired = spec
            .clone()
            .with_impairment(Impairment::preset("lossy").unwrap());
        assert_ne!(base, scenario_digest(&impaired, 0.5, 1), "impairment");
        let mut shorter = spec;
        shorter.data_secs -= 1;
        assert_ne!(base, scenario_digest(&shorter, 0.5, 1), "workload");
    }

    #[test]
    fn entries_roundtrip_and_dedup() {
        let path = temp_store("roundtrip");
        let mut store = MemoStore::open(&path).unwrap();
        let v = Verdict::default();
        store.insert(&scope(1), (10, 20), v);
        store.insert(&scope(1), (10, 20), v); // duplicate: not re-appended
        store.insert(&scope(2), (10, 20), v); // same fp, different scope
        assert_eq!(store.appended(), 2);
        drop(store);

        let store = MemoStore::open(&path).unwrap();
        assert_eq!(store.entries_loaded(), 2);
        assert_eq!(store.entries_skipped(), 0);
        assert_eq!(store.scope_entries(&scope(1)).len(), 1);
        assert_eq!(store.scope_entries(&scope(2)).len(), 1);
        assert!(store.scope_entries(&scope(3)).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flagged_entries_are_never_trusted_from_disk() {
        let path = temp_store("flagged");
        let mut store = MemoStore::open(&path).unwrap();
        // Forge a flagged entry through the writer (the campaign never
        // inserts one; this simulates checksum-valid tampering).
        let flagged = Verdict {
            throughput_degradation: true,
            ..Verdict::default()
        };
        store.insert(&scope(1), (1, 1), flagged);
        drop(store);
        let store = MemoStore::open(&path).unwrap();
        assert_eq!(store.entries_loaded(), 0);
        assert_eq!(store.entries_skipped(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unversioned_store_is_discarded_and_recreated() {
        let path = temp_store("unversioned");
        // A file with entry lines but no header: everything is rejected.
        let mut store = MemoStore::open(&path).unwrap();
        store.insert(&scope(1), (1, 2), Verdict::default());
        drop(store);
        let text = std::fs::read_to_string(&path).unwrap();
        let body: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, body).unwrap();
        let store = MemoStore::open(&path).unwrap();
        assert_eq!(store.entries_loaded(), 0);
        assert_eq!(store.entries_skipped(), 1, "the orphaned entry is rejected");
        // The file was recreated with a fresh header and is usable again.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"memostore\""));
        std::fs::remove_file(&path).ok();
    }
}
