//! Text rendering of the evaluation tables.

use crate::attacks::KnownAttack;
use crate::campaign::CampaignResult;

/// Renders Table I ("Summary of SNAKE results") from a set of campaigns.
pub fn render_table1(results: &[CampaignResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Proto | Implementation | Strategies Tried | Attack Strategies Found | On-path Attacks | False Positives | True Attack Strategies | True Attacks | Errored | Truncated |\n",
    );
    out.push_str(
        "|-------|----------------|------------------|-------------------------|-----------------|-----------------|------------------------|--------------|---------|-----------|\n",
    );
    for r in results {
        out.push_str(&r.table_row());
        out.push('\n');
    }
    out
}

/// Renders Table II ("Summary of attacks discovered") from a set of
/// campaigns: each unique attack with the implementations it was found on.
pub fn render_table2(results: &[CampaignResult]) -> String {
    // Collect (attack, implementations, effects).
    let mut rows: Vec<(KnownAttack, Vec<String>, Vec<String>)> = Vec::new();
    for r in results {
        for f in &r.findings {
            match rows.iter_mut().find(|(a, _, _)| *a == f.attack) {
                Some((_, impls, effects)) => {
                    if !impls.contains(&r.implementation) {
                        impls.push(r.implementation.clone());
                    }
                    for e in &f.effects {
                        if !effects.contains(e) {
                            effects.push(e.clone());
                        }
                    }
                }
                None => {
                    rows.push((f.attack, vec![r.implementation.clone()], f.effects.clone()));
                }
            }
        }
    }
    rows.sort_by_key(|(a, _, _)| *a);

    let mut out = String::new();
    out.push_str("| Attack | Impact | Implementations | Observed effects |\n");
    out.push_str("|--------|--------|-----------------|------------------|\n");
    for (attack, impls, effects) in rows {
        out.push_str(&format!(
            "| {:<52} | {:<22} | {:<28} | {} |\n",
            attack.name(),
            attack.impact(),
            impls.join(" / "),
            effects.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::AttackFinding;
    use crate::scenario::TestMetrics;

    fn fake_result(implementation: &str, attack: KnownAttack) -> CampaignResult {
        CampaignResult {
            protocol: "TCP".into(),
            implementation: implementation.into(),
            baseline: TestMetrics {
                target_bytes: 1,
                competing_bytes: 1,
                ..TestMetrics::empty()
            },
            outcomes: Vec::new(),
            findings: vec![AttackFinding {
                attack,
                strategy_ids: vec![1],
                example: "example".into(),
                effects: vec!["degradation".into()],
            }],
            resumed: 0,
            journal_lines_skipped: 0,
            memo_hits: 0,
            short_circuits: 0,
            baseline_reps: 1,
            envelope: crate::detect::Envelope::from_baseline(
                &TestMetrics::empty(),
                crate::detect::DEFAULT_THRESHOLD,
            ),
            escalated: 0,
            stalls: 0,
            quarantined: 0,
            memo_store: None,
        }
    }

    #[test]
    fn table1_has_header_and_rows() {
        let results = vec![fake_result("Linux 3.0.0", KnownAttack::ResetAttack)];
        let t = render_table1(&results);
        assert!(t.contains("Strategies Tried"));
        assert!(t.contains("Linux 3.0.0"));
    }

    #[test]
    fn table2_merges_implementations() {
        let results = vec![
            fake_result("Linux 3.0.0", KnownAttack::ResetAttack),
            fake_result("Windows 8.1", KnownAttack::ResetAttack),
        ];
        let t = render_table2(&results);
        assert_eq!(t.matches("Reset Attack").count(), 1, "one merged row:\n{t}");
        assert!(t.contains("Linux 3.0.0 / Windows 8.1"));
        assert!(t.contains("Client DoS"));
    }
}
