use snake_dccp::{DccpHost, DccpProfile, DccpServerApp};
use snake_netsim::{Addr, Dumbbell, DumbbellSpec, SimTime, Simulator};
use snake_proxy::{AttackProxy, DccpAdapter, ProxyConfig, ProxyReport, Strategy, TcpAdapter};
use snake_tcp::{Profile, ServerApp, TcpHost};

/// The protocol and implementation under test in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolKind {
    /// TCP with the given implementation profile.
    Tcp(Profile),
    /// DCCP with the given implementation profile.
    Dccp(DccpProfile),
}

impl ProtocolKind {
    /// The implementation's display name (Table I's "Implementation").
    pub fn implementation_name(&self) -> &str {
        match self {
            ProtocolKind::Tcp(p) => &p.name,
            ProtocolKind::Dccp(p) => &p.name,
        }
    }

    /// The protocol's display name (Table I's "Protocol").
    pub fn protocol_name(&self) -> &'static str {
        match self {
            ProtocolKind::Tcp(_) => "TCP",
            ProtocolKind::Dccp(_) => "DCCP",
        }
    }

    /// The well-known service port the servers listen on.
    pub fn service_port(&self) -> u16 {
        match self {
            ProtocolKind::Tcp(_) => 80,
            ProtocolKind::Dccp(_) => 5_001,
        }
    }
}

/// One test scenario: everything an executor needs to run a strategy (or
/// the baseline) and measure the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Protocol and implementation under test (all four hosts run it).
    pub protocol: ProtocolKind,
    /// Network parameters.
    pub dumbbell: DumbbellSpec,
    /// Length of the data-transfer phase.
    pub data_secs: u64,
    /// Observation window after the test ends (clients killed / servers
    /// stopped) before the socket census — the paper's post-test `netstat`.
    pub grace_secs: u64,
    /// Simulation seed. Identical seeds give identical runs.
    pub seed: u64,
    /// Number of connections the target client opens (staggered 100 ms
    /// apart). The evaluation uses 1; the resource-exhaustion scaling
    /// experiment raises it to show leaked sockets accumulating per
    /// connection — the paper's "an attacker can easily initiate hundreds
    /// of thousands of such connections" (§VI-A.1), scaled to simulation.
    pub target_connections: usize,
    /// Optional cap on simulator events for the whole run. A livelocked or
    /// packet-storm strategy is deterministically truncated when the cap is
    /// hit (the run's metrics then carry [`TestMetrics::truncated`]) instead
    /// of hanging an executor. `None` means unbounded.
    pub event_budget: Option<u64>,
}

impl ScenarioSpec {
    /// The configuration used for the evaluation: 20 simulated seconds of
    /// data transfer and a 40-second post-test observation window on the
    /// default dumbbell. The window is long enough for a Windows stack's
    /// five-retry give-up (with exponential backoff, ≈30 s) to free its
    /// sockets — only genuinely wedged connections count as leaks.
    pub fn evaluation(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec {
            protocol,
            dumbbell: DumbbellSpec::evaluation_default(),
            data_secs: 20,
            grace_secs: 40,
            seed: 7,
            target_connections: 1,
            event_budget: None,
        }
    }

    /// A reduced configuration for tests: 6 s of data, 35 s of grace.
    pub fn quick(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec {
            data_secs: 6,
            grace_secs: 35,
            ..ScenarioSpec::evaluation(protocol)
        }
    }

    /// Returns the spec with an event budget applied.
    pub fn with_event_budget(mut self, budget: u64) -> ScenarioSpec {
        self.event_budget = Some(budget);
        self
    }
}

/// Everything an executor measures in one run and reports to the
/// controller (paper §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct TestMetrics {
    /// Bytes the target (proxied) connection delivered to its application
    /// during the data phase.
    pub target_bytes: u64,
    /// Bytes the competing (unproxied) connection delivered.
    pub competing_bytes: u64,
    /// Server-1 sockets not released by the end of the grace period.
    pub leaked_sockets: usize,
    /// Of those, sockets stuck in CLOSE_WAIT (TCP) — the census detail
    /// behind the CLOSE_WAIT exhaustion attack.
    pub leaked_close_wait: usize,
    /// Server-1 sockets stuck with data still queued (DCCP OPEN/CLOSING).
    pub leaked_with_queue: usize,
    /// Whether the run hit [`ScenarioSpec::event_budget`] and was cut short;
    /// the remaining metrics describe the truncated run, not a full one.
    pub truncated: bool,
    /// The attack proxy's observation report.
    pub proxy: ProxyReport,
}

impl TestMetrics {
    /// An all-zero report used as the placeholder for runs that never
    /// produced metrics (e.g. a panicking engine isolated by the campaign
    /// runtime).
    pub fn empty() -> TestMetrics {
        TestMetrics {
            target_bytes: 0,
            competing_bytes: 0,
            leaked_sockets: 0,
            leaked_close_wait: 0,
            leaked_with_queue: 0,
            truncated: false,
            proxy: ProxyReport::default(),
        }
    }
}

/// Runs scenarios: the paper's *executor*, which "initializes the virtual
/// machines from snapshots, starts the network emulator, configures the
/// attack proxy, and starts the test" — here, deterministically in-process.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Runs one scenario under `strategy` (or the baseline when `None`)
    /// and collects the metrics.
    pub fn run(spec: &ScenarioSpec, strategy: Option<Strategy>) -> TestMetrics {
        Executor::run_combination(spec, strategy.into_iter().collect())
    }

    /// Runs one scenario with several strategies active at once — a
    /// *combination strategy*, the extension the paper sketches at the end
    /// of §IV-C ("strategies consisting of sequences of actions").
    pub fn run_combination(spec: &ScenarioSpec, rules: Vec<Strategy>) -> TestMetrics {
        match &spec.protocol {
            ProtocolKind::Tcp(profile) => run_tcp(spec, profile.clone(), rules),
            ProtocolKind::Dccp(profile) => run_dccp(spec, profile.clone(), rules),
        }
    }
}

fn proxy_config(d: &Dumbbell, spec: &ScenarioSpec) -> ProxyConfig {
    ProxyConfig {
        client_node: d.client1,
        // Dumbbell::build adds the proxy link as (client1, router1).
        client_is_a: true,
        server: Addr::new(d.server1, spec.protocol.service_port()),
        client_port_guess: 40_000,
        seed: spec.seed ^ 0x5A5A,
    }
}

fn run_tcp(spec: &ScenarioSpec, profile: Profile, rules: Vec<Strategy>) -> TestMetrics {
    let mut sim = Simulator::new(spec.seed);
    if let Some(budget) = spec.event_budget {
        sim.set_event_budget(budget);
    }
    let d = Dumbbell::build(&mut sim, spec.dumbbell);
    let port = spec.protocol.service_port();

    for server in [d.server1, d.server2] {
        let mut host = TcpHost::new(profile.clone());
        host.listen(port, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(server, host);
    }
    {
        let mut host = TcpHost::new(profile.clone());
        for i in 0..spec.target_connections.max(1) {
            host.connect_at(
                SimTime::from_millis(100 * i as u64),
                Addr::new(d.server1, port),
            );
        }
        sim.set_agent(d.client1, host);
        let mut competing = TcpHost::new(profile.clone());
        competing.connect_at(SimTime::ZERO, Addr::new(d.server2, port));
        sim.set_agent(d.client2, competing);
    }
    sim.attach_tap(
        d.proxy_link,
        AttackProxy::with_rules(TcpAdapter, proxy_config(&d, spec), rules),
    );

    let data_end = SimTime::from_secs(spec.data_secs);
    sim.run_until(data_end);
    let target_bytes = sim
        .agent::<TcpHost>(d.client1)
        .expect("host")
        .total_delivered();
    let competing_bytes = sim
        .agent::<TcpHost>(d.client2)
        .expect("host")
        .total_delivered();

    // The test ends: the client processes are killed mid-download.
    for client in [d.client1, d.client2] {
        sim.schedule_control(data_end, client, |agent, ctx| {
            let any: &mut dyn std::any::Any = agent;
            any.downcast_mut::<TcpHost>()
                .expect("tcp host")
                .abort_all(ctx);
        });
    }
    sim.run_until(SimTime::from_secs(spec.data_secs + spec.grace_secs));

    let census = sim.agent::<TcpHost>(d.server1).expect("host").census();
    let proxy = sim
        .tap::<AttackProxy>(d.proxy_link)
        .expect("proxy")
        .report()
        .clone();
    TestMetrics {
        target_bytes,
        competing_bytes,
        leaked_sockets: census.leaked(),
        leaked_close_wait: census.count("CLOSE_WAIT"),
        leaked_with_queue: 0,
        truncated: sim.budget_exhausted(),
        proxy,
    }
}

fn run_dccp(spec: &ScenarioSpec, profile: DccpProfile, rules: Vec<Strategy>) -> TestMetrics {
    let mut sim = Simulator::new(spec.seed);
    if let Some(budget) = spec.event_budget {
        sim.set_event_budget(budget);
    }
    let d = Dumbbell::build(&mut sim, spec.dumbbell);
    let port = spec.protocol.service_port();

    for server in [d.server1, d.server2] {
        let mut host = DccpHost::new(profile.clone());
        host.listen(port, DccpServerApp::bulk_sender(u64::MAX));
        sim.set_agent(server, host);
    }
    {
        let mut host = DccpHost::new(profile.clone());
        for i in 0..spec.target_connections.max(1) {
            host.connect_at(
                SimTime::from_millis(100 * i as u64),
                Addr::new(d.server1, port),
            );
        }
        sim.set_agent(d.client1, host);
        let mut competing = DccpHost::new(profile.clone());
        competing.connect_at(SimTime::ZERO, Addr::new(d.server2, port));
        sim.set_agent(d.client2, competing);
    }
    sim.attach_tap(
        d.proxy_link,
        AttackProxy::with_rules(DccpAdapter, proxy_config(&d, spec), rules),
    );

    let data_end = SimTime::from_secs(spec.data_secs);
    sim.run_until(data_end);
    let target_bytes = sim
        .agent::<DccpHost>(d.client1)
        .expect("host")
        .total_goodput();
    let competing_bytes = sim
        .agent::<DccpHost>(d.client2)
        .expect("host")
        .total_goodput();

    // The test ends: iperf stops, the sending applications close.
    for server in [d.server1, d.server2] {
        sim.schedule_control(data_end, server, |agent, ctx| {
            let any: &mut dyn std::any::Any = agent;
            any.downcast_mut::<DccpHost>()
                .expect("dccp host")
                .close_all(ctx);
        });
    }
    sim.run_until(SimTime::from_secs(spec.data_secs + spec.grace_secs));

    let server = sim.agent::<DccpHost>(d.server1).expect("host");
    let census = server.census();
    let leaked_with_queue = server
        .conn_metrics()
        .iter()
        .filter(|m| m.queue_len > 0 && !matches!(m.state.name(), "CLOSED" | "LISTEN" | "TIMEWAIT"))
        .count();
    let proxy = sim
        .tap::<AttackProxy>(d.proxy_link)
        .expect("proxy")
        .report()
        .clone();
    TestMetrics {
        target_bytes,
        competing_bytes,
        leaked_sockets: census.leaked(),
        leaked_close_wait: 0,
        leaked_with_queue,
        truncated: sim.budget_exhausted(),
        proxy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_baseline_is_clean_and_fair() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let m = Executor::run(&spec, None);
        assert!(m.target_bytes > 1_000_000, "{m:?}");
        assert!(m.competing_bytes > 1_000_000);
        let ratio = m.target_bytes.max(m.competing_bytes) as f64
            / m.target_bytes.min(m.competing_bytes) as f64;
        assert!(ratio < 2.0, "baseline unfair: {ratio}");
        assert_eq!(m.leaked_sockets, 0, "{m:?}");
        assert!(m.proxy.packets_seen > 500);
    }

    #[test]
    fn dccp_baseline_is_clean_and_fair() {
        let spec = ScenarioSpec::quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
        let m = Executor::run(&spec, None);
        assert!(m.target_bytes > 1_000_000, "{m:?}");
        let ratio = m.target_bytes.max(m.competing_bytes) as f64
            / m.target_bytes.min(m.competing_bytes) as f64;
        assert!(ratio < 2.0, "baseline unfair: {ratio}");
        assert_eq!(m.leaked_sockets, 0, "{m:?}");
    }

    #[test]
    fn identical_seeds_identical_metrics() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_0_0()));
        let a = Executor::run(&spec, None);
        let b = Executor::run(&spec, None);
        assert_eq!(a, b, "executor must be deterministic");
    }

    #[test]
    fn budgeted_run_truncates_deterministically() {
        let spec =
            ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13())).with_event_budget(20_000);
        let a = Executor::run(&spec, None);
        assert!(a.truncated, "20k events cannot finish a quick scenario");
        assert_eq!(
            a,
            Executor::run(&spec, None),
            "truncation must be deterministic"
        );
        // A generous budget does not disturb the run at all.
        let free = ScenarioSpec {
            event_budget: None,
            ..spec.clone()
        };
        let capped = ScenarioSpec {
            event_budget: Some(u64::MAX),
            ..spec
        };
        assert_eq!(Executor::run(&free, None), Executor::run(&capped, None));
    }

    #[test]
    fn different_seed_changes_details_not_shape() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let a = Executor::run(&spec, None);
        let spec2 = ScenarioSpec { seed: 99, ..spec };
        let b = Executor::run(&spec2, None);
        assert!(b.target_bytes > 1_000_000);
        // Shape holds: both clean, same order of magnitude.
        assert_eq!(b.leaked_sockets, 0);
        let ratio = a.target_bytes as f64 / b.target_bytes as f64;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "{} vs {}",
            a.target_bytes,
            b.target_bytes
        );
    }
}
