use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use snake_dccp::{DccpHost, DccpProfile, DccpServerApp};
use snake_json::ToJson;
use snake_netsim::{Addr, Dumbbell, DumbbellSpec, Impairment, SimTime, Simulator};
use snake_observe::{self as observe, NullObserver, Observer};
use snake_packet::{FieldMutation, FormatSpec};
use snake_proxy::{
    AttackProxy, BasicAttack, DccpAdapter, ProtocolAdapter, ProxyConfig, ProxyReport,
    StateTimeline, Strategy, StrategyKind, TcpAdapter,
};
use snake_tcp::{Profile, ServerApp, TcpHost};

/// The protocol and implementation under test in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolKind {
    /// TCP with the given implementation profile.
    Tcp(Profile),
    /// DCCP with the given implementation profile.
    Dccp(DccpProfile),
}

impl ProtocolKind {
    /// The implementation's display name (Table I's "Implementation").
    pub fn implementation_name(&self) -> &str {
        match self {
            ProtocolKind::Tcp(p) => &p.name,
            ProtocolKind::Dccp(p) => &p.name,
        }
    }

    /// The protocol's display name (Table I's "Protocol").
    pub fn protocol_name(&self) -> &'static str {
        match self {
            ProtocolKind::Tcp(_) => "TCP",
            ProtocolKind::Dccp(_) => "DCCP",
        }
    }

    /// The well-known service port the servers listen on.
    pub fn service_port(&self) -> u16 {
        match self {
            ProtocolKind::Tcp(_) => 80,
            ProtocolKind::Dccp(_) => 5_001,
        }
    }
}

/// One test scenario: everything an executor needs to run a strategy (or
/// the baseline) and measure the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Protocol and implementation under test (all four hosts run it).
    pub protocol: ProtocolKind,
    /// Network parameters.
    pub dumbbell: DumbbellSpec,
    /// Length of the data-transfer phase.
    pub data_secs: u64,
    /// Observation window after the test ends (clients killed / servers
    /// stopped) before the socket census — the paper's post-test `netstat`.
    pub grace_secs: u64,
    /// Simulation seed. Identical seeds give identical runs.
    pub seed: u64,
    /// Number of connections the target client opens (staggered 100 ms
    /// apart). The evaluation uses 1; the resource-exhaustion scaling
    /// experiment raises it to show leaked sockets accumulating per
    /// connection — the paper's "an attacker can easily initiate hundreds
    /// of thousands of such connections" (§VI-A.1), scaled to simulation.
    pub target_connections: usize,
    /// Optional cap on simulator events for the whole run. A livelocked or
    /// packet-storm strategy is deterministically truncated when the cap is
    /// hit (the run's metrics then carry [`TestMetrics::truncated`]) instead
    /// of hanging an executor. `None` means unbounded.
    pub event_budget: Option<u64>,
}

impl ScenarioSpec {
    /// The configuration used for the evaluation: 20 simulated seconds of
    /// data transfer and a 40-second post-test observation window on the
    /// default dumbbell. The window is long enough for a Windows stack's
    /// five-retry give-up (with exponential backoff, ≈30 s) to free its
    /// sockets — only genuinely wedged connections count as leaks.
    pub fn evaluation(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec {
            protocol,
            dumbbell: DumbbellSpec::evaluation_default(),
            data_secs: 20,
            grace_secs: 40,
            seed: 7,
            target_connections: 1,
            event_budget: None,
        }
    }

    /// A reduced configuration for tests: 6 s of data, 35 s of grace.
    pub fn quick(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec {
            data_secs: 6,
            grace_secs: 35,
            ..ScenarioSpec::evaluation(protocol)
        }
    }

    /// Returns the spec with an event budget applied.
    pub fn with_event_budget(mut self, budget: u64) -> ScenarioSpec {
        self.event_budget = Some(budget);
        self
    }

    /// Returns the spec with `impair` applied to the dumbbell's bottleneck
    /// link — the shared path both connections cross, so loss, jitter,
    /// duplication, corruption and flap windows hit target and competing
    /// traffic alike (an adversarial *environment*, not an attack).
    /// Impairment draws come from per-link RNG lanes, so the rest of the
    /// simulation is bit-identical with and without this.
    pub fn with_impairment(mut self, impair: Impairment) -> ScenarioSpec {
        self.dumbbell.bottleneck = self.dumbbell.bottleneck.with_impairment(impair);
        self
    }
}

/// Everything an executor measures in one run and reports to the
/// controller (paper §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct TestMetrics {
    /// Bytes the target (proxied) connection delivered to its application
    /// during the data phase.
    pub target_bytes: u64,
    /// Bytes the competing (unproxied) connection delivered.
    pub competing_bytes: u64,
    /// Server-1 sockets not released by the end of the grace period.
    pub leaked_sockets: usize,
    /// Of those, sockets stuck in CLOSE_WAIT (TCP) — the census detail
    /// behind the CLOSE_WAIT exhaustion attack.
    pub leaked_close_wait: usize,
    /// Server-1 sockets stuck with data still queued (DCCP OPEN/CLOSING).
    pub leaked_with_queue: usize,
    /// Whether the run hit [`ScenarioSpec::event_budget`] and was cut short;
    /// the remaining metrics describe the truncated run, not a full one.
    pub truncated: bool,
    /// Total simulator events the run processed (throughput accounting;
    /// identical between a snapshot-forked run and a from-scratch one).
    pub sim_events: u64,
    /// The attack proxy's observation report, shared rather than deep-copied
    /// — campaigns hold hundreds of these for generator feedback.
    pub proxy: Arc<ProxyReport>,
}

impl TestMetrics {
    /// An all-zero report used as the placeholder for runs that never
    /// produced metrics (e.g. a panicking engine isolated by the campaign
    /// runtime).
    pub fn empty() -> TestMetrics {
        TestMetrics {
            target_bytes: 0,
            competing_bytes: 0,
            leaked_sockets: 0,
            leaked_close_wait: 0,
            leaked_with_queue: 0,
            truncated: false,
            sim_events: 0,
            proxy: Arc::new(ProxyReport::default()),
        }
    }
}

/// Runs scenarios: the paper's *executor*, which "initializes the virtual
/// machines from snapshots, starts the network emulator, configures the
/// attack proxy, and starts the test" — here, deterministically in-process.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Runs one scenario under `strategy` (or the baseline when `None`)
    /// and collects the metrics.
    pub fn run(spec: &ScenarioSpec, strategy: Option<Strategy>) -> TestMetrics {
        Executor::run_combination(spec, strategy.into_iter().collect())
    }

    /// Runs one scenario with several strategies active at once — a
    /// *combination strategy*, the extension the paper sketches at the end
    /// of §IV-C ("strategies consisting of sequences of actions").
    pub fn run_combination(spec: &ScenarioSpec, rules: Vec<Strategy>) -> TestMetrics {
        run_full(spec, rules, &NullObserver)
    }
}

/// The shared from-scratch run path: build, run to the end of the grace
/// period, census — reporting the simulator's event-loop stats to the
/// observer afterwards (never per event; the hot loop stays virtual-call
/// free).
fn run_full(spec: &ScenarioSpec, rules: Vec<Strategy>, observer: &dyn Observer) -> TestMetrics {
    let mut session = Session::build(spec, rules, false);
    let data_end = SimTime::from_secs(spec.data_secs);
    session.sim.run_until(data_end);
    let bytes = session.measure(spec);
    session.schedule_finish(spec, data_end);
    session
        .sim
        .run_until(SimTime::from_secs(spec.data_secs + spec.grace_secs));
    let metrics = session.finish(spec, bytes);
    record_sim_stats(observer, &session.sim);
    metrics
}

/// Folds a finished simulator's event-loop counters into the observer.
/// Deliberately *not* part of [`TestMetrics`]: the consumed/purged split
/// depends on how often `run_until` was re-entered, which differs between
/// the planner's paused replay and a straight run, and would trip the
/// determinism guard if compared.
fn record_sim_stats(observer: &dyn Observer, sim: &Simulator) {
    if !observer.enabled() {
        return;
    }
    let stats = sim.stats();
    observer.counter_add("netsim.events", stats.events_processed);
    observer.counter_add("netsim.timers_cancelled", stats.timers_cancelled);
    observer.counter_add("netsim.timers_purged", stats.timers_purged);
    observer.counter_add("netsim.queue_compactions", stats.queue_compactions);
    observer.counter_add("netsim.queue.depth_hwm", stats.queue_depth_hwm);
    observer.counter_add("netsim.arena.alloc", stats.arena_alloc);
    observer.counter_add("netsim.arena.reuse", stats.arena_reuse);
    let (lost, duplicated, corrupted, reordered, flap_dropped) = sim.impairment_totals();
    if lost + duplicated + corrupted + reordered + flap_dropped > 0 {
        observer.counter_add("netsim.impair.lost", lost);
        observer.counter_add("netsim.impair.duplicated", duplicated);
        observer.counter_add("netsim.impair.corrupted", corrupted);
        observer.counter_add("netsim.impair.reordered", reordered);
        observer.counter_add("netsim.impair.flap_dropped", flap_dropped);
    }
}

fn proxy_config(d: &Dumbbell, spec: &ScenarioSpec) -> ProxyConfig {
    ProxyConfig {
        client_node: d.client1,
        // Dumbbell::build adds the proxy link as (client1, router1).
        client_is_a: true,
        server: Addr::new(d.server1, spec.protocol.service_port()),
        client_port_guess: 40_000,
        seed: spec.seed ^ 0x5A5A,
    }
}

/// One built simulation of a scenario: four hosts on the dumbbell with the
/// attack proxy tapped into the target client's access link. Both the
/// from-scratch executor and the snapshot-fork planner drive their runs
/// through the same build / measure / schedule-finish / finish phases, so
/// the two paths execute byte-identical event sequences.
struct Session {
    sim: Simulator,
    d: Dumbbell,
}

impl Session {
    fn build(spec: &ScenarioSpec, rules: Vec<Strategy>, record_timeline: bool) -> Session {
        let mut sim = Simulator::new(spec.seed);
        if let Some(budget) = spec.event_budget {
            sim.set_event_budget(budget);
        }
        let d = Dumbbell::build(&mut sim, spec.dumbbell);
        let port = spec.protocol.service_port();
        match &spec.protocol {
            ProtocolKind::Tcp(profile) => {
                for server in [d.server1, d.server2] {
                    let mut host = TcpHost::new(profile.clone());
                    host.listen(port, ServerApp::bulk_sender(u64::MAX));
                    sim.set_agent(server, host);
                }
                let mut host = TcpHost::new(profile.clone());
                for i in 0..spec.target_connections.max(1) {
                    host.connect_at(
                        SimTime::from_millis(100 * i as u64),
                        Addr::new(d.server1, port),
                    );
                }
                sim.set_agent(d.client1, host);
                let mut competing = TcpHost::new(profile.clone());
                competing.connect_at(SimTime::ZERO, Addr::new(d.server2, port));
                sim.set_agent(d.client2, competing);
                let mut proxy = AttackProxy::with_rules(TcpAdapter, proxy_config(&d, spec), rules);
                if record_timeline {
                    proxy.record_timeline();
                }
                sim.attach_tap(d.proxy_link, proxy);
            }
            ProtocolKind::Dccp(profile) => {
                for server in [d.server1, d.server2] {
                    let mut host = DccpHost::new(profile.clone());
                    host.listen(port, DccpServerApp::bulk_sender(u64::MAX));
                    sim.set_agent(server, host);
                }
                let mut host = DccpHost::new(profile.clone());
                for i in 0..spec.target_connections.max(1) {
                    host.connect_at(
                        SimTime::from_millis(100 * i as u64),
                        Addr::new(d.server1, port),
                    );
                }
                sim.set_agent(d.client1, host);
                let mut competing = DccpHost::new(profile.clone());
                competing.connect_at(SimTime::ZERO, Addr::new(d.server2, port));
                sim.set_agent(d.client2, competing);
                let mut proxy = AttackProxy::with_rules(DccpAdapter, proxy_config(&d, spec), rules);
                if record_timeline {
                    proxy.record_timeline();
                }
                sim.attach_tap(d.proxy_link, proxy);
            }
        }
        Session { sim, d }
    }

    /// Bytes the target and competing connections delivered so far — read
    /// at `data_end`, the end of the data-transfer phase.
    fn measure(&self, spec: &ScenarioSpec) -> (u64, u64) {
        match &spec.protocol {
            ProtocolKind::Tcp(_) => (
                self.sim
                    .agent::<TcpHost>(self.d.client1)
                    .expect("host")
                    .total_delivered(),
                self.sim
                    .agent::<TcpHost>(self.d.client2)
                    .expect("host")
                    .total_delivered(),
            ),
            ProtocolKind::Dccp(_) => (
                self.sim
                    .agent::<DccpHost>(self.d.client1)
                    .expect("host")
                    .total_goodput(),
                self.sim
                    .agent::<DccpHost>(self.d.client2)
                    .expect("host")
                    .total_goodput(),
            ),
        }
    }

    /// Schedules the end-of-test control actions at `data_end`: TCP client
    /// processes are killed mid-download; DCCP sending applications close.
    fn schedule_finish(&mut self, spec: &ScenarioSpec, data_end: SimTime) {
        match &spec.protocol {
            ProtocolKind::Tcp(_) => {
                for client in [self.d.client1, self.d.client2] {
                    self.sim.schedule_control(data_end, client, |agent, ctx| {
                        let any: &mut dyn std::any::Any = agent;
                        any.downcast_mut::<TcpHost>()
                            .expect("tcp host")
                            .abort_all(ctx);
                    });
                }
            }
            ProtocolKind::Dccp(_) => {
                for server in [self.d.server1, self.d.server2] {
                    self.sim.schedule_control(data_end, server, |agent, ctx| {
                        let any: &mut dyn std::any::Any = agent;
                        any.downcast_mut::<DccpHost>()
                            .expect("dccp host")
                            .close_all(ctx);
                    });
                }
            }
        }
    }

    /// The post-grace socket census and final report assembly.
    fn finish(&self, spec: &ScenarioSpec, bytes: (u64, u64)) -> TestMetrics {
        let (leaked_sockets, leaked_close_wait, leaked_with_queue) = match &spec.protocol {
            ProtocolKind::Tcp(_) => {
                let census = self
                    .sim
                    .agent::<TcpHost>(self.d.server1)
                    .expect("host")
                    .census();
                (census.leaked(), census.count("CLOSE_WAIT"), 0)
            }
            ProtocolKind::Dccp(_) => {
                let server = self.sim.agent::<DccpHost>(self.d.server1).expect("host");
                let census = server.census();
                let with_queue = server
                    .conn_metrics()
                    .iter()
                    .filter(|m| {
                        m.queue_len > 0
                            && !matches!(m.state.name(), "CLOSED" | "LISTEN" | "TIMEWAIT")
                    })
                    .count();
                (census.leaked(), 0, with_queue)
            }
        };
        let proxy = self
            .sim
            .tap::<AttackProxy>(self.d.proxy_link)
            .expect("proxy")
            .report()
            .clone();
        TestMetrics {
            target_bytes: bytes.0,
            competing_bytes: bytes.1,
            leaked_sockets,
            leaked_close_wait,
            leaked_with_queue,
            truncated: self.sim.budget_exhausted(),
            sim_events: self.sim.events_processed(),
            proxy: Arc::new(proxy),
        }
    }
}

/// Cap on captured snapshots per plan: each one is a full deep copy of the
/// simulation, so memory bounds the count. Thinning is safe — a strategy
/// just forks from an earlier snapshot and replays a little more prefix.
const MAX_SNAPSHOTS: usize = 64;

/// How a strategy set should be executed against a snapshot plan.
enum ForkDecision {
    /// No rule's trigger key ever occurs in the baseline timeline: the
    /// attack run is event-for-event identical to the baseline (a rule can
    /// only fire once the run has already diverged, and the first
    /// divergence can only come from a rule firing), so the baseline
    /// metrics ARE the run's metrics.
    Elide,
    /// Not fork-eligible: `AtTime` rules arm a timer in the proxy's
    /// `on_start`, and `OnNthPacket` activation times are not in the
    /// timeline. Run from scratch.
    FromScratch,
    /// Forkable; the earliest simulated time any rule could first activate.
    ForkAt(SimTime),
}

/// A paused deep copy of the baseline simulation.
struct Snapshot {
    /// Pause time (one nanosecond before a baseline trigger activation).
    at: SimTime,
    /// The data-phase byte measurement, carried for snapshots taken at or
    /// after `data_end` — a fork resumed past that point can no longer
    /// observe it.
    bytes: Option<(u64, u64)>,
    sim: Simulator,
}

struct SnapshotPlan {
    d: Dumbbell,
    timeline: StateTimeline,
    /// Ascending by `at`.
    snapshots: Vec<Snapshot>,
}

impl SnapshotPlan {
    fn decide(&self, rules: &[Strategy]) -> ForkDecision {
        let mut earliest: Option<SimTime> = None;
        for rule in rules {
            let t = match &rule.kind {
                StrategyKind::AtTime { .. } | StrategyKind::OnNthPacket { .. } => {
                    return ForkDecision::FromScratch;
                }
                StrategyKind::OnPacket {
                    endpoint,
                    state,
                    packet_type,
                    ..
                } => self
                    .timeline
                    .packets
                    .get(&(*endpoint, state.clone(), packet_type.clone()))
                    .map(|seen| seen.first_at),
                StrategyKind::OnState {
                    endpoint, state, ..
                } => self
                    .timeline
                    .states
                    .get(&(*endpoint, state.clone()))
                    .map(|seen| seen.first_at),
            };
            // A rule whose key is absent from the baseline can never be the
            // first to fire; it does not constrain the fork point.
            if let Some(t) = t {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
            }
        }
        match earliest {
            Some(t) => ForkDecision::ForkAt(t),
            None => ForkDecision::Elide,
        }
    }

    /// The latest snapshot strictly before `t` — strictly, so every event
    /// at the activation time itself replays inside the fork.
    fn latest_before(&self, t: SimTime) -> Option<&Snapshot> {
        self.snapshots.iter().rev().find(|s| s.at < t)
    }
}

/// Construction options for [`PlannedExecutor`], replacing the former
/// `new` / `with_options` constructor split with one explicit bundle.
///
/// `Default` gives the plain forking executor: snapshot-fork on, the
/// memoization family off, halt arming allowed (inert while `memoize` is
/// off), and the no-op observer.
#[derive(Clone)]
pub struct ExecutorOptions {
    /// Build the snapshot plan and fork strategies from baseline
    /// snapshots; off means every run executes from scratch.
    pub snapshot_fork: bool,
    /// Enables the memoization shortcuts: static no-op elision
    /// ([`provably_inert`](PlannedExecutor::provably_inert)), trigger-class
    /// keys ([`class_key`](PlannedExecutor::class_key)), and — subject to
    /// `halt_arming` — the runtime no-op halt. All of them substitute the
    /// baseline (or a classmate's) outcome for a run they prove
    /// equivalent, and all require the plan's determinism guard to have
    /// passed.
    pub memoize: bool,
    /// Permits the runtime no-op halt for all-one-shot-lie rule sets.
    /// Only consulted when `memoize` is on; turning it off isolates the
    /// static shortcuts from the mid-run halt.
    pub halt_arming: bool,
    /// Observability sink for phase spans, per-run execution counters and
    /// netsim event-loop stats. The default no-op observer reduces every
    /// hook to a constant-returning virtual call, issued at most a few
    /// times per *run* — never per event or per packet.
    pub observer: Arc<dyn Observer>,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            snapshot_fork: true,
            memoize: false,
            halt_arming: true,
            observer: observe::noop(),
        }
    }
}

impl std::fmt::Debug for ExecutorOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorOptions")
            .field("snapshot_fork", &self.snapshot_fork)
            .field("memoize", &self.memoize)
            .field("halt_arming", &self.halt_arming)
            .field("observer_enabled", &self.observer.enabled())
            .finish()
    }
}

/// How [`PlannedExecutor::run_with_info`] executed a run. The campaign
/// uses this to attribute memo markers (a halted run is journaled as
/// `"halt"`) without re-deriving the decision from counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunInfo {
    /// The proxy halted the simulation mid-run (every rule provably spent
    /// with zero wire effect); the baseline outcome was substituted.
    pub halted: bool,
    /// Answered with the baseline without simulating anything: no rule's
    /// trigger key occurs in the baseline timeline.
    pub elided: bool,
    /// Resumed from a baseline snapshot fork.
    pub forked: bool,
}

/// A scenario executor that runs the no-attack baseline once, snapshots it
/// at every state-transition boundary, and executes each strategy by
/// forking the latest snapshot strictly before the strategy's trigger
/// could first activate — the simulation analogue of the paper's executor
/// "initializing the virtual machines from snapshots" (§V-A), and the
/// reason its campaigns amortize the test prefix instead of replaying it.
///
/// Correctness rests on determinism: a forked run is bit-identical to a
/// from-scratch run of the same strategy because the prefix before the
/// trigger's first possible activation is bit-identical to the baseline.
/// The plan is self-guarding — while capturing snapshots it replays the
/// baseline with extra pauses and compares the final metrics against the
/// uninterrupted run; any difference disables forking entirely and every
/// strategy silently falls back to from-scratch execution.
pub struct PlannedExecutor {
    spec: ScenarioSpec,
    baseline: TestMetrics,
    plan: Option<SnapshotPlan>,
    /// See [`ExecutorOptions::memoize`].
    memoize: bool,
    /// See [`ExecutorOptions::halt_arming`].
    halt_arming: bool,
    observer: Arc<dyn Observer>,
    /// Runs ended early because every rule was proven a wire no-op — either
    /// statically elided or halted mid-run by the proxy.
    short_circuits: AtomicU64,
}

impl std::fmt::Debug for PlannedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedExecutor")
            .field("spec", &self.spec)
            .field("plan", &self.plan)
            .field("memoize", &self.memoize)
            .field("halt_arming", &self.halt_arming)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for SnapshotPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPlan")
            .field("snapshots", &self.snapshots.len())
            .finish_non_exhaustive()
    }
}

impl PlannedExecutor {
    /// Runs the baseline (recording the trigger timeline) and, when
    /// `options.snapshot_fork` is on, builds the snapshot plan. `memoize`
    /// without an intact plan (forking off, or the determinism guard
    /// tripped) is silently inert — every memo proof leans on the baseline
    /// being reproducible.
    pub fn new(spec: &ScenarioSpec, options: ExecutorOptions) -> PlannedExecutor {
        let ExecutorOptions {
            snapshot_fork,
            memoize,
            halt_arming,
            observer,
        } = options;
        let data_end = SimTime::from_secs(spec.data_secs);
        let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
        // Pass 1: the reference baseline, recording the trigger timeline.
        let baseline_span = observe::span(observer.as_ref(), "phase.baseline", end.as_nanos());
        let mut session = Session::build(spec, Vec::new(), true);
        session.sim.run_until(data_end);
        let bytes = session.measure(spec);
        session.schedule_finish(spec, data_end);
        session.sim.run_until(end);
        let timeline = session
            .sim
            .tap::<AttackProxy>(session.d.proxy_link)
            .expect("proxy")
            .timeline()
            .cloned()
            .unwrap_or_default();
        let baseline = session.finish(spec, bytes);
        record_sim_stats(observer.as_ref(), &session.sim);
        drop(baseline_span);
        let plan = if snapshot_fork {
            let _span = observe::span(observer.as_ref(), "phase.snapshotting", end.as_nanos());
            build_plan(spec, &baseline, timeline, observer.as_ref())
        } else {
            None
        };
        PlannedExecutor {
            spec: spec.clone(),
            baseline,
            plan,
            memoize,
            halt_arming,
            observer,
            short_circuits: AtomicU64::new(0),
        }
    }

    /// The scenario this executor runs.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The no-attack baseline metrics.
    pub fn baseline(&self) -> &TestMetrics {
        &self.baseline
    }

    /// Number of captured fork snapshots (0 means every strategy runs from
    /// scratch).
    pub fn snapshot_count(&self) -> usize {
        self.plan.as_ref().map_or(0, |p| p.snapshots.len())
    }

    /// Whether the snapshot plan is intact — forking is on and the
    /// determinism guard reproduced the baseline bit for bit. Every
    /// memoization proof is conditioned on this.
    pub fn plan_active(&self) -> bool {
        self.plan.is_some()
    }

    /// Runs this executor short-circuited so far: statically elided
    /// provably-inert strategies are not counted here (the campaign counts
    /// those at its level); this counts runs the proxy halted mid-flight.
    pub fn short_circuits(&self) -> u64 {
        self.short_circuits.load(Ordering::Relaxed)
    }

    /// The header format spec of the protocol under test.
    fn header_spec(&self) -> Arc<FormatSpec> {
        match &self.spec.protocol {
            ProtocolKind::Tcp(_) => TcpAdapter.spec(),
            ProtocolKind::Dccp(_) => DccpAdapter.spec(),
        }
    }

    /// Statically proves a strategy is a wire no-op: an `OnPacket` lie
    /// whose mutation writes back the value the targeted field held in
    /// *every* baseline packet matching the trigger triple. Because the
    /// no-op lie forwards bytes untouched and counts nothing, the run
    /// replays the (reproducible) baseline by induction packet-by-packet —
    /// the constancy observed in the baseline therefore holds in the
    /// attacked run too, and the proof closes. Such strategies can be
    /// answered with the baseline outcome without executing anything.
    pub fn provably_inert(&self, strategy: &Strategy) -> bool {
        if !self.memoize {
            return false;
        }
        let Some(plan) = &self.plan else {
            return false;
        };
        let StrategyKind::OnPacket {
            endpoint,
            state,
            packet_type,
            attack: BasicAttack::Lie { field, mutation },
        } = &strategy.kind
        else {
            return false;
        };
        let Some(seen) =
            plan.timeline
                .packets
                .get(&(*endpoint, state.clone(), packet_type.clone()))
        else {
            // Key absent from the baseline: `decide` elides it already.
            return false;
        };
        let spec = self.header_spec();
        let Some(fi) = spec.fields().iter().position(|f| f.name() == *field) else {
            // Unknown field: every application errors out, which the proxy
            // treats as a wire no-op.
            return true;
        };
        let Some((_, fref)) = spec.field_at(fi) else {
            return false;
        };
        match seen.fields.get(fi) {
            Some(Some(v)) => lie_is_inert(*mutation, *v, fref.max_value()),
            _ => false,
        }
    }

    /// A memo-class key for trigger-equivalent `OnState` strategies: two
    /// strategies with the same key start the same canonical injection at
    /// the same first-visibility instant of the same baseline run, and an
    /// `OnState` rule is never consulted again after it starts — so their
    /// runs are identical and one execution serves the whole class.
    pub fn class_key(&self, strategy: &Strategy) -> Option<String> {
        if !self.memoize {
            return None;
        }
        let plan = self.plan.as_ref()?;
        let StrategyKind::OnState {
            endpoint,
            state,
            attack,
        } = &strategy.kind
        else {
            return None;
        };
        let seen = plan.timeline.states.get(&(*endpoint, state.clone()))?;
        Some(format!(
            "{}@{}:{}",
            seen.first_at.as_nanos(),
            seen.first_index,
            attack.to_json().to_string_compact()
        ))
    }

    /// Whether every rule is a one-shot lie eligible for the runtime no-op
    /// halt: `OnNthPacket` + `Lie` can have at most one wire effect, and if
    /// that effect turns out to be a byte-identical no-op the rest of the
    /// run is the baseline.
    fn haltable(rules: &[Strategy]) -> bool {
        !rules.is_empty()
            && rules.iter().all(|rule| {
                matches!(
                    &rule.kind,
                    StrategyKind::OnNthPacket {
                        attack: BasicAttack::Lie { .. },
                        ..
                    }
                )
            })
    }

    /// From-scratch run with the proxy's no-op halt armed: the moment every
    /// rule is spent without a wire effect, the simulation stops and the
    /// baseline outcome is substituted (it is what the full run would have
    /// produced — the determinism guard vouches for the baseline, and the
    /// spent rules can never act again). The second return says whether
    /// the halt actually fired.
    fn run_halt_armed(&self, rules: Vec<Strategy>) -> (TestMetrics, bool) {
        let spec = &self.spec;
        let mut session = Session::build(spec, rules, false);
        session
            .sim
            .tap_mut::<AttackProxy>(session.d.proxy_link)
            .expect("proxy")
            .arm_noop_halt();
        let data_end = SimTime::from_secs(spec.data_secs);
        let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
        session.sim.run_until(data_end);
        if session.sim.halted() {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            record_sim_stats(self.observer.as_ref(), &session.sim);
            return (self.baseline.clone(), true);
        }
        let bytes = session.measure(spec);
        session.schedule_finish(spec, data_end);
        session.sim.run_until(end);
        if session.sim.halted() {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            record_sim_stats(self.observer.as_ref(), &session.sim);
            return (self.baseline.clone(), true);
        }
        let metrics = session.finish(spec, bytes);
        record_sim_stats(self.observer.as_ref(), &session.sim);
        (metrics, false)
    }

    /// Runs one strategy (or the baseline when `None`).
    pub fn run(&self, strategy: Option<Strategy>) -> TestMetrics {
        self.run_combination(strategy.into_iter().collect())
    }

    /// Like [`run`](PlannedExecutor::run), also reporting how the run was
    /// executed.
    pub fn run_with_info(&self, strategy: Option<Strategy>) -> (TestMetrics, RunInfo) {
        self.run_combination_with_info(strategy.into_iter().collect())
    }

    /// Runs a combination strategy, forking a baseline snapshot when every
    /// rule is fork-eligible.
    pub fn run_combination(&self, rules: Vec<Strategy>) -> TestMetrics {
        self.run_combination_with_info(rules).0
    }

    /// Like [`run_combination`](PlannedExecutor::run_combination), also
    /// reporting how the run was executed.
    pub fn run_combination_with_info(&self, rules: Vec<Strategy>) -> (TestMetrics, RunInfo) {
        let obs = self.observer.as_ref();
        let Some(plan) = &self.plan else {
            obs.counter_add("exec.runs.from_scratch", 1);
            return (run_full(&self.spec, rules, obs), RunInfo::default());
        };
        match plan.decide(&rules) {
            ForkDecision::Elide => {
                obs.counter_add("exec.runs.elided", 1);
                (
                    self.baseline.clone(),
                    RunInfo {
                        elided: true,
                        ..RunInfo::default()
                    },
                )
            }
            ForkDecision::FromScratch => {
                if self.memoize && self.halt_arming && PlannedExecutor::haltable(&rules) {
                    let (metrics, halted) = self.run_halt_armed(rules);
                    obs.counter_add(
                        if halted {
                            "exec.runs.halted"
                        } else {
                            "exec.runs.from_scratch"
                        },
                        1,
                    );
                    (
                        metrics,
                        RunInfo {
                            halted,
                            ..RunInfo::default()
                        },
                    )
                } else {
                    obs.counter_add("exec.runs.from_scratch", 1);
                    (run_full(&self.spec, rules, obs), RunInfo::default())
                }
            }
            ForkDecision::ForkAt(t) => {
                let forked = plan
                    .latest_before(t)
                    .and_then(|snap| snap.sim.fork().map(|sim| (snap, sim)));
                match forked {
                    Some((snap, sim)) => {
                        obs.counter_add("exec.runs.forked", 1);
                        obs.counter_add("netsim.forks", 1);
                        if obs.enabled() {
                            obs.counter_add(
                                "netsim.fork_clone_bytes",
                                snap.sim.approx_clone_bytes(),
                            );
                        }
                        (
                            self.resume(plan, snap, sim, rules),
                            RunInfo {
                                forked: true,
                                ..RunInfo::default()
                            },
                        )
                    }
                    // No snapshot precedes the trigger (or an agent turned
                    // out not to be forkable): run the whole thing.
                    None => {
                        obs.counter_add("exec.runs.from_scratch", 1);
                        (run_full(&self.spec, rules, obs), RunInfo::default())
                    }
                }
            }
        }
    }

    /// Continues a forked snapshot to the end of the scenario with the
    /// strategy's rules armed.
    fn resume(
        &self,
        plan: &SnapshotPlan,
        snap: &Snapshot,
        sim: Simulator,
        rules: Vec<Strategy>,
    ) -> TestMetrics {
        let spec = &self.spec;
        let data_end = SimTime::from_secs(spec.data_secs);
        let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
        let mut session = Session { sim, d: plan.d };
        session
            .sim
            .tap_mut::<AttackProxy>(plan.d.proxy_link)
            .expect("proxy")
            .install_rules(rules);
        let bytes = match snap.bytes {
            // The fork point is past data_end, so the data phase was
            // attack-free and its measurement is the carried baseline one.
            Some(b) => {
                session.sim.run_until(end);
                b
            }
            None => {
                session.sim.run_until(data_end);
                let b = session.measure(spec);
                session.schedule_finish(spec, data_end);
                session.sim.run_until(end);
                b
            }
        };
        let metrics = session.finish(spec, bytes);
        record_sim_stats(self.observer.as_ref(), &session.sim);
        metrics
    }
}

/// Pass 2 of plan construction: replay the baseline, pausing one simulated
/// nanosecond before each first trigger activation observed in pass 1 and
/// forking a snapshot there. Returns `None` (disabling forked execution)
/// if anything in the simulation refuses to fork or the paused replay
/// fails to reproduce the reference baseline bit for bit.
fn build_plan(
    spec: &ScenarioSpec,
    baseline: &TestMetrics,
    timeline: StateTimeline,
    observer: &dyn Observer,
) -> Option<SnapshotPlan> {
    let data_end = SimTime::from_secs(spec.data_secs);
    let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
    let mut times: Vec<SimTime> = timeline
        .states
        .values()
        .map(|seen| seen.first_at)
        .chain(timeline.packets.values().map(|seen| seen.first_at))
        .filter(|t| t.as_nanos() > 0 && *t < end)
        .map(|t| SimTime::from_nanos(t.as_nanos() - 1))
        .collect();
    times.sort_unstable();
    times.dedup();
    if times.len() > MAX_SNAPSHOTS {
        let step = times.len().div_ceil(MAX_SNAPSHOTS);
        times = times.into_iter().step_by(step).collect();
    }

    let mut session = Session::build(spec, Vec::new(), false);
    let mut snapshots = Vec::with_capacity(times.len());
    let mut bytes = None;
    for t in times {
        if bytes.is_none() && t >= data_end {
            session.sim.run_until(data_end);
            bytes = Some(session.measure(spec));
            session.schedule_finish(spec, data_end);
        }
        session.sim.run_until(t);
        let sim = session.sim.fork()?;
        observer.counter_add("netsim.snapshot_forks", 1);
        if observer.enabled() {
            observer.counter_add(
                "netsim.snapshot_clone_bytes",
                session.sim.approx_clone_bytes(),
            );
        }
        snapshots.push(Snapshot { at: t, bytes, sim });
    }
    if bytes.is_none() {
        session.sim.run_until(data_end);
        bytes = Some(session.measure(spec));
        session.schedule_finish(spec, data_end);
    }
    session.sim.run_until(end);
    let replay = session.finish(spec, bytes.expect("measured above"));
    record_sim_stats(observer, &session.sim);
    if replay != *baseline {
        return None;
    }
    Some(SnapshotPlan {
        d: session.d,
        timeline,
        snapshots,
    })
}

/// Whether applying `mutation` to a field currently holding `value` (with
/// representable maximum `max`) writes back `value` — i.e. the lie cannot
/// change any wire byte. Mirrors [`FieldMutation::apply`] exactly, including
/// its error cases: a mutation that fails to apply (out-of-range `Set`,
/// division by zero) is forwarded unmodified by the proxy, so it is inert
/// too. `Random` consumes entropy and is never statically classifiable.
fn lie_is_inert(mutation: FieldMutation, value: u64, max: u64) -> bool {
    match mutation {
        FieldMutation::Set(x) => x > max || x == value,
        FieldMutation::Min => value == 0,
        FieldMutation::Max => value == max,
        FieldMutation::Add(k) => value.wrapping_add(k) & max == value,
        FieldMutation::Sub(k) => value.wrapping_sub(k) & max == value,
        FieldMutation::Mul(k) => value.wrapping_mul(k) & max == value,
        FieldMutation::Div(k) => k == 0 || value / k == value,
        // `Random` (and any future variant) consumes RNG state or has
        // unknown semantics: never provably inert.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_baseline_is_clean_and_fair() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let m = Executor::run(&spec, None);
        assert!(m.target_bytes > 1_000_000, "{m:?}");
        assert!(m.competing_bytes > 1_000_000);
        let ratio = m.target_bytes.max(m.competing_bytes) as f64
            / m.target_bytes.min(m.competing_bytes) as f64;
        assert!(ratio < 2.0, "baseline unfair: {ratio}");
        assert_eq!(m.leaked_sockets, 0, "{m:?}");
        assert!(m.proxy.packets_seen > 500);
    }

    #[test]
    fn dccp_baseline_is_clean_and_fair() {
        let spec = ScenarioSpec::quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
        let m = Executor::run(&spec, None);
        assert!(m.target_bytes > 1_000_000, "{m:?}");
        let ratio = m.target_bytes.max(m.competing_bytes) as f64
            / m.target_bytes.min(m.competing_bytes) as f64;
        assert!(ratio < 2.0, "baseline unfair: {ratio}");
        assert_eq!(m.leaked_sockets, 0, "{m:?}");
    }

    #[test]
    fn identical_seeds_identical_metrics() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_0_0()));
        let a = Executor::run(&spec, None);
        let b = Executor::run(&spec, None);
        assert_eq!(a, b, "executor must be deterministic");
    }

    #[test]
    fn budgeted_run_truncates_deterministically() {
        let spec =
            ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13())).with_event_budget(20_000);
        let a = Executor::run(&spec, None);
        assert!(a.truncated, "20k events cannot finish a quick scenario");
        assert_eq!(
            a,
            Executor::run(&spec, None),
            "truncation must be deterministic"
        );
        // A generous budget does not disturb the run at all.
        let free = ScenarioSpec {
            event_budget: None,
            ..spec.clone()
        };
        let capped = ScenarioSpec {
            event_budget: Some(u64::MAX),
            ..spec
        };
        assert_eq!(Executor::run(&free, None), Executor::run(&capped, None));
    }

    #[test]
    fn impaired_scenario_is_deterministic_and_still_moves_data() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
            .with_impairment(Impairment::preset("lossy").expect("built-in preset"));
        let a = Executor::run(&spec, None);
        let b = Executor::run(&spec, None);
        assert_eq!(a, b, "impairment draws must be seed-deterministic");
        assert!(
            a.target_bytes > 500_000,
            "a lossy bottleneck degrades but must not kill the transfer: {a:?}"
        );
    }

    #[test]
    fn different_seed_changes_details_not_shape() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let a = Executor::run(&spec, None);
        let spec2 = ScenarioSpec { seed: 99, ..spec };
        let b = Executor::run(&spec2, None);
        assert!(b.target_bytes > 1_000_000);
        // Shape holds: both clean, same order of magnitude.
        assert_eq!(b.leaked_sockets, 0);
        let ratio = a.target_bytes as f64 / b.target_bytes as f64;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "{} vs {}",
            a.target_bytes,
            b.target_bytes
        );
    }
}
