use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use snake_dccp::{DccpHost, DccpProfile, DccpServerApp};
use snake_json::ToJson;
use snake_netsim::{
    Addr, Dumbbell, DumbbellSpec, Impairment, LinkId, LinkSpec, NodeId, SimTime, Simulator,
    TopologyGen, TopologyGenSpec, TopologyKind,
};
use snake_observe::{self as observe, NullObserver, Observer};
use snake_packet::{FieldMutation, FormatSpec};
use snake_proxy::{
    AttackProxy, BasicAttack, DccpAdapter, ProtocolAdapter, ProxyConfig, ProxyReport,
    StateTimeline, Strategy, StrategyKind, TcpAdapter,
};
use snake_tcp::{Profile, ServerApp, TcpHost};

/// The protocol and implementation under test in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolKind {
    /// TCP with the given implementation profile.
    Tcp(Profile),
    /// DCCP with the given implementation profile.
    Dccp(DccpProfile),
}

impl ProtocolKind {
    /// The implementation's display name (Table I's "Implementation").
    pub fn implementation_name(&self) -> &str {
        match self {
            ProtocolKind::Tcp(p) => &p.name,
            ProtocolKind::Dccp(p) => &p.name,
        }
    }

    /// The protocol's display name (Table I's "Protocol").
    pub fn protocol_name(&self) -> &'static str {
        match self {
            ProtocolKind::Tcp(_) => "TCP",
            ProtocolKind::Dccp(_) => "DCCP",
        }
    }

    /// The well-known service port the servers listen on.
    pub fn service_port(&self) -> u16 {
        match self {
            ProtocolKind::Tcp(_) => 80,
            ProtocolKind::Dccp(_) => 5_001,
        }
    }
}

/// The network a scenario runs on: the paper's Figure-3 dumbbell, or a
/// generated star/tree/multi-bottleneck layout of up to thousands of hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// The classic four-host dumbbell (the degenerate case).
    Dumbbell(DumbbellSpec),
    /// A seeded generated topology (see [`TopologyGen`]).
    Generated(TopologyGenSpec),
}

impl TopologySpec {
    /// The bottleneck-class link template of either variant.
    pub fn bottleneck(&self) -> &LinkSpec {
        match self {
            TopologySpec::Dumbbell(d) => &d.bottleneck,
            TopologySpec::Generated(g) => &g.bottleneck,
        }
    }

    fn bottleneck_mut(&mut self) -> &mut LinkSpec {
        match self {
            TopologySpec::Dumbbell(d) => &mut d.bottleneck,
            TopologySpec::Generated(g) => &mut g.bottleneck,
        }
    }
}

/// What a flow does in a multi-flow scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowRole {
    /// The proxied flow(s) under attack: bulk downloads from the attacked
    /// server, opened by the attacked client (staggered 100 ms apart, like
    /// the classic target connections).
    Attacked,
    /// Long-lived background bulk downloads competing for the bottleneck.
    Bulk,
    /// Short-lived request/response exchanges: the server pushes a small
    /// response and closes.
    RequestResponse,
    /// Connection-churn pressure on the server's socket table: the server
    /// answers with a single byte and closes, leaving the accept path and
    /// TIME_WAIT slots doing all the work.
    SynPressure,
}

impl FlowRole {
    /// Stable lowercase label (used by the CLI and the shard wire).
    pub fn label(&self) -> &'static str {
        match self {
            FlowRole::Attacked => "attacked",
            FlowRole::Bulk => "bulk",
            FlowRole::RequestResponse => "request-response",
            FlowRole::SynPressure => "syn-pressure",
        }
    }

    /// Inverse of [`FlowRole::label`], with short CLI aliases.
    pub fn from_label(label: &str) -> Option<FlowRole> {
        match label {
            "attacked" => Some(FlowRole::Attacked),
            "bulk" => Some(FlowRole::Bulk),
            "request-response" | "request_response" | "rr" => Some(FlowRole::RequestResponse),
            "syn-pressure" | "syn_pressure" | "syn" => Some(FlowRole::SynPressure),
            _ => None,
        }
    }
}

/// `count` concurrent flows of one role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowGroup {
    /// The role every flow in the group plays.
    pub role: FlowRole,
    /// Number of flows; must be positive.
    pub count: usize,
}

/// Errors from [`ScenarioSpecBuilder::build`] — the scenario-level analogue
/// of the campaign builder's `InvalidConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A builder setting is degenerate or contradictory.
    InvalidConfig {
        /// Human-readable explanation of what was rejected.
        detail: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidConfig { detail } => write!(f, "invalid scenario: {detail}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One test scenario: everything an executor needs to run a strategy (or
/// the baseline) and measure the outcome.
///
/// Construct via [`ScenarioSpec::builder`] (validating) or the
/// [`evaluation`](ScenarioSpec::evaluation) / [`quick`](ScenarioSpec::quick)
/// presets; fields are read through accessors. Every spec this type can
/// hold has passed the builder's validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Protocol and implementation under test (all hosts run it).
    pub(crate) protocol: ProtocolKind,
    /// The network the scenario runs on.
    pub(crate) topology: TopologySpec,
    /// The flow mix for generated topologies; `None` means the classic
    /// "one attacked flow + one competitor" dumbbell workload.
    pub(crate) flows: Option<Vec<FlowGroup>>,
    /// Length of the data-transfer phase.
    pub(crate) data_secs: u64,
    /// Observation window after the test ends (clients killed / servers
    /// stopped) before the socket census — the paper's post-test `netstat`.
    pub(crate) grace_secs: u64,
    /// Simulation seed. Identical seeds give identical runs.
    pub(crate) seed: u64,
    /// Number of connections the target client opens (staggered 100 ms
    /// apart). The evaluation uses 1; the resource-exhaustion scaling
    /// experiment raises it to show leaked sockets accumulating per
    /// connection — the paper's "an attacker can easily initiate hundreds
    /// of thousands of such connections" (§VI-A.1), scaled to simulation.
    pub(crate) target_connections: usize,
    /// Optional cap on simulator events for the whole run. A livelocked or
    /// packet-storm strategy is deterministically truncated when the cap is
    /// hit (the run's metrics then carry [`TestMetrics::truncated`]) instead
    /// of hanging an executor. `None` means unbounded.
    pub(crate) event_budget: Option<u64>,
}

impl ScenarioSpec {
    /// A validating builder seeded with the evaluation defaults. The
    /// [`topology`](ScenarioSpecBuilder::topology) and
    /// [`flows`](ScenarioSpecBuilder::flows) knobs are the only way to
    /// reach the generated multi-flow workload.
    pub fn builder(protocol: ProtocolKind) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder {
            protocol,
            generated: None,
            bottleneck: DumbbellSpec::evaluation_default().bottleneck,
            access: DumbbellSpec::evaluation_default().access,
            flows: None,
            impair: None,
            data_secs: 20,
            grace_secs: 40,
            seed: 7,
            target_connections: 1,
            event_budget: None,
        }
    }

    /// The configuration used for the evaluation: 20 simulated seconds of
    /// data transfer and a 40-second post-test observation window on the
    /// default dumbbell. The window is long enough for a Windows stack's
    /// five-retry give-up (with exponential backoff, ≈30 s) to free its
    /// sockets — only genuinely wedged connections count as leaks.
    pub fn evaluation(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec::builder(protocol)
            .build()
            .expect("evaluation preset is valid")
    }

    /// A reduced configuration for tests: 6 s of data, 35 s of grace.
    pub fn quick(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec::builder(protocol)
            .quick()
            .build()
            .expect("quick preset is valid")
    }

    /// Protocol and implementation under test.
    pub fn protocol(&self) -> &ProtocolKind {
        &self.protocol
    }

    /// The network the scenario runs on.
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// The flow mix for generated topologies (`None` = classic workload).
    pub fn flows(&self) -> Option<&[FlowGroup]> {
        self.flows.as_deref()
    }

    /// Length of the data-transfer phase in simulated seconds.
    pub fn data_secs(&self) -> u64 {
        self.data_secs
    }

    /// Post-test observation window in simulated seconds.
    pub fn grace_secs(&self) -> u64 {
        self.grace_secs
    }

    /// Simulation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Connections the attacked client opens.
    pub fn target_connections(&self) -> usize {
        self.target_connections
    }

    /// Optional cap on simulator events for the whole run.
    pub fn event_budget(&self) -> Option<u64> {
        self.event_budget
    }

    /// The bottleneck link template of the scenario's topology.
    pub fn bottleneck(&self) -> &LinkSpec {
        self.topology.bottleneck()
    }

    /// Returns the spec with a different traffic seed. A generated
    /// topology's layout seed is bound when the spec is built, so reseeding
    /// varies the traffic draws without moving hosts — ensemble members
    /// measure the same network.
    pub fn with_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }

    /// Returns the spec with an event budget applied.
    pub fn with_event_budget(mut self, budget: u64) -> ScenarioSpec {
        self.event_budget = Some(budget);
        self
    }

    /// Returns the spec with any event budget removed.
    pub fn without_event_budget(mut self) -> ScenarioSpec {
        self.event_budget = None;
        self
    }

    /// Returns the spec with `impair` applied to the topology's bottleneck
    /// link(s) — the shared path competing flows cross, so loss, jitter,
    /// duplication, corruption and flap windows hit target and competing
    /// traffic alike (an adversarial *environment*, not an attack).
    /// Impairment draws come from per-link RNG lanes, so the rest of the
    /// simulation is bit-identical with and without this.
    pub fn with_impairment(mut self, impair: Impairment) -> ScenarioSpec {
        let b = self.topology.bottleneck_mut();
        *b = b.with_impairment(impair);
        self
    }
}

/// Validating builder for [`ScenarioSpec`], mirroring
/// `CampaignConfig::builder`. Defaults are the evaluation preset.
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    protocol: ProtocolKind,
    /// `Some((kind, hosts))` switches from the dumbbell to a generated
    /// topology; its layout seed is bound to `seed` at build time.
    generated: Option<(TopologyKind, usize)>,
    bottleneck: LinkSpec,
    access: LinkSpec,
    flows: Option<Vec<FlowGroup>>,
    impair: Option<Impairment>,
    data_secs: u64,
    grace_secs: u64,
    seed: u64,
    target_connections: usize,
    event_budget: Option<u64>,
}

impl ScenarioSpecBuilder {
    /// Switches to the reduced test preset: 6 s of data, 35 s of grace.
    pub fn quick(mut self) -> ScenarioSpecBuilder {
        self.data_secs = 6;
        self.grace_secs = 35;
        self
    }

    /// Generates a `kind` topology with `hosts` end hosts instead of the
    /// dumbbell. Requires [`flows`](ScenarioSpecBuilder::flows).
    pub fn topology(mut self, kind: TopologyKind, hosts: usize) -> ScenarioSpecBuilder {
        self.generated = Some((kind, hosts));
        self
    }

    /// The flow mix to run on a generated topology. Exactly one
    /// [`FlowRole::Attacked`] group is required.
    pub fn flows(mut self, flows: Vec<FlowGroup>) -> ScenarioSpecBuilder {
        self.flows = Some(flows);
        self
    }

    /// Overrides the bottleneck-class link template.
    pub fn bottleneck(mut self, link: LinkSpec) -> ScenarioSpecBuilder {
        self.bottleneck = link;
        self
    }

    /// Overrides the access-link template.
    pub fn access(mut self, link: LinkSpec) -> ScenarioSpecBuilder {
        self.access = link;
        self
    }

    /// Applies an impairment to the bottleneck link(s).
    pub fn impairment(mut self, impair: Impairment) -> ScenarioSpecBuilder {
        self.impair = Some(impair);
        self
    }

    /// Length of the data-transfer phase in simulated seconds.
    pub fn data_secs(mut self, secs: u64) -> ScenarioSpecBuilder {
        self.data_secs = secs;
        self
    }

    /// Post-test observation window in simulated seconds.
    pub fn grace_secs(mut self, secs: u64) -> ScenarioSpecBuilder {
        self.grace_secs = secs;
        self
    }

    /// Simulation seed (also the generated topology's layout seed).
    pub fn seed(mut self, seed: u64) -> ScenarioSpecBuilder {
        self.seed = seed;
        self
    }

    /// Connections the attacked client opens (classic workload).
    pub fn target_connections(mut self, count: usize) -> ScenarioSpecBuilder {
        self.target_connections = count;
        self
    }

    /// Cap on simulator events for the whole run.
    pub fn event_budget(mut self, budget: u64) -> ScenarioSpecBuilder {
        self.event_budget = Some(budget);
        self
    }

    /// Validates and builds the spec.
    pub fn build(self) -> Result<ScenarioSpec, ScenarioError> {
        fn invalid<T>(detail: String) -> Result<T, ScenarioError> {
            Err(ScenarioError::InvalidConfig { detail })
        }
        if self.data_secs == 0 {
            return invalid("data phase must be at least one second".into());
        }
        if self.target_connections == 0 {
            return invalid("target connection count must be positive".into());
        }
        for (what, link) in [("bottleneck", &self.bottleneck), ("access", &self.access)] {
            if link.bandwidth_bps == 0 {
                return invalid(format!("{what} link bandwidth must be positive"));
            }
            if link.queue_packets == 0 {
                return invalid(format!("{what} link queue must hold at least one packet"));
            }
        }
        let mut target_connections = self.target_connections;
        let topology = match self.generated {
            None => {
                if self.flows.is_some() {
                    return invalid(
                        "flow groups need a generated topology; call topology(...) too".into(),
                    );
                }
                TopologySpec::Dumbbell(DumbbellSpec {
                    bottleneck: self.bottleneck,
                    access: self.access,
                })
            }
            Some((kind, hosts)) => {
                let Some(flows) = &self.flows else {
                    return invalid(
                        "a generated topology needs a flow mix; call flows(...) too".into(),
                    );
                };
                if flows.is_empty() {
                    return invalid("the flow mix must name at least one group".into());
                }
                if let Some(g) = flows.iter().find(|g| g.count == 0) {
                    return invalid(format!("{} flow count must be positive", g.role.label()));
                }
                let attacked: Vec<_> = flows
                    .iter()
                    .filter(|g| g.role == FlowRole::Attacked)
                    .collect();
                match attacked.as_slice() {
                    [one] => target_connections = one.count,
                    [] => return invalid("the flow mix needs exactly one attacked group".into()),
                    _ => {
                        return invalid(
                            "the flow mix must not contain more than one attacked group".into(),
                        )
                    }
                }
                let gen = TopologyGenSpec {
                    kind,
                    hosts,
                    seed: self.seed,
                    bottleneck: self.bottleneck,
                    access: self.access,
                };
                // Generating is cheap and proves the layout is realizable.
                if let Err(detail) = TopologyGen::generate(&gen) {
                    return invalid(detail);
                }
                TopologySpec::Generated(gen)
            }
        };
        let mut spec = ScenarioSpec {
            protocol: self.protocol,
            topology,
            flows: self.flows,
            data_secs: self.data_secs,
            grace_secs: self.grace_secs,
            seed: self.seed,
            target_connections,
            event_budget: self.event_budget,
        };
        if let Some(impair) = self.impair {
            spec = spec.with_impairment(impair);
        }
        Ok(spec)
    }
}

/// Everything an executor measures in one run and reports to the
/// controller (paper §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct TestMetrics {
    /// Bytes the target (proxied) connection delivered to its application
    /// during the data phase.
    pub target_bytes: u64,
    /// Bytes the competing (unproxied) connection delivered.
    pub competing_bytes: u64,
    /// Server-1 sockets not released by the end of the grace period.
    pub leaked_sockets: usize,
    /// Of those, sockets stuck in CLOSE_WAIT (TCP) — the census detail
    /// behind the CLOSE_WAIT exhaustion attack.
    pub leaked_close_wait: usize,
    /// Server-1 sockets stuck with data still queued (DCCP OPEN/CLOSING).
    pub leaked_with_queue: usize,
    /// Whether the run hit the scenario's event budget and was cut short;
    /// the remaining metrics describe the truncated run, not a full one.
    pub truncated: bool,
    /// Total simulator events the run processed (throughput accounting;
    /// identical between a snapshot-forked run and a from-scratch one).
    pub sim_events: u64,
    /// Bytes delivered per client host at the end of the data phase,
    /// attacked client first. On the classic dumbbell this is
    /// `[target_bytes, competing_bytes]`; on generated topologies the flow
    /// spread puts (at most) one background flow per client, so this is the
    /// per-flow delivery vector the cross-flow detectors consume.
    pub flow_bytes: Vec<u64>,
    /// Server socket-table occupancy at the end of the data phase, summed
    /// over all servers: connections in any live state plus TIME_WAIT —
    /// the accept-queue/table pressure a SYN-pressure workload creates.
    pub server_sockets: usize,
    /// Post-grace leaked sockets summed over *all* servers (the classic
    /// [`leaked_sockets`](TestMetrics::leaked_sockets) counts only the
    /// attacked server).
    pub leaked_total: usize,
    /// The attack proxy's observation report, shared rather than deep-copied
    /// — campaigns hold hundreds of these for generator feedback.
    pub proxy: Arc<ProxyReport>,
}

/// A flow counts as starved when it delivered less than this fraction of
/// the fair share of the total.
const STARVATION_FRACTION: f64 = 0.1;

impl TestMetrics {
    /// An all-zero report used as the placeholder for runs that never
    /// produced metrics (e.g. a panicking engine isolated by the campaign
    /// runtime).
    pub fn empty() -> TestMetrics {
        TestMetrics {
            target_bytes: 0,
            competing_bytes: 0,
            leaked_sockets: 0,
            leaked_close_wait: 0,
            leaked_with_queue: 0,
            truncated: false,
            sim_events: 0,
            flow_bytes: Vec::new(),
            server_sockets: 0,
            leaked_total: 0,
            proxy: Arc::new(ProxyReport::default()),
        }
    }

    /// Jain's fairness index over [`flow_bytes`](TestMetrics::flow_bytes):
    /// `(Σx)² / (n·Σx²)`, 1.0 when all flows deliver equally, → 1/n as one
    /// flow monopolizes. Degenerate vectors (empty, or all-zero) are
    /// trivially fair: fairness is about *division* of delivered bytes, and
    /// a run that moved nothing is judged by the throughput detectors.
    pub fn jain_index(&self) -> f64 {
        let n = self.flow_bytes.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.flow_bytes.iter().map(|&b| b as f64).sum();
        let sum_sq: f64 = self
            .flow_bytes
            .iter()
            .map(|&b| (b as f64) * (b as f64))
            .sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (n as f64 * sum_sq)
    }

    /// Number of flows that delivered less than 10 % of the fair share
    /// (total / n). Zero for degenerate vectors — a run that moved nothing
    /// has no share to starve anyone of.
    pub fn starved_flows(&self) -> usize {
        let n = self.flow_bytes.len();
        if n < 2 {
            return 0;
        }
        let total: u64 = self.flow_bytes.iter().sum();
        if total == 0 {
            return 0;
        }
        let floor = STARVATION_FRACTION * total as f64 / n as f64;
        self.flow_bytes
            .iter()
            .filter(|&&b| (b as f64) < floor)
            .count()
    }
}

/// Runs scenarios: the paper's *executor*, which "initializes the virtual
/// machines from snapshots, starts the network emulator, configures the
/// attack proxy, and starts the test" — here, deterministically in-process.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Runs one scenario under `strategy` (or the baseline when `None`)
    /// and collects the metrics.
    pub fn run(spec: &ScenarioSpec, strategy: Option<Strategy>) -> TestMetrics {
        Executor::run_combination(spec, strategy.into_iter().collect())
    }

    /// Runs one scenario with several strategies active at once — a
    /// *combination strategy*, the extension the paper sketches at the end
    /// of §IV-C ("strategies consisting of sequences of actions").
    pub fn run_combination(spec: &ScenarioSpec, rules: Vec<Strategy>) -> TestMetrics {
        run_full(spec, rules, &NullObserver)
    }
}

/// The shared from-scratch run path: build, run to the end of the grace
/// period, census — reporting the simulator's event-loop stats to the
/// observer afterwards (never per event; the hot loop stays virtual-call
/// free).
fn run_full(spec: &ScenarioSpec, rules: Vec<Strategy>, observer: &dyn Observer) -> TestMetrics {
    let mut session = Session::build(spec, rules, false);
    let data_end = SimTime::from_secs(spec.data_secs);
    session.sim.run_until(data_end);
    let bytes = session.measure(spec);
    session.schedule_finish(spec, data_end);
    session
        .sim
        .run_until(SimTime::from_secs(spec.data_secs + spec.grace_secs));
    let metrics = session.finish(spec, bytes);
    record_sim_stats(observer, &session.sim);
    metrics
}

/// Folds a finished simulator's event-loop counters into the observer.
/// Deliberately *not* part of [`TestMetrics`]: the consumed/purged split
/// depends on how often `run_until` was re-entered, which differs between
/// the planner's paused replay and a straight run, and would trip the
/// determinism guard if compared.
fn record_sim_stats(observer: &dyn Observer, sim: &Simulator) {
    if !observer.enabled() {
        return;
    }
    let stats = sim.stats();
    observer.counter_add("netsim.events", stats.events_processed);
    observer.counter_add("netsim.timers_cancelled", stats.timers_cancelled);
    observer.counter_add("netsim.timers_purged", stats.timers_purged);
    observer.counter_add("netsim.queue_compactions", stats.queue_compactions);
    observer.counter_add("netsim.queue.depth_hwm", stats.queue_depth_hwm);
    observer.counter_add("netsim.arena.alloc", stats.arena_alloc);
    observer.counter_add("netsim.arena.reuse", stats.arena_reuse);
    let (lost, duplicated, corrupted, reordered, flap_dropped) = sim.impairment_totals();
    if lost + duplicated + corrupted + reordered + flap_dropped > 0 {
        observer.counter_add("netsim.impair.lost", lost);
        observer.counter_add("netsim.impair.duplicated", duplicated);
        observer.counter_add("netsim.impair.corrupted", corrupted);
        observer.counter_add("netsim.impair.reordered", reordered);
        observer.counter_add("netsim.impair.flap_dropped", flap_dropped);
    }
}

/// Host/link handles a built scenario exposes to the measurement phases,
/// independent of which topology produced them. `clients[0]`/`servers[0]`
/// are the attacked pair; the proxy taps `proxy_link`.
#[derive(Debug, Clone)]
struct Wiring {
    proxy_link: LinkId,
    /// Whether the attacked client is endpoint `a` of `proxy_link`.
    proxy_client_is_a: bool,
    clients: Vec<NodeId>,
    servers: Vec<NodeId>,
}

fn proxy_config(w: &Wiring, spec: &ScenarioSpec) -> ProxyConfig {
    ProxyConfig {
        client_node: w.clients[0],
        client_is_a: w.proxy_client_is_a,
        server: Addr::new(w.servers[0], spec.protocol.service_port()),
        client_port_guess: 40_000,
        seed: spec.seed ^ 0x5A5A,
    }
}

/// Port serving short request/response flows on generated topologies.
const RR_PORT: u16 = 8_080;
/// Bytes a request/response server pushes before closing.
const RR_BYTES: u64 = 64 * 1024;
/// Port serving SYN-pressure flows.
const SYN_PORT: u16 = 9_090;
/// Bytes a SYN-pressure server pushes before closing — the connection's
/// cost is all handshake and teardown.
const SYN_BYTES: u64 = 1;

/// The fully expanded workload: which ports every server listens on (and
/// how many bytes each app serves) and every client's connection plan.
/// Pure data derived deterministically from the spec.
struct FlowPlan {
    /// `(port, app bytes)` installed on every server host; `u64::MAX`
    /// means an unbounded bulk sender.
    listens: Vec<(u16, u64)>,
    /// Per client (same order as `Wiring::clients`): `(time, server index,
    /// port)` connection plans.
    connects: Vec<Vec<(SimTime, usize, u16)>>,
}

fn flow_plan(spec: &ScenarioSpec, n_clients: usize, n_servers: usize) -> FlowPlan {
    let port = spec.protocol.service_port();
    let mut connects = vec![Vec::new(); n_clients];
    let Some(groups) = &spec.flows else {
        // Classic workload: the attacked client's staggered bulk
        // connections to server 0, one competitor to server 1. This arm
        // reproduces the pre-multi-flow executor call-for-call.
        for i in 0..spec.target_connections.max(1) {
            connects[0].push((SimTime::from_millis(100 * i as u64), 0, port));
        }
        if n_clients > 1 {
            connects[1].push((SimTime::ZERO, 1 % n_servers, port));
        }
        return FlowPlan {
            listens: vec![(port, u64::MAX)],
            connects,
        };
    };
    // Attacked flows mirror the classic stagger on client 0 / server 0;
    // background flows spread round-robin over the remaining clients and
    // all servers, each role with its own start cadence.
    let mut background = 0usize;
    let mut per_role = [0usize; 3];
    for group in groups {
        for _ in 0..group.count {
            let (client, server, at, to_port) = match group.role {
                FlowRole::Attacked => {
                    let i = connects[0].len() as u64;
                    (0, 0, SimTime::from_millis(100 * i), port)
                }
                FlowRole::Bulk => {
                    let i = per_role[0] as u64;
                    per_role[0] += 1;
                    (
                        1 + background % (n_clients - 1),
                        background % n_servers,
                        SimTime::from_millis(10 * i),
                        port,
                    )
                }
                FlowRole::RequestResponse => {
                    let i = per_role[1] as u64;
                    per_role[1] += 1;
                    (
                        1 + background % (n_clients - 1),
                        background % n_servers,
                        SimTime::from_millis(50 * i),
                        RR_PORT,
                    )
                }
                FlowRole::SynPressure => {
                    let i = per_role[2] as u64;
                    per_role[2] += 1;
                    (
                        1 + background % (n_clients - 1),
                        background % n_servers,
                        SimTime::from_millis(5 * i),
                        SYN_PORT,
                    )
                }
            };
            if group.role != FlowRole::Attacked {
                background += 1;
            }
            connects[client].push((at, server, to_port));
        }
    }
    FlowPlan {
        listens: vec![(port, u64::MAX), (RR_PORT, RR_BYTES), (SYN_PORT, SYN_BYTES)],
        connects,
    }
}

/// The byte/occupancy measurement taken at the end of the data phase.
#[derive(Debug, Clone, PartialEq)]
struct Measured {
    /// Bytes delivered per client host, attacked client first.
    flow_bytes: Vec<u64>,
    /// Socket-table occupancy summed over all servers.
    server_sockets: usize,
}

/// One built simulation of a scenario: the topology's hosts with the
/// attack proxy tapped into the attacked client's access link. Both the
/// from-scratch executor and the snapshot-fork planner drive their runs
/// through the same build / measure / schedule-finish / finish phases, so
/// the two paths execute byte-identical event sequences.
struct Session {
    sim: Simulator,
    wiring: Wiring,
}

impl Session {
    fn build(spec: &ScenarioSpec, rules: Vec<Strategy>, record_timeline: bool) -> Session {
        let mut sim = Simulator::new(spec.seed);
        if let Some(budget) = spec.event_budget {
            sim.set_event_budget(budget);
        }
        let wiring = match &spec.topology {
            TopologySpec::Dumbbell(d_spec) => {
                let d = Dumbbell::build(&mut sim, *d_spec);
                Wiring {
                    proxy_link: d.proxy_link,
                    // Dumbbell::build adds the proxy link as (client1, router1).
                    proxy_client_is_a: true,
                    clients: vec![d.client1, d.client2],
                    servers: vec![d.server1, d.server2],
                }
            }
            TopologySpec::Generated(g) => {
                let layout =
                    TopologyGen::generate(g).expect("generated topology validated by the builder");
                let built = layout.build(&mut sim);
                Wiring {
                    proxy_link: built.proxy_link,
                    proxy_client_is_a: built.proxy_client_is_a,
                    clients: built.clients,
                    servers: built.servers,
                }
            }
        };
        let plan = flow_plan(spec, wiring.clients.len(), wiring.servers.len());
        match &spec.protocol {
            ProtocolKind::Tcp(profile) => {
                for &server in &wiring.servers {
                    let mut host = TcpHost::new(profile.clone());
                    for &(p, bytes) in &plan.listens {
                        host.listen(p, ServerApp::bulk_sender(bytes));
                    }
                    sim.set_agent(server, host);
                }
                for (ci, &client) in wiring.clients.iter().enumerate() {
                    let mut host = TcpHost::new(profile.clone());
                    for &(at, si, p) in &plan.connects[ci] {
                        host.connect_at(at, Addr::new(wiring.servers[si], p));
                    }
                    sim.set_agent(client, host);
                }
                let mut proxy =
                    AttackProxy::with_rules(TcpAdapter, proxy_config(&wiring, spec), rules);
                if record_timeline {
                    proxy.record_timeline();
                }
                sim.attach_tap(wiring.proxy_link, proxy);
            }
            ProtocolKind::Dccp(profile) => {
                for &server in &wiring.servers {
                    let mut host = DccpHost::new(profile.clone());
                    for &(p, bytes) in &plan.listens {
                        host.listen(p, DccpServerApp::bulk_sender(bytes));
                    }
                    sim.set_agent(server, host);
                }
                for (ci, &client) in wiring.clients.iter().enumerate() {
                    let mut host = DccpHost::new(profile.clone());
                    for &(at, si, p) in &plan.connects[ci] {
                        host.connect_at(at, Addr::new(wiring.servers[si], p));
                    }
                    sim.set_agent(client, host);
                }
                let mut proxy =
                    AttackProxy::with_rules(DccpAdapter, proxy_config(&wiring, spec), rules);
                if record_timeline {
                    proxy.record_timeline();
                }
                sim.attach_tap(wiring.proxy_link, proxy);
            }
        }
        Session { sim, wiring }
    }

    /// Per-client delivered bytes and server table occupancy — read at
    /// `data_end`, the end of the data-transfer phase. Pure reads: taking
    /// the measurement perturbs nothing.
    fn measure(&self, spec: &ScenarioSpec) -> Measured {
        let flow_bytes: Vec<u64> = match &spec.protocol {
            ProtocolKind::Tcp(_) => self
                .wiring
                .clients
                .iter()
                .map(|&c| {
                    self.sim
                        .agent::<TcpHost>(c)
                        .expect("host")
                        .total_delivered()
                })
                .collect(),
            ProtocolKind::Dccp(_) => self
                .wiring
                .clients
                .iter()
                .map(|&c| self.sim.agent::<DccpHost>(c).expect("host").total_goodput())
                .collect(),
        };
        let server_sockets = match &spec.protocol {
            ProtocolKind::Tcp(_) => self
                .wiring
                .servers
                .iter()
                .map(|&s| {
                    let census = self.sim.agent::<TcpHost>(s).expect("host").census();
                    census.leaked() + census.count("TIME_WAIT")
                })
                .sum(),
            ProtocolKind::Dccp(_) => self
                .wiring
                .servers
                .iter()
                .map(|&s| {
                    let census = self.sim.agent::<DccpHost>(s).expect("host").census();
                    census.leaked() + census.count("TIMEWAIT")
                })
                .sum(),
        };
        Measured {
            flow_bytes,
            server_sockets,
        }
    }

    /// Schedules the end-of-test control actions at `data_end`: TCP client
    /// processes are killed mid-download; DCCP sending applications close.
    fn schedule_finish(&mut self, spec: &ScenarioSpec, data_end: SimTime) {
        match &spec.protocol {
            ProtocolKind::Tcp(_) => {
                for &client in &self.wiring.clients {
                    self.sim.schedule_control(data_end, client, |agent, ctx| {
                        let any: &mut dyn std::any::Any = agent;
                        any.downcast_mut::<TcpHost>()
                            .expect("tcp host")
                            .abort_all(ctx);
                    });
                }
            }
            ProtocolKind::Dccp(_) => {
                for &server in &self.wiring.servers {
                    self.sim.schedule_control(data_end, server, |agent, ctx| {
                        let any: &mut dyn std::any::Any = agent;
                        any.downcast_mut::<DccpHost>()
                            .expect("dccp host")
                            .close_all(ctx);
                    });
                }
            }
        }
    }

    /// The post-grace socket census and final report assembly.
    fn finish(&self, spec: &ScenarioSpec, measured: Measured) -> TestMetrics {
        let attacked_server = self.wiring.servers[0];
        let (leaked_sockets, leaked_close_wait, leaked_with_queue) = match &spec.protocol {
            ProtocolKind::Tcp(_) => {
                let census = self
                    .sim
                    .agent::<TcpHost>(attacked_server)
                    .expect("host")
                    .census();
                (census.leaked(), census.count("CLOSE_WAIT"), 0)
            }
            ProtocolKind::Dccp(_) => {
                let server = self.sim.agent::<DccpHost>(attacked_server).expect("host");
                let census = server.census();
                let with_queue = server
                    .conn_metrics()
                    .iter()
                    .filter(|m| {
                        m.queue_len > 0
                            && !matches!(m.state.name(), "CLOSED" | "LISTEN" | "TIMEWAIT")
                    })
                    .count();
                (census.leaked(), 0, with_queue)
            }
        };
        let leaked_total: usize = match &spec.protocol {
            ProtocolKind::Tcp(_) => self
                .wiring
                .servers
                .iter()
                .map(|&s| {
                    self.sim
                        .agent::<TcpHost>(s)
                        .expect("host")
                        .census()
                        .leaked()
                })
                .sum(),
            ProtocolKind::Dccp(_) => self
                .wiring
                .servers
                .iter()
                .map(|&s| {
                    self.sim
                        .agent::<DccpHost>(s)
                        .expect("host")
                        .census()
                        .leaked()
                })
                .sum(),
        };
        let proxy = self
            .sim
            .tap::<AttackProxy>(self.wiring.proxy_link)
            .expect("proxy")
            .report()
            .clone();
        TestMetrics {
            target_bytes: measured.flow_bytes.first().copied().unwrap_or(0),
            competing_bytes: measured.flow_bytes.iter().skip(1).sum(),
            leaked_sockets,
            leaked_close_wait,
            leaked_with_queue,
            truncated: self.sim.budget_exhausted(),
            sim_events: self.sim.events_processed(),
            flow_bytes: measured.flow_bytes,
            server_sockets: measured.server_sockets,
            leaked_total,
            proxy: Arc::new(proxy),
        }
    }
}

/// Cap on captured snapshots per plan: each one is a full deep copy of the
/// simulation, so memory bounds the count. Thinning is safe — a strategy
/// just forks from an earlier snapshot and replays a little more prefix.
const MAX_SNAPSHOTS: usize = 64;

/// How a strategy set should be executed against a snapshot plan.
enum ForkDecision {
    /// No rule's trigger key ever occurs in the baseline timeline: the
    /// attack run is event-for-event identical to the baseline (a rule can
    /// only fire once the run has already diverged, and the first
    /// divergence can only come from a rule firing), so the baseline
    /// metrics ARE the run's metrics.
    Elide,
    /// Not fork-eligible: `AtTime` rules arm a timer in the proxy's
    /// `on_start`, and `OnNthPacket` activation times are not in the
    /// timeline. Run from scratch.
    FromScratch,
    /// Forkable; the earliest simulated time any rule could first activate.
    ForkAt(SimTime),
}

/// A paused deep copy of the baseline simulation.
struct Snapshot {
    /// Pause time (one nanosecond before a baseline trigger activation).
    at: SimTime,
    /// The data-phase measurement, carried for snapshots taken at or
    /// after `data_end` — a fork resumed past that point can no longer
    /// observe it.
    measured: Option<Measured>,
    sim: Simulator,
}

struct SnapshotPlan {
    wiring: Wiring,
    timeline: StateTimeline,
    /// Ascending by `at`.
    snapshots: Vec<Snapshot>,
}

impl SnapshotPlan {
    fn decide(&self, rules: &[Strategy]) -> ForkDecision {
        let mut earliest: Option<SimTime> = None;
        for rule in rules {
            let t = match &rule.kind {
                StrategyKind::AtTime { .. } | StrategyKind::OnNthPacket { .. } => {
                    return ForkDecision::FromScratch;
                }
                StrategyKind::OnPacket {
                    endpoint,
                    state,
                    packet_type,
                    ..
                } => self
                    .timeline
                    .packets
                    .get(&(*endpoint, state.clone(), packet_type.clone()))
                    .map(|seen| seen.first_at),
                StrategyKind::OnState {
                    endpoint, state, ..
                } => self
                    .timeline
                    .states
                    .get(&(*endpoint, state.clone()))
                    .map(|seen| seen.first_at),
            };
            // A rule whose key is absent from the baseline can never be the
            // first to fire; it does not constrain the fork point.
            if let Some(t) = t {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
            }
        }
        match earliest {
            Some(t) => ForkDecision::ForkAt(t),
            None => ForkDecision::Elide,
        }
    }

    /// The latest snapshot strictly before `t` — strictly, so every event
    /// at the activation time itself replays inside the fork.
    fn latest_before(&self, t: SimTime) -> Option<&Snapshot> {
        self.snapshots.iter().rev().find(|s| s.at < t)
    }
}

/// Construction options for [`PlannedExecutor`], replacing the former
/// `new` / `with_options` constructor split with one explicit bundle.
///
/// `Default` gives the plain forking executor: snapshot-fork on, the
/// memoization family off, halt arming allowed (inert while `memoize` is
/// off), and the no-op observer.
#[derive(Clone)]
pub struct ExecutorOptions {
    /// Build the snapshot plan and fork strategies from baseline
    /// snapshots; off means every run executes from scratch.
    pub snapshot_fork: bool,
    /// Enables the memoization shortcuts: static no-op elision
    /// ([`provably_inert`](PlannedExecutor::provably_inert)), trigger-class
    /// keys ([`class_key`](PlannedExecutor::class_key)), and — subject to
    /// `halt_arming` — the runtime no-op halt. All of them substitute the
    /// baseline (or a classmate's) outcome for a run they prove
    /// equivalent, and all require the plan's determinism guard to have
    /// passed.
    pub memoize: bool,
    /// Permits the runtime no-op halt for all-one-shot-lie rule sets.
    /// Only consulted when `memoize` is on; turning it off isolates the
    /// static shortcuts from the mid-run halt.
    pub halt_arming: bool,
    /// Observability sink for phase spans, per-run execution counters and
    /// netsim event-loop stats. The default no-op observer reduces every
    /// hook to a constant-returning virtual call, issued at most a few
    /// times per *run* — never per event or per packet.
    pub observer: Arc<dyn Observer>,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            snapshot_fork: true,
            memoize: false,
            halt_arming: true,
            observer: observe::noop(),
        }
    }
}

impl std::fmt::Debug for ExecutorOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorOptions")
            .field("snapshot_fork", &self.snapshot_fork)
            .field("memoize", &self.memoize)
            .field("halt_arming", &self.halt_arming)
            .field("observer_enabled", &self.observer.enabled())
            .finish()
    }
}

/// How [`PlannedExecutor::run_with_info`] executed a run. The campaign
/// uses this to attribute memo markers (a halted run is journaled as
/// `"halt"`) without re-deriving the decision from counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunInfo {
    /// The proxy halted the simulation mid-run (every rule provably spent
    /// with zero wire effect); the baseline outcome was substituted.
    pub halted: bool,
    /// Answered with the baseline without simulating anything: no rule's
    /// trigger key occurs in the baseline timeline.
    pub elided: bool,
    /// Resumed from a baseline snapshot fork.
    pub forked: bool,
}

/// A scenario executor that runs the no-attack baseline once, snapshots it
/// at every state-transition boundary, and executes each strategy by
/// forking the latest snapshot strictly before the strategy's trigger
/// could first activate — the simulation analogue of the paper's executor
/// "initializing the virtual machines from snapshots" (§V-A), and the
/// reason its campaigns amortize the test prefix instead of replaying it.
///
/// Correctness rests on determinism: a forked run is bit-identical to a
/// from-scratch run of the same strategy because the prefix before the
/// trigger's first possible activation is bit-identical to the baseline.
/// The plan is self-guarding — while capturing snapshots it replays the
/// baseline with extra pauses and compares the final metrics against the
/// uninterrupted run; any difference disables forking entirely and every
/// strategy silently falls back to from-scratch execution.
pub struct PlannedExecutor {
    spec: ScenarioSpec,
    baseline: TestMetrics,
    plan: Option<SnapshotPlan>,
    /// See [`ExecutorOptions::memoize`].
    memoize: bool,
    /// See [`ExecutorOptions::halt_arming`].
    halt_arming: bool,
    observer: Arc<dyn Observer>,
    /// Runs ended early because every rule was proven a wire no-op — either
    /// statically elided or halted mid-run by the proxy.
    short_circuits: AtomicU64,
}

impl std::fmt::Debug for PlannedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedExecutor")
            .field("spec", &self.spec)
            .field("plan", &self.plan)
            .field("memoize", &self.memoize)
            .field("halt_arming", &self.halt_arming)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for SnapshotPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPlan")
            .field("snapshots", &self.snapshots.len())
            .finish_non_exhaustive()
    }
}

impl PlannedExecutor {
    /// Runs the baseline (recording the trigger timeline) and, when
    /// `options.snapshot_fork` is on, builds the snapshot plan. `memoize`
    /// without an intact plan (forking off, or the determinism guard
    /// tripped) is silently inert — every memo proof leans on the baseline
    /// being reproducible.
    pub fn new(spec: &ScenarioSpec, options: ExecutorOptions) -> PlannedExecutor {
        let ExecutorOptions {
            snapshot_fork,
            memoize,
            halt_arming,
            observer,
        } = options;
        let data_end = SimTime::from_secs(spec.data_secs);
        let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
        // Pass 1: the reference baseline, recording the trigger timeline.
        let baseline_span = observe::span(observer.as_ref(), "phase.baseline", end.as_nanos());
        let mut session = Session::build(spec, Vec::new(), true);
        session.sim.run_until(data_end);
        let measured = session.measure(spec);
        session.schedule_finish(spec, data_end);
        session.sim.run_until(end);
        let timeline = session
            .sim
            .tap::<AttackProxy>(session.wiring.proxy_link)
            .expect("proxy")
            .timeline()
            .cloned()
            .unwrap_or_default();
        let baseline = session.finish(spec, measured);
        record_sim_stats(observer.as_ref(), &session.sim);
        drop(baseline_span);
        let plan = if snapshot_fork {
            let _span = observe::span(observer.as_ref(), "phase.snapshotting", end.as_nanos());
            build_plan(spec, &baseline, timeline, observer.as_ref())
        } else {
            None
        };
        PlannedExecutor {
            spec: spec.clone(),
            baseline,
            plan,
            memoize,
            halt_arming,
            observer,
            short_circuits: AtomicU64::new(0),
        }
    }

    /// The scenario this executor runs.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The no-attack baseline metrics.
    pub fn baseline(&self) -> &TestMetrics {
        &self.baseline
    }

    /// Number of captured fork snapshots (0 means every strategy runs from
    /// scratch).
    pub fn snapshot_count(&self) -> usize {
        self.plan.as_ref().map_or(0, |p| p.snapshots.len())
    }

    /// Whether the snapshot plan is intact — forking is on and the
    /// determinism guard reproduced the baseline bit for bit. Every
    /// memoization proof is conditioned on this.
    pub fn plan_active(&self) -> bool {
        self.plan.is_some()
    }

    /// Runs this executor short-circuited so far: statically elided
    /// provably-inert strategies are not counted here (the campaign counts
    /// those at its level); this counts runs the proxy halted mid-flight.
    pub fn short_circuits(&self) -> u64 {
        self.short_circuits.load(Ordering::Relaxed)
    }

    /// The header format spec of the protocol under test.
    fn header_spec(&self) -> Arc<FormatSpec> {
        match &self.spec.protocol {
            ProtocolKind::Tcp(_) => TcpAdapter.spec(),
            ProtocolKind::Dccp(_) => DccpAdapter.spec(),
        }
    }

    /// Statically proves a strategy is a wire no-op: an `OnPacket` lie
    /// whose mutation writes back the value the targeted field held in
    /// *every* baseline packet matching the trigger triple. Because the
    /// no-op lie forwards bytes untouched and counts nothing, the run
    /// replays the (reproducible) baseline by induction packet-by-packet —
    /// the constancy observed in the baseline therefore holds in the
    /// attacked run too, and the proof closes. Such strategies can be
    /// answered with the baseline outcome without executing anything.
    pub fn provably_inert(&self, strategy: &Strategy) -> bool {
        if !self.memoize {
            return false;
        }
        let Some(plan) = &self.plan else {
            return false;
        };
        let StrategyKind::OnPacket {
            endpoint,
            state,
            packet_type,
            attack: BasicAttack::Lie { field, mutation },
        } = &strategy.kind
        else {
            return false;
        };
        let Some(seen) =
            plan.timeline
                .packets
                .get(&(*endpoint, state.clone(), packet_type.clone()))
        else {
            // Key absent from the baseline: `decide` elides it already.
            return false;
        };
        let spec = self.header_spec();
        let Some(fi) = spec.fields().iter().position(|f| f.name() == *field) else {
            // Unknown field: every application errors out, which the proxy
            // treats as a wire no-op.
            return true;
        };
        let Some((_, fref)) = spec.field_at(fi) else {
            return false;
        };
        match seen.fields.get(fi) {
            Some(Some(v)) => lie_is_inert(*mutation, *v, fref.max_value()),
            _ => false,
        }
    }

    /// A memo-class key for trigger-equivalent `OnState` strategies: two
    /// strategies with the same key start the same canonical injection at
    /// the same first-visibility instant of the same baseline run, and an
    /// `OnState` rule is never consulted again after it starts — so their
    /// runs are identical and one execution serves the whole class.
    pub fn class_key(&self, strategy: &Strategy) -> Option<String> {
        if !self.memoize {
            return None;
        }
        let plan = self.plan.as_ref()?;
        let StrategyKind::OnState {
            endpoint,
            state,
            attack,
        } = &strategy.kind
        else {
            return None;
        };
        let seen = plan.timeline.states.get(&(*endpoint, state.clone()))?;
        Some(format!(
            "{}@{}:{}",
            seen.first_at.as_nanos(),
            seen.first_index,
            attack.to_json().to_string_compact()
        ))
    }

    /// Whether every rule is a one-shot lie eligible for the runtime no-op
    /// halt: `OnNthPacket` + `Lie` can have at most one wire effect, and if
    /// that effect turns out to be a byte-identical no-op the rest of the
    /// run is the baseline.
    fn haltable(rules: &[Strategy]) -> bool {
        !rules.is_empty()
            && rules.iter().all(|rule| {
                matches!(
                    &rule.kind,
                    StrategyKind::OnNthPacket {
                        attack: BasicAttack::Lie { .. },
                        ..
                    }
                )
            })
    }

    /// From-scratch run with the proxy's no-op halt armed: the moment every
    /// rule is spent without a wire effect, the simulation stops and the
    /// baseline outcome is substituted (it is what the full run would have
    /// produced — the determinism guard vouches for the baseline, and the
    /// spent rules can never act again). The second return says whether
    /// the halt actually fired.
    fn run_halt_armed(&self, rules: Vec<Strategy>) -> (TestMetrics, bool) {
        let spec = &self.spec;
        let mut session = Session::build(spec, rules, false);
        session
            .sim
            .tap_mut::<AttackProxy>(session.wiring.proxy_link)
            .expect("proxy")
            .arm_noop_halt();
        let data_end = SimTime::from_secs(spec.data_secs);
        let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
        session.sim.run_until(data_end);
        if session.sim.halted() {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            record_sim_stats(self.observer.as_ref(), &session.sim);
            return (self.baseline.clone(), true);
        }
        let measured = session.measure(spec);
        session.schedule_finish(spec, data_end);
        session.sim.run_until(end);
        if session.sim.halted() {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            record_sim_stats(self.observer.as_ref(), &session.sim);
            return (self.baseline.clone(), true);
        }
        let metrics = session.finish(spec, measured);
        record_sim_stats(self.observer.as_ref(), &session.sim);
        (metrics, false)
    }

    /// Runs one strategy (or the baseline when `None`).
    pub fn run(&self, strategy: Option<Strategy>) -> TestMetrics {
        self.run_combination(strategy.into_iter().collect())
    }

    /// Like [`run`](PlannedExecutor::run), also reporting how the run was
    /// executed.
    pub fn run_with_info(&self, strategy: Option<Strategy>) -> (TestMetrics, RunInfo) {
        self.run_combination_with_info(strategy.into_iter().collect())
    }

    /// Runs a combination strategy, forking a baseline snapshot when every
    /// rule is fork-eligible.
    pub fn run_combination(&self, rules: Vec<Strategy>) -> TestMetrics {
        self.run_combination_with_info(rules).0
    }

    /// Like [`run_combination`](PlannedExecutor::run_combination), also
    /// reporting how the run was executed.
    pub fn run_combination_with_info(&self, rules: Vec<Strategy>) -> (TestMetrics, RunInfo) {
        let obs = self.observer.as_ref();
        let Some(plan) = &self.plan else {
            obs.counter_add("exec.runs.from_scratch", 1);
            return (run_full(&self.spec, rules, obs), RunInfo::default());
        };
        match plan.decide(&rules) {
            ForkDecision::Elide => {
                obs.counter_add("exec.runs.elided", 1);
                (
                    self.baseline.clone(),
                    RunInfo {
                        elided: true,
                        ..RunInfo::default()
                    },
                )
            }
            ForkDecision::FromScratch => {
                if self.memoize && self.halt_arming && PlannedExecutor::haltable(&rules) {
                    let (metrics, halted) = self.run_halt_armed(rules);
                    obs.counter_add(
                        if halted {
                            "exec.runs.halted"
                        } else {
                            "exec.runs.from_scratch"
                        },
                        1,
                    );
                    (
                        metrics,
                        RunInfo {
                            halted,
                            ..RunInfo::default()
                        },
                    )
                } else {
                    obs.counter_add("exec.runs.from_scratch", 1);
                    (run_full(&self.spec, rules, obs), RunInfo::default())
                }
            }
            ForkDecision::ForkAt(t) => {
                let forked = plan
                    .latest_before(t)
                    .and_then(|snap| snap.sim.fork().map(|sim| (snap, sim)));
                match forked {
                    Some((snap, sim)) => {
                        obs.counter_add("exec.runs.forked", 1);
                        obs.counter_add("netsim.forks", 1);
                        if obs.enabled() {
                            obs.counter_add(
                                "netsim.fork_clone_bytes",
                                snap.sim.approx_clone_bytes(),
                            );
                        }
                        (
                            self.resume(plan, snap, sim, rules),
                            RunInfo {
                                forked: true,
                                ..RunInfo::default()
                            },
                        )
                    }
                    // No snapshot precedes the trigger (or an agent turned
                    // out not to be forkable): run the whole thing.
                    None => {
                        obs.counter_add("exec.runs.from_scratch", 1);
                        (run_full(&self.spec, rules, obs), RunInfo::default())
                    }
                }
            }
        }
    }

    /// Continues a forked snapshot to the end of the scenario with the
    /// strategy's rules armed.
    fn resume(
        &self,
        plan: &SnapshotPlan,
        snap: &Snapshot,
        sim: Simulator,
        rules: Vec<Strategy>,
    ) -> TestMetrics {
        let spec = &self.spec;
        let data_end = SimTime::from_secs(spec.data_secs);
        let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
        let mut session = Session {
            sim,
            wiring: plan.wiring.clone(),
        };
        session
            .sim
            .tap_mut::<AttackProxy>(plan.wiring.proxy_link)
            .expect("proxy")
            .install_rules(rules);
        let measured = match &snap.measured {
            // The fork point is past data_end, so the data phase was
            // attack-free and its measurement is the carried baseline one.
            Some(m) => {
                session.sim.run_until(end);
                m.clone()
            }
            None => {
                session.sim.run_until(data_end);
                let m = session.measure(spec);
                session.schedule_finish(spec, data_end);
                session.sim.run_until(end);
                m
            }
        };
        let metrics = session.finish(spec, measured);
        record_sim_stats(self.observer.as_ref(), &session.sim);
        metrics
    }
}

/// Pass 2 of plan construction: replay the baseline, pausing one simulated
/// nanosecond before each first trigger activation observed in pass 1 and
/// forking a snapshot there. Returns `None` (disabling forked execution)
/// if anything in the simulation refuses to fork or the paused replay
/// fails to reproduce the reference baseline bit for bit.
fn build_plan(
    spec: &ScenarioSpec,
    baseline: &TestMetrics,
    timeline: StateTimeline,
    observer: &dyn Observer,
) -> Option<SnapshotPlan> {
    let data_end = SimTime::from_secs(spec.data_secs);
    let end = SimTime::from_secs(spec.data_secs + spec.grace_secs);
    let mut times: Vec<SimTime> = timeline
        .states
        .values()
        .map(|seen| seen.first_at)
        .chain(timeline.packets.values().map(|seen| seen.first_at))
        .filter(|t| t.as_nanos() > 0 && *t < end)
        .map(|t| SimTime::from_nanos(t.as_nanos() - 1))
        .collect();
    times.sort_unstable();
    times.dedup();
    if times.len() > MAX_SNAPSHOTS {
        let step = times.len().div_ceil(MAX_SNAPSHOTS);
        times = times.into_iter().step_by(step).collect();
    }

    let mut session = Session::build(spec, Vec::new(), false);
    let mut snapshots = Vec::with_capacity(times.len());
    let mut measured: Option<Measured> = None;
    for t in times {
        if measured.is_none() && t >= data_end {
            session.sim.run_until(data_end);
            measured = Some(session.measure(spec));
            session.schedule_finish(spec, data_end);
        }
        session.sim.run_until(t);
        let sim = session.sim.fork()?;
        observer.counter_add("netsim.snapshot_forks", 1);
        if observer.enabled() {
            observer.counter_add(
                "netsim.snapshot_clone_bytes",
                session.sim.approx_clone_bytes(),
            );
        }
        snapshots.push(Snapshot {
            at: t,
            measured: measured.clone(),
            sim,
        });
    }
    if measured.is_none() {
        session.sim.run_until(data_end);
        measured = Some(session.measure(spec));
        session.schedule_finish(spec, data_end);
    }
    session.sim.run_until(end);
    let replay = session.finish(spec, measured.expect("measured above"));
    record_sim_stats(observer, &session.sim);
    if replay != *baseline {
        return None;
    }
    Some(SnapshotPlan {
        wiring: session.wiring,
        timeline,
        snapshots,
    })
}

/// Whether applying `mutation` to a field currently holding `value` (with
/// representable maximum `max`) writes back `value` — i.e. the lie cannot
/// change any wire byte. Mirrors [`FieldMutation::apply`] exactly, including
/// its error cases: a mutation that fails to apply (out-of-range `Set`,
/// division by zero) is forwarded unmodified by the proxy, so it is inert
/// too. `Random` consumes entropy and is never statically classifiable.
fn lie_is_inert(mutation: FieldMutation, value: u64, max: u64) -> bool {
    match mutation {
        FieldMutation::Set(x) => x > max || x == value,
        FieldMutation::Min => value == 0,
        FieldMutation::Max => value == max,
        FieldMutation::Add(k) => value.wrapping_add(k) & max == value,
        FieldMutation::Sub(k) => value.wrapping_sub(k) & max == value,
        FieldMutation::Mul(k) => value.wrapping_mul(k) & max == value,
        FieldMutation::Div(k) => k == 0 || value / k == value,
        // `Random` (and any future variant) consumes RNG state or has
        // unknown semantics: never provably inert.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_baseline_is_clean_and_fair() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let m = Executor::run(&spec, None);
        assert!(m.target_bytes > 1_000_000, "{m:?}");
        assert!(m.competing_bytes > 1_000_000);
        let ratio = m.target_bytes.max(m.competing_bytes) as f64
            / m.target_bytes.min(m.competing_bytes) as f64;
        assert!(ratio < 2.0, "baseline unfair: {ratio}");
        assert_eq!(m.leaked_sockets, 0, "{m:?}");
        assert!(m.proxy.packets_seen > 500);
    }

    #[test]
    fn dccp_baseline_is_clean_and_fair() {
        let spec = ScenarioSpec::quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
        let m = Executor::run(&spec, None);
        assert!(m.target_bytes > 1_000_000, "{m:?}");
        let ratio = m.target_bytes.max(m.competing_bytes) as f64
            / m.target_bytes.min(m.competing_bytes) as f64;
        assert!(ratio < 2.0, "baseline unfair: {ratio}");
        assert_eq!(m.leaked_sockets, 0, "{m:?}");
    }

    #[test]
    fn identical_seeds_identical_metrics() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_0_0()));
        let a = Executor::run(&spec, None);
        let b = Executor::run(&spec, None);
        assert_eq!(a, b, "executor must be deterministic");
    }

    #[test]
    fn budgeted_run_truncates_deterministically() {
        let spec =
            ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13())).with_event_budget(20_000);
        let a = Executor::run(&spec, None);
        assert!(a.truncated, "20k events cannot finish a quick scenario");
        assert_eq!(
            a,
            Executor::run(&spec, None),
            "truncation must be deterministic"
        );
        // A generous budget does not disturb the run at all.
        let free = ScenarioSpec {
            event_budget: None,
            ..spec.clone()
        };
        let capped = ScenarioSpec {
            event_budget: Some(u64::MAX),
            ..spec
        };
        assert_eq!(Executor::run(&free, None), Executor::run(&capped, None));
    }

    #[test]
    fn impaired_scenario_is_deterministic_and_still_moves_data() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
            .with_impairment(Impairment::preset("lossy").expect("built-in preset"));
        let a = Executor::run(&spec, None);
        let b = Executor::run(&spec, None);
        assert_eq!(a, b, "impairment draws must be seed-deterministic");
        assert!(
            a.target_bytes > 500_000,
            "a lossy bottleneck degrades but must not kill the transfer: {a:?}"
        );
    }

    #[test]
    fn different_seed_changes_details_not_shape() {
        let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
        let a = Executor::run(&spec, None);
        let spec2 = ScenarioSpec { seed: 99, ..spec };
        let b = Executor::run(&spec2, None);
        assert!(b.target_bytes > 1_000_000);
        // Shape holds: both clean, same order of magnitude.
        assert_eq!(b.leaked_sockets, 0);
        let ratio = a.target_bytes as f64 / b.target_bytes as f64;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "{} vs {}",
            a.target_bytes,
            b.target_bytes
        );
    }

    #[test]
    fn presets_are_thin_wrappers_over_the_builder() {
        let p = || ProtocolKind::Tcp(Profile::linux_3_13());
        assert_eq!(
            ScenarioSpec::evaluation(p()),
            ScenarioSpec::builder(p()).build().unwrap()
        );
        assert_eq!(
            ScenarioSpec::quick(p()),
            ScenarioSpec::builder(p()).quick().build().unwrap()
        );
    }

    #[test]
    fn builder_rejects_degenerate_settings() {
        let b = || ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_13())).quick();
        let attacked = |count| FlowGroup {
            role: FlowRole::Attacked,
            count,
        };
        let detail = |r: Result<ScenarioSpec, ScenarioError>| match r {
            Err(ScenarioError::InvalidConfig { detail }) => detail,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        assert!(detail(b().data_secs(0).build()).contains("data phase"));
        assert!(detail(b().target_connections(0).build()).contains("target connection"));
        let good = *ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13())).bottleneck();
        let dead = LinkSpec {
            bandwidth_bps: 0,
            ..good
        };
        assert!(detail(b().bottleneck(dead).build()).contains("bandwidth"));
        let clogged = LinkSpec {
            queue_packets: 0,
            ..good
        };
        assert!(detail(b().access(clogged).build()).contains("queue"));
        // Topology/flow cross-requirements.
        assert!(detail(b().flows(vec![attacked(1)]).build()).contains("generated topology"));
        assert!(detail(b().topology(TopologyKind::Star, 64).build()).contains("flow mix"));
        assert!(
            detail(b().topology(TopologyKind::Star, 64).flows(vec![]).build())
                .contains("at least one group")
        );
        assert!(detail(
            b().topology(TopologyKind::Star, 64)
                .flows(vec![attacked(0)])
                .build()
        )
        .contains("must be positive"));
        assert!(detail(
            b().topology(TopologyKind::Star, 64)
                .flows(vec![FlowGroup {
                    role: FlowRole::Bulk,
                    count: 1
                }])
                .build()
        )
        .contains("exactly one attacked"));
        assert!(detail(
            b().topology(TopologyKind::Star, 64)
                .flows(vec![attacked(1), attacked(2)])
                .build()
        )
        .contains("more than one attacked"));
        // The realizability dry-run surfaces the generator's own errors.
        assert!(detail(
            b().topology(TopologyKind::Star, 2)
                .flows(vec![attacked(1)])
                .build()
        )
        .contains("at least 4 hosts"));
        // Display carries the InvalidConfig shape.
        let err = b().data_secs(0).build().unwrap_err();
        assert!(err.to_string().starts_with("invalid scenario:"), "{err}");
    }

    #[test]
    fn classic_dumbbell_is_bit_identical_through_the_builder() {
        // The pre-redesign representation, constructed literally — the
        // builder must reproduce it field for field, and the executor must
        // produce bit-identical metrics from either.
        let legacy = ScenarioSpec {
            protocol: ProtocolKind::Tcp(Profile::linux_3_0_0()),
            topology: TopologySpec::Dumbbell(DumbbellSpec::evaluation_default()),
            flows: None,
            data_secs: 6,
            grace_secs: 35,
            seed: 7,
            target_connections: 1,
            event_budget: None,
        };
        let built = ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_0_0()))
            .quick()
            .build()
            .unwrap();
        assert_eq!(legacy, built);
        assert_eq!(Executor::run(&legacy, None), Executor::run(&built, None));
    }

    #[test]
    fn multiflow_run_is_deterministic_and_reports_per_flow_bytes() {
        let spec = ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_13()))
            .data_secs(4)
            .grace_secs(10)
            .topology(TopologyKind::Star, 12)
            .flows(vec![
                FlowGroup {
                    role: FlowRole::Attacked,
                    count: 2,
                },
                FlowGroup {
                    role: FlowRole::Bulk,
                    count: 2,
                },
                FlowGroup {
                    role: FlowRole::RequestResponse,
                    count: 2,
                },
                FlowGroup {
                    role: FlowRole::SynPressure,
                    count: 2,
                },
            ])
            .build()
            .unwrap();
        assert_eq!(
            spec.target_connections(),
            2,
            "attacked group sets the count"
        );
        let a = Executor::run(&spec, None);
        let b = Executor::run(&spec, None);
        assert_eq!(a, b, "multi-flow executor must be deterministic");
        // 12 hosts split 1 server / 11 clients; flow_bytes is per client.
        assert_eq!(a.flow_bytes.len(), 11, "{:?}", a.flow_bytes);
        assert!(a.flow_bytes[0] > 0, "attacked client moved no data");
        let total: u64 = a.flow_bytes.iter().sum();
        assert!(total > a.flow_bytes[0], "background flows moved no data");
        assert!(a.jain_index() > 0.0 && a.jain_index() <= 1.0);
        assert_eq!(a.leaked_total, 0, "clean run must not leak");
    }

    #[test]
    fn reseeding_preserves_the_generated_layout() {
        let build = |seed| {
            ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_13()))
                .quick()
                .seed(seed)
                .topology(TopologyKind::Tree, 32)
                .flows(vec![FlowGroup {
                    role: FlowRole::Attacked,
                    count: 1,
                }])
                .build()
                .unwrap()
        };
        let spec = build(5);
        let reseeded = spec.clone().with_seed(99);
        // The layout seed was bound at build time: reseeding varies only
        // traffic, so ensemble members all measure the same network.
        assert_eq!(spec.topology(), reseeded.topology());
        assert_eq!(reseeded.seed(), 99);
        // A different build-time seed genuinely moves the hosts.
        assert_ne!(spec.topology(), build(6).topology());
    }
}
