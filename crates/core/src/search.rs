//! The §VI-C search-space comparison: state-based strategy generation
//! versus the two baseline attack-injection models.
//!
//! The paper quantifies why protocol-state-aware injection matters by
//! costing out the alternatives for a one-minute TCP test at 100 Mbit/s:
//! *time-interval-based* injection (a strategy set at every 5 µs slot,
//! 720 million strategies, 548 years at the paper's parallelism) and
//! *send-packet-based* injection (a strategy set per transmitted packet,
//! 689 thousand strategies, 191 days), against roughly 5–6 thousand
//! state-based strategies (about 60 hours). This module reproduces that
//! arithmetic from first principles so the bench can regenerate the
//! comparison with both the paper's parameters and this reproduction's
//! measured ones.

use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, ProxyReport, SeqChoice, Strategy,
    StrategyKind,
};

use crate::detect::detect;
use crate::scenario::{Executor, ScenarioSpec};
use crate::strategen::GenerationParams;

/// Cost estimate for one search model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchCost {
    /// Number of strategies the model must test.
    pub strategies: u64,
    /// Serial compute, in hours, at `minutes_per_test` per strategy.
    pub serial_hours: f64,
    /// Wall-clock days at the paper's parallelism (5 concurrent executors).
    pub parallel_days: f64,
}

impl SearchCost {
    fn from_strategies(strategies: u64, minutes_per_test: f64, parallelism: u64) -> SearchCost {
        let serial_hours = strategies as f64 * minutes_per_test / 60.0;
        SearchCost {
            strategies,
            serial_hours,
            parallel_days: serial_hours / parallelism as f64 / 24.0,
        }
    }
}

/// Parameters shared by the §VI-C estimates. `paper()` reproduces the
/// published arithmetic; `measured(...)` plugs in this reproduction's
/// observed values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpaceParams {
    /// Test connection length in seconds (paper: 60).
    pub test_secs: u64,
    /// Time-slot width for interval-based injection, in microseconds
    /// (paper: 5 µs — one minimum-size TCP packet at 100 Mbit/s).
    pub slot_micros: u64,
    /// Strategies per injection point for interval-based injection
    /// (paper: ~60, from 8 malicious actions over 13 header fields).
    pub strategies_per_slot: u64,
    /// Packets sent in a no-attack test (paper: ~13,000).
    pub packets_per_test: u64,
    /// Packet-manipulation strategies per packet (paper: ~53).
    pub strategies_per_packet: u64,
    /// Strategies the state-based search actually generated.
    pub state_based_strategies: u64,
    /// Minutes to execute one strategy (paper: 2).
    pub minutes_per_test: f64,
    /// Concurrent executors (paper: 5).
    pub parallelism: u64,
}

impl SearchSpaceParams {
    /// The paper's published parameters.
    pub fn paper() -> SearchSpaceParams {
        SearchSpaceParams {
            test_secs: 60,
            slot_micros: 5,
            strategies_per_slot: 60,
            packets_per_test: 13_000,
            strategies_per_packet: 53,
            state_based_strategies: 5_994,
            minutes_per_test: 2.0,
            parallelism: 5,
        }
    }

    /// Parameters measured from one of this reproduction's campaigns.
    pub fn measured(
        packets_per_test: u64,
        strategies_per_packet: u64,
        state_based_strategies: u64,
        test_secs: u64,
    ) -> SearchSpaceParams {
        SearchSpaceParams {
            test_secs,
            packets_per_test,
            strategies_per_packet,
            state_based_strategies,
            // Keep the paper's per-slot figure and cost model so the
            // comparison isolates the injection model, not the testbed.
            ..SearchSpaceParams::paper()
        }
    }

    /// Cost of the time-interval-based injection model.
    pub fn time_interval_cost(&self) -> SearchCost {
        let slots = self.test_secs * 1_000_000 / self.slot_micros.max(1);
        SearchCost::from_strategies(
            slots * self.strategies_per_slot,
            self.minutes_per_test,
            self.parallelism,
        )
    }

    /// Cost of the send-packet-based injection model.
    pub fn send_packet_cost(&self) -> SearchCost {
        SearchCost::from_strategies(
            self.packets_per_test * self.strategies_per_packet,
            self.minutes_per_test,
            self.parallelism,
        )
    }

    /// Cost of the protocol-state-aware model (SNAKE).
    pub fn state_based_cost(&self) -> SearchCost {
        SearchCost::from_strategies(
            self.state_based_strategies,
            self.minutes_per_test,
            self.parallelism,
        )
    }

    /// Renders the three-model comparison as a small table.
    pub fn render(&self) -> String {
        let t = self.time_interval_cost();
        let p = self.send_packet_cost();
        let s = self.state_based_cost();
        let mut out = String::new();
        out.push_str(
            "| Injection model      |     Strategies | Serial compute (h) | Wall clock (days, 5 executors) |\n",
        );
        out.push_str(
            "|----------------------|----------------|--------------------|--------------------------------|\n",
        );
        for (name, c) in [
            ("time-interval-based", t),
            ("send-packet-based", p),
            ("state-based (SNAKE)", s),
        ] {
            out.push_str(&format!(
                "| {:<20} | {:>14} | {:>18.1} | {:>30.2} |\n",
                name, c.strategies, c.serial_hours, c.parallel_days
            ));
        }
        out
    }
}

/// One row of the empirical injection-model head-to-head.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalResult {
    /// Model name.
    pub model: &'static str,
    /// Strategies actually executed (an equal-budget sample per model).
    pub tested: usize,
    /// How many were flagged by the detector.
    pub flagged: usize,
    /// The size of the model's full strategy space for this scenario
    /// (what exhausting the model would cost).
    pub full_space: u64,
}

impl EmpiricalResult {
    /// Flagged strategies per strategy tested.
    pub fn yield_rate(&self) -> f64 {
        self.flagged as f64 / self.tested.max(1) as f64
    }
}

/// Samples `budget` strategies from the send-packet-based model (§IV-B):
/// one basic attack applied to the n-th packet, with n spread evenly over
/// the packets a baseline test sends.
pub fn sample_send_packet_strategies(
    baseline: &ProxyReport,
    params: &GenerationParams,
    budget: usize,
) -> Vec<Strategy> {
    let packets = baseline.packets_seen.max(1);
    let mut attacks: Vec<BasicAttack> = Vec::new();
    for &p in &params.drop_percents {
        attacks.push(BasicAttack::Drop { percent: p });
    }
    for &c in &params.duplicate_copies {
        attacks.push(BasicAttack::Duplicate { copies: c });
    }
    for &d in &params.delay_secs {
        attacks.push(BasicAttack::Delay { secs: d });
    }
    let mut out = Vec::new();
    let slots = budget.max(1) as u64;
    for i in 0..slots {
        // Even coverage of the packet index space, alternating endpoints.
        let n = 1 + i * packets / slots;
        let endpoint = if i % 2 == 0 {
            Endpoint::Client
        } else {
            Endpoint::Server
        };
        let attack = attacks[(i as usize) % attacks.len()].clone();
        out.push(Strategy {
            id: 1_000_000 + i,
            kind: StrategyKind::OnNthPacket {
                endpoint,
                n,
                attack,
            },
        });
    }
    out
}

/// Samples `budget` strategies from the time-interval-based model (§IV-B):
/// an injection launched at a fixed offset, with offsets spread evenly
/// over the test and blind sequence choices.
pub fn sample_time_interval_strategies(test_secs: u64, budget: usize) -> Vec<Strategy> {
    let mut out = Vec::new();
    let slots = budget.max(1);
    let seqs = [SeqChoice::Zero, SeqChoice::Random, SeqChoice::Max];
    let types = ["RST", "SYN", "ACK", "DATA"];
    for i in 0..slots {
        let at_secs = (i as f64 + 0.5) * test_secs as f64 / slots as f64;
        out.push(Strategy {
            id: 2_000_000 + i as u64,
            kind: StrategyKind::AtTime {
                at_secs,
                attack: InjectionAttack::Inject {
                    packet_type: types[i % types.len()].into(),
                    seq: seqs[i % seqs.len()],
                    direction: if i % 2 == 0 {
                        InjectDirection::ToClient
                    } else {
                        InjectDirection::ToServer
                    },
                    repeat: 3,
                },
            },
        });
    }
    out
}

/// Runs the empirical head-to-head: each injection model gets the same
/// execution budget; the state-based model's strategies come from the
/// caller (the normal generator, truncated). The result shows yield —
/// flagged strategies per test — which is the §VI-C claim measured rather
/// than estimated.
pub fn empirical_head_to_head(
    spec: &ScenarioSpec,
    state_based: Vec<Strategy>,
    budget: usize,
    params: &GenerationParams,
    threshold: f64,
) -> Vec<EmpiricalResult> {
    let baseline = Executor::run(spec, None);
    let pp = SearchSpaceParams::paper();

    let run_set = |model: &'static str, strategies: Vec<Strategy>, full_space: u64| {
        let tested = strategies.len();
        let flagged = strategies
            .into_iter()
            .filter(|s| {
                let m = Executor::run(spec, Some(s.clone()));
                detect(&baseline, &m, threshold).flagged()
            })
            .count();
        EmpiricalResult {
            model,
            tested,
            flagged,
            full_space,
        }
    };

    let state: Vec<Strategy> = state_based.into_iter().take(budget).collect();
    let state_space = state.len() as u64;
    let send = sample_send_packet_strategies(&baseline.proxy, params, budget);
    let send_space = baseline.proxy.packets_seen * pp.strategies_per_packet;
    let time = sample_time_interval_strategies(spec.data_secs, budget);
    let time_space = spec.data_secs * 1_000_000 / pp.slot_micros * pp.strategies_per_slot;

    vec![
        run_set("state-based (SNAKE)", state, state_space),
        run_set("send-packet-based", send, send_space),
        run_set("time-interval-based", time, time_space),
    ]
}

/// Renders the empirical head-to-head as a table.
pub fn render_empirical(results: &[EmpiricalResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Injection model      | Tested | Flagged | Yield  |     Full space |
",
    );
    out.push_str(
        "|----------------------|--------|---------|--------|----------------|
",
    );
    for r in results {
        out.push_str(&format!(
            "| {:<20} | {:>6} | {:>7} | {:>5.1}% | {:>14} |
",
            r.model,
            r.tested,
            r.flagged,
            r.yield_rate() * 100.0,
            r.full_space
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_time_interval_matches_published_figures() {
        let p = SearchSpaceParams::paper();
        let c = p.time_interval_cost();
        // "12 million possible injection points in a 1 minute test" × 60.
        assert_eq!(c.strategies, 720_000_000);
        // "24 million hours of computation".
        assert!((c.serial_hours - 24_000_000.0).abs() < 1_000.0);
        // "548 years" at equivalent parallelism.
        let years = c.parallel_days / 365.25;
        assert!((years - 548.0).abs() < 2.0, "got {years}");
    }

    #[test]
    fn paper_send_packet_matches_published_figures() {
        let p = SearchSpaceParams::paper();
        let c = p.send_packet_cost();
        // "a total of 689,000 strategies".
        assert_eq!(c.strategies, 689_000);
        // "22,967 hours of computation".
        assert!((c.serial_hours - 22_966.7).abs() < 1.0);
        // "about 191 days".
        assert!(
            (c.parallel_days - 191.0).abs() < 1.0,
            "got {}",
            c.parallel_days
        );
    }

    #[test]
    fn paper_state_based_matches_published_figures() {
        let p = SearchSpaceParams::paper();
        let c = p.state_based_cost();
        // 5,994 strategies ≈ 200 serial hours... the paper reports "about
        // 60 hours per tested implementation" wall-clock with 5 executors
        // and "300 hours of computation" serially (they include re-tests
        // and overheads; the pure product is the right order).
        assert_eq!(c.strategies, 5_994);
        assert!(c.serial_hours > 100.0 && c.serial_hours < 300.0);
    }

    #[test]
    fn ordering_always_holds() {
        // The §VI-C headline: state < send-packet ≪ time-interval.
        for params in [
            SearchSpaceParams::paper(),
            SearchSpaceParams::measured(20_000, 94, 2_500, 20),
        ] {
            let t = params.time_interval_cost().strategies;
            let p = params.send_packet_cost().strategies;
            let s = params.state_based_cost().strategies;
            assert!(s < p, "{s} < {p}");
            assert!(p < t / 100, "{p} ≪ {t}");
        }
    }

    #[test]
    fn render_contains_all_models() {
        let table = SearchSpaceParams::paper().render();
        assert!(table.contains("time-interval-based"));
        assert!(table.contains("send-packet-based"));
        assert!(table.contains("state-based (SNAKE)"));
        assert!(table.contains("720000000"));
    }

    #[test]
    fn send_packet_sample_spreads_over_packet_space() {
        let report = ProxyReport {
            packets_seen: 10_000,
            ..Default::default()
        };
        let sample = sample_send_packet_strategies(&report, &GenerationParams::default(), 20);
        assert_eq!(sample.len(), 20);
        let ns: Vec<u64> = sample
            .iter()
            .map(|s| match &s.kind {
                StrategyKind::OnNthPacket { n, .. } => *n,
                _ => panic!("wrong kind"),
            })
            .collect();
        assert!(ns[0] < 1_000);
        assert!(
            *ns.last().unwrap() > 9_000,
            "spread covers the tail: {ns:?}"
        );
    }

    #[test]
    fn time_interval_sample_spreads_over_test() {
        let sample = sample_time_interval_strategies(20, 10);
        assert_eq!(sample.len(), 10);
        let at: Vec<f64> = sample
            .iter()
            .map(|s| match &s.kind {
                StrategyKind::AtTime { at_secs, .. } => *at_secs,
                _ => panic!("wrong kind"),
            })
            .collect();
        assert!(at[0] < 2.5);
        assert!(*at.last().unwrap() > 17.5);
        assert!(at.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empirical_render_has_all_rows() {
        let rows = vec![
            EmpiricalResult {
                model: "state-based (SNAKE)",
                tested: 10,
                flagged: 3,
                full_space: 2_000,
            },
            EmpiricalResult {
                model: "send-packet-based",
                tested: 10,
                flagged: 1,
                full_space: 600_000,
            },
        ];
        let t = render_empirical(&rows);
        assert!(t.contains("SNAKE"));
        assert!(t.contains("30.0%"));
    }
}
