//! Worker-side journal *segments*: the crash-tolerance layer under the
//! sharded controller/executor split.
//!
//! The campaign journal (`journal.rs`) records *admitted* outcomes, in
//! strategy-index order, on the controller. That protects against worker
//! crashes but not against the controller itself dying: every outcome a
//! worker had already evaluated but the controller had not yet admitted
//! was in flight on the wire and is lost, so a naive resume re-evaluates
//! whole ranges.
//!
//! Segments close that gap. When a sharded campaign has a journal, each
//! worker *also* appends every evaluated outcome — with its index and its
//! drained counter deltas — to a private segment file next to the
//! journal, flushed line by line. A controller crash then resumes by
//! merging the segments: any outcome present in a segment but absent
//! from the journal is *prefetched* and replayed through the normal
//! admission path (memo ledger, journal append, counter fold) in exact
//! strategy-index order, so the resumed run admits byte-identical
//! results without re-evaluating anything a worker already finished.
//!
//! The file format reuses the journal's FNV-1a framing
//! ([`checksummed_line`]/[`verify_line`]): one checksummed header line
//! identifying the campaign (scenario digest + memoize mode), then one
//! checksummed `eval` line per outcome. Reading is tolerant exactly like
//! the journal: a torn tail or a bit-rotted line is skipped and counted,
//! never fatal, and a segment whose header does not match the resuming
//! campaign is discarded wholesale.
//!
//! Segment files live in `<journal>.segments/` and are named
//! `shard-<nn>-g<gen>-p<pid>.seg`: the generation distinguishes a
//! reconnected worker's fresh file from its predecessor's, and the
//! controller pid keeps a resumed run's segments from overwriting the
//! crashed run's (which may still hold outcomes the resume has not yet
//! replayed and re-journaled). The directory is cleared when a fresh
//! (non-resume) campaign starts and removed once a campaign completes.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use snake_json::{obj, FromJson, ToJson, Value};

use crate::campaign::StrategyOutcome;
use crate::journal::{checksummed_line, counters_json, decode_counters, verify_line};

/// Bumped when the segment line format changes incompatibly; a resuming
/// controller discards segments from another version.
pub(crate) const SEGMENT_VERSION: u64 = 1;

/// The directory holding a journal's segment files: the journal path with
/// a `.segments` suffix, mirroring how the header temp file is derived.
pub(crate) fn segment_dir(journal: &Path) -> PathBuf {
    let mut s = journal.as_os_str().to_owned();
    s.push(".segments");
    PathBuf::from(s)
}

/// The segment file a given worker connection writes. `generation`
/// increments when a shard slot reconnects; the controller pid isolates
/// runs from each other (see the module docs).
pub(crate) fn segment_file(dir: &Path, shard: usize, generation: u64) -> PathBuf {
    dir.join(format!(
        "shard-{shard:02}-g{generation}-p{pid}.seg",
        pid = std::process::id()
    ))
}

/// Deletes every `*.seg` file in the directory (and the directory itself
/// when it ends up empty). A missing directory is fine; so is a file
/// vanishing mid-walk. Used both to clear stale segments when a fresh
/// campaign starts and to clean up after a completed one.
pub(crate) fn clear_dir(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "seg") {
            fs::remove_file(&path).ok();
        }
    }
    fs::remove_dir(dir).ok();
}

/// Appends evaluated outcomes to one worker's segment file, flushing per
/// line so a killed worker loses at most the line being written.
#[derive(Debug)]
pub(crate) struct SegmentWriter {
    file: File,
}

impl SegmentWriter {
    /// Creates (truncating) the segment file and writes its header line.
    pub(crate) fn create(
        path: &Path,
        shard: u64,
        digest: u64,
        memoize: bool,
    ) -> io::Result<SegmentWriter> {
        let mut file = File::create(path)?;
        let header = obj([
            ("type", Value::Str("segment".into())),
            ("version", Value::U64(SEGMENT_VERSION)),
            ("shard", Value::U64(shard)),
            ("digest", Value::Str(format!("{digest:016x}"))),
            ("memoize", Value::Bool(memoize)),
        ]);
        let line = checksummed_line(&header.to_string_compact());
        file.write_all(line.as_bytes())?;
        file.flush()?;
        Ok(SegmentWriter { file })
    }

    /// Appends one evaluated outcome with its strategy index and the
    /// counter deltas its evaluation produced, then flushes.
    pub(crate) fn record(
        &mut self,
        index: u64,
        busy_nanos: u64,
        counters: &[(String, u64)],
        outcome: &StrategyOutcome,
    ) -> io::Result<()> {
        let entry = obj([
            ("type", Value::Str("eval".into())),
            ("index", Value::U64(index)),
            ("busy_nanos", Value::U64(busy_nanos)),
            ("counters", counters_json(counters)),
            ("outcome", outcome.to_json()),
        ]);
        let line = checksummed_line(&entry.to_string_compact());
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// One segment outcome accepted by [`merge`]: evaluated but never
/// admitted, waiting to be replayed through the controller's admission
/// path with the counter deltas its evaluation produced.
#[derive(Debug, Clone)]
pub(crate) struct SegmentEntry {
    pub(crate) outcome: StrategyOutcome,
    pub(crate) counters: Vec<(String, u64)>,
}

/// The result of merging a segment directory at resume time.
#[derive(Debug, Default)]
pub(crate) struct SegmentMerge {
    /// Accepted entries keyed by strategy id (the replay key: the round
    /// loop matches pending strategies against it exactly as it matches
    /// journal-reused outcomes).
    pub(crate) entries: BTreeMap<u64, SegmentEntry>,
    /// Entries accepted into `entries`.
    pub(crate) merged: u64,
    /// Lines rejected: already journaled, duplicated across segments,
    /// torn/corrupt, or inside a segment whose header mismatched.
    pub(crate) discarded: u64,
}

/// Merges every segment file in `dir`, keeping outcomes whose strategy id
/// is not `already_admitted` (journal wins: an id in both was admitted
/// before the crash, so its segment copy is pre-admission and stale).
/// Files are visited in sorted name order so duplicate coverage — a range
/// evaluated by a worker that died after writing, then re-dispatched and
/// evaluated again — resolves deterministically to the first file; the
/// copies are identical anyway (evaluation is deterministic), the tie
/// break just keeps the accounting stable. A missing directory is an
/// empty merge.
pub(crate) fn merge(
    dir: &Path,
    digest: u64,
    memoize: bool,
    already_admitted: impl Fn(u64) -> bool,
) -> io::Result<SegmentMerge> {
    let mut out = SegmentMerge::default();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    files.sort();
    for path in files {
        merge_file(&path, digest, memoize, &already_admitted, &mut out)?;
    }
    Ok(out)
}

fn merge_file(
    path: &Path,
    digest: u64,
    memoize: bool,
    already_admitted: &impl Fn(u64) -> bool,
    out: &mut SegmentMerge,
) -> io::Result<()> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut lines = BufReader::new(file).lines();
    // Header gate: a segment from another campaign (digest drift), another
    // memoize mode, or another format version must not leak outcomes into
    // this resume. Its remaining lines are counted as discarded without
    // being trusted. An empty file — a worker that died before its first
    // write — is simply skipped.
    let header_ok = match lines.next() {
        None => return Ok(()),
        Some(line) => header_matches(&line?, digest, memoize),
    };
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if !header_ok {
            out.discarded += 1;
            continue;
        }
        let Some(entry) = decode_entry(&line) else {
            out.discarded += 1;
            continue;
        };
        let id = entry.outcome.strategy.id;
        if already_admitted(id) || out.entries.contains_key(&id) {
            out.discarded += 1;
        } else {
            out.entries.insert(id, entry);
            out.merged += 1;
        }
    }
    // A header-only or torn-header file contributes nothing further; the
    // torn header itself counts as one discarded line.
    if !header_ok {
        out.discarded += 1;
    }
    Ok(())
}

fn header_matches(line: &str, digest: u64, memoize: bool) -> bool {
    let Some(payload) = verify_line(line) else {
        return false;
    };
    let Ok(parsed) = snake_json::parse(payload) else {
        return false;
    };
    parsed.get("type").and_then(Value::as_str) == Some("segment")
        && parsed.get("version").and_then(Value::as_u64) == Some(SEGMENT_VERSION)
        && parsed.get("digest").and_then(Value::as_str) == Some(format!("{digest:016x}").as_str())
        && parsed.get("memoize").and_then(Value::as_bool) == Some(memoize)
}

fn decode_entry(line: &str) -> Option<SegmentEntry> {
    let payload = verify_line(line)?;
    let parsed = snake_json::parse(payload).ok()?;
    if parsed.get("type").and_then(Value::as_str) != Some("eval") {
        return None;
    }
    let outcome = StrategyOutcome::from_json(parsed.get("outcome")?).ok()?;
    let counters = decode_counters(parsed.get("counters"));
    Some(SegmentEntry { outcome, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::OutcomeKind;
    use crate::detect::Verdict;
    use crate::scenario::TestMetrics;
    use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};

    fn outcome(id: u64) -> StrategyOutcome {
        StrategyOutcome {
            strategy: Strategy {
                id,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    packet_type: "ACK".into(),
                    attack: BasicAttack::Drop { percent: 100 },
                },
            },
            verdict: Verdict::default(),
            metrics: TestMetrics {
                target_bytes: 123,
                ..TestMetrics::empty()
            },
            repeatable: true,
            on_path: false,
            false_positive: false,
            outcome_kind: OutcomeKind::Ok,
            error: None,
            memo: None,
        }
    }

    fn counters(n: u64) -> Vec<(String, u64)> {
        vec![
            ("exec.runs.from_scratch".into(), n),
            ("netsim.events".into(), 10 * n),
        ]
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("snake-segment-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        clear_dir(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn write_segment(dir: &Path, shard: usize, generation: u64, ids: &[u64]) -> PathBuf {
        let path = segment_file(dir, shard, generation);
        let mut w = SegmentWriter::create(&path, shard as u64, 0xd1e5, true).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            w.record(i as u64, 1_000, &counters(id), &outcome(id))
                .unwrap();
        }
        path
    }

    #[test]
    fn write_then_merge_roundtrips_outcomes_and_counters() {
        let dir = temp_dir("roundtrip");
        write_segment(&dir, 0, 0, &[3, 5]);
        let merge = merge(&dir, 0xd1e5, true, |_| false).unwrap();
        assert_eq!(merge.merged, 2);
        assert_eq!(merge.discarded, 0);
        assert_eq!(merge.entries[&3].outcome, outcome(3));
        assert_eq!(merge.entries[&5].counters, counters(5));
        clear_dir(&dir);
    }

    #[test]
    fn journal_covered_outcomes_are_discarded() {
        let dir = temp_dir("journal-wins");
        write_segment(&dir, 0, 0, &[1, 2, 3]);
        let merge = merge(&dir, 0xd1e5, true, |id| id == 2).unwrap();
        assert_eq!(merge.merged, 2);
        assert_eq!(
            merge.discarded, 1,
            "the already-admitted id must be dropped"
        );
        assert!(!merge.entries.contains_key(&2));
        clear_dir(&dir);
    }

    #[test]
    fn torn_segment_tail_is_skipped_not_fatal() {
        let dir = temp_dir("torn");
        let path = write_segment(&dir, 0, 0, &[7]);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"eval\",\"index\":1,\"outco");
        std::fs::write(&path, text).unwrap();
        let merge = merge(&dir, 0xd1e5, true, |_| false).unwrap();
        assert_eq!(merge.merged, 1);
        assert_eq!(merge.discarded, 1);
        clear_dir(&dir);
    }

    #[test]
    fn checksum_corrupted_line_is_discarded_not_trusted() {
        let dir = temp_dir("corrupt");
        let path = write_segment(&dir, 0, 0, &[7, 8]);
        // Damage the payload of the last line without touching its
        // checksum: only the checksum can reveal the corruption.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let last = lines.last_mut().unwrap();
        let damaged = last.replace("\"target_bytes\":123", "\"target_bytes\":999");
        assert_ne!(*last, damaged, "the replacement must hit");
        *last = damaged;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let merge = merge(&dir, 0xd1e5, true, |_| false).unwrap();
        assert_eq!(merge.merged, 1);
        assert_eq!(merge.discarded, 1);
        assert!(merge.entries.contains_key(&7));
        clear_dir(&dir);
    }

    #[test]
    fn duplicate_range_across_two_segments_keeps_one_copy() {
        // A worker died after writing its range; the range was
        // re-dispatched and a survivor wrote it again. Both copies are
        // identical (evaluation is deterministic); exactly one merges.
        let dir = temp_dir("duplicate");
        write_segment(&dir, 0, 0, &[4, 5]);
        write_segment(&dir, 1, 0, &[5, 6]);
        let merge = merge(&dir, 0xd1e5, true, |_| false).unwrap();
        assert_eq!(merge.merged, 3);
        assert_eq!(merge.discarded, 1, "the duplicated id must be counted once");
        assert_eq!(
            merge.entries.keys().copied().collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        clear_dir(&dir);
    }

    #[test]
    fn empty_and_header_only_segments_merge_to_nothing() {
        // A worker that died before its first outcome leaves either a
        // zero-byte file (killed inside create) or a header-only one.
        let dir = temp_dir("empty");
        std::fs::write(segment_file(&dir, 0, 0), "").unwrap();
        SegmentWriter::create(&segment_file(&dir, 1, 0), 1, 0xd1e5, true).unwrap();
        let merge = merge(&dir, 0xd1e5, true, |_| false).unwrap();
        assert_eq!(merge.merged, 0);
        assert_eq!(merge.discarded, 0);
        clear_dir(&dir);
    }

    #[test]
    fn mismatched_header_discards_the_whole_file() {
        let dir = temp_dir("mismatch");
        write_segment(&dir, 0, 0, &[1, 2]); // digest 0xd1e5
        let merge = merge(&dir, 0xbeef, true, |_| false).unwrap();
        assert_eq!(merge.merged, 0);
        assert_eq!(merge.discarded, 3, "both lines plus the rejected header");
        // Same digest, different memoize mode: provenance markers would
        // not line up, so the file is equally unusable.
        let remerge = super::merge(&dir, 0xd1e5, false, |_| false).unwrap();
        assert_eq!(remerge.merged, 0);
        clear_dir(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_merge() {
        let merge = merge(Path::new("/nonexistent/snake.segments"), 1, true, |_| false).unwrap();
        assert_eq!(merge.merged, 0);
        assert_eq!(merge.discarded, 0);
    }
}
