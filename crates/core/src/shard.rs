//! Controller/executor split: sharded multi-process campaign execution.
//!
//! The paper's harness was a controller machine driving five executor
//! machines over TCP (§V): the controller owns strategy enumeration and
//! verdicts, the executors own simulation. This module reproduces that
//! division inside one host: `snake shard-worker` processes connect to the
//! controller over a loopback socket, receive the scenario (by value, plus
//! a digest they must independently recompute) and contiguous
//! strategy-index ranges, evaluate them through their own
//! [`PlannedExecutor`](crate::scenario::PlannedExecutor) — snapshot-fork,
//! memoized halt-arming and the stall watchdog all intact — and stream
//! back one outcome message per strategy.
//!
//! # Wire format
//!
//! Every message is one line of compact JSON framed exactly like a journal
//! line: `payload\tFNV64(payload)\n` (see `journal::checksummed_line`).
//! Unlike the on-disk journal, where a corrupt line is skipped and
//! counted, a checksum failure on the wire is a protocol error: the
//! controller declares the shard dead and re-dispatches its outstanding
//! range. A shard can therefore never contribute a damaged outcome.
//!
//! Controller → worker:
//!
//! * `hello` — protocol version, the worker's shard index, the scenario
//!   spec and every evaluation-relevant knob, and the controller's
//!   scenario digest. The worker re-derives the digest from the *decoded*
//!   spec and echoes it in `ready`; any encode/decode drift surfaces as a
//!   digest mismatch and the shard is dropped before it can run anything.
//! * `range` — a starting strategy index plus the strategies themselves.
//! * `shutdown` — the campaign is over; exit cleanly.
//!
//! Worker → controller:
//!
//! * `ready` — handshake acknowledgement carrying the recomputed digest.
//! * `outcome` — one evaluated strategy: its global index, the worker's
//!   wall-clock busy time, the counter deltas its observer accumulated
//!   during the evaluation (so the controller's manifest tallies match a
//!   single-process run), and the full
//!   [`StrategyOutcome`](crate::campaign::StrategyOutcome) in journal
//!   encoding.
//!
//! Determinism is owned entirely by the controller: workers never touch
//! the journal, the memo store or the admission ledger. Outcomes are
//! admitted strictly in strategy-index order through the same reorder
//! buffer the in-process thread pool uses, so TSV, manifest and memo
//! markers are bit-identical at any shard count — including zero, the
//! in-process fallback the controller degrades to when every shard dies.
//!
//! # Supervision and crash tolerance
//!
//! Three layers distinguish a slow worker from a dead one and keep a long
//! campaign's results intact through the whole failure matrix:
//!
//! * **Heartbeats + read deadlines** — after the handshake each worker
//!   runs a heartbeat thread that writes a `heartbeat` frame every
//!   `--heartbeat` interval, even while its main thread is deep inside an
//!   evaluation. The controller keeps a per-connection read deadline
//!   (`--shard-timeout`) armed on every read, so a hung or partitioned
//!   worker — one that stops producing *any* frames — is declared dead
//!   within one deadline, while an arbitrarily slow evaluation stays alive
//!   as long as heartbeats flow. A deadline death re-dispatches the
//!   shard's outstanding indices exactly like a closed connection.
//! * **Journal segments** — when the campaign has a journal, each worker
//!   also appends every evaluated outcome to a private checksummed
//!   segment file (see `segment.rs`). A *controller* crash therefore
//!   resumes by merging segments instead of re-evaluating in-flight
//!   ranges: the journal holds what was admitted, the segments hold what
//!   was evaluated but still on the wire.
//! * **Bounded reconnect** — a spawned worker that dies is replaced: the
//!   controller re-spawns and re-handshakes the slot (fresh generation,
//!   fresh segment file) with exponential backoff plus deterministic
//!   jitter, a bounded number of times per slot. Events are
//!   generation-tagged so a retired connection's stale traffic can never
//!   reach admission.
//!
//! Wire-level chaos (dropped/truncated/corrupted/delayed outcome frames,
//! worker hangs) is injected deterministically on the controller's read
//! path under [`ChaosPlan`](crate::campaign::ChaosPlan) control, so the
//! whole recovery matrix above is exercised by seeded tests.

use std::collections::BTreeMap;
use std::env;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snake_dccp::DccpProfile;
use snake_json::{obj, FromJson, JsonError, ObjExt, ToJson, Value};
use snake_netsim::{
    Aqm, DumbbellSpec, FlapSpec, Impairment, LinkSpec, SimDuration, SimTime, TopologyGenSpec,
    TopologyKind,
};
use snake_observe::Observer;
use snake_proxy::Strategy;
use snake_tcp::{AbortStyle, InvalidFlagPolicy, Profile};

use crate::campaign::{
    build_envelope, evaluate_watched, CampaignConfig, ChaosPlan, SharedCtx, StrategyOutcome,
};
use crate::detect::baseline_valid;
use crate::journal::{checksummed_line, counters_json, verify_line};
use crate::memostore::scenario_digest;
use crate::scenario::{
    ExecutorOptions, FlowGroup, FlowRole, PlannedExecutor, ProtocolKind, ScenarioSpec, TopologySpec,
};
use crate::segment::{segment_file, SegmentWriter};
use crate::strategen::GenerationParams;

/// Wire protocol version; bumped whenever a message shape changes. A
/// worker refuses a `hello` carrying any other version. Version 3 added
/// heartbeats, journal-segment paths and the worker-hang chaos knob.
pub(crate) const WIRE_VERSION: u64 = 3;

/// Exit code a worker uses when the `SNAKE_SHARD_EXIT_AFTER` test hook
/// fires (distinguishable from a panic's 101 in test assertions).
const EXIT_AFTER_CODE: i32 = 17;

/// Default `--shard-timeout`: the per-read deadline on every shard
/// connection — worker connect/handshake *and* mid-evaluation reads. A
/// healthy worker is never silent longer than its heartbeat interval, so
/// this only fires for a hung, partitioned or dead peer.
pub(crate) const DEFAULT_SHARD_TIMEOUT: Duration = Duration::from_secs(10);

/// Default `--heartbeat`: how often a worker proves liveness while its
/// main thread is busy evaluating.
pub(crate) const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(2);

/// Worker-side connect retry budget against a controller that is not up
/// yet (or briefly unreachable): attempts and the first backoff, doubled
/// per retry.
const CONNECT_ATTEMPTS: u32 = 5;
const CONNECT_BACKOFF: Duration = Duration::from_millis(200);

/// Controller-side replacement budget per shard slot: how many times a
/// dead spawned worker is re-spawned and re-handshaked, and the first
/// backoff (doubled per attempt, plus deterministic jitter).
const RECONNECT_ATTEMPTS: u64 = 2;
const RECONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// How long `finish` waits for a worker process to exit after the
/// shutdown message before killing it.
const REAP_TIMEOUT: Duration = Duration::from_secs(5);

/// The counters a worker may legitimately report per outcome, interned so
/// the controller can replay them into its own observer
/// ([`Observer::counter_add`] takes `&'static str`). Everything outside
/// this table is dropped: a worker cannot invent controller-side state.
const WORKER_COUNTERS: &[&str] = &[
    "exec.runs.from_scratch",
    "exec.runs.forked",
    "exec.runs.elided",
    "exec.runs.halted",
    "netsim.events",
    "netsim.timers_cancelled",
    "netsim.timers_purged",
    "netsim.queue_compactions",
    "netsim.queue.depth_hwm",
    "netsim.arena.alloc",
    "netsim.arena.reuse",
    "netsim.snapshot_forks",
    "netsim.snapshot_clone_bytes",
    "netsim.forks",
    "netsim.fork_clone_bytes",
    "netsim.impair.lost",
    "netsim.impair.duplicated",
    "netsim.impair.corrupted",
    "netsim.impair.reordered",
    "netsim.impair.flap_dropped",
    "shard.outcome_batches",
    "shard.heartbeat.sent",
    "shard.segments.written",
    "campaign.escalated",
    "campaign.stalls",
    "campaign.stall_retries",
    "campaign.quarantined",
];

/// Interns a wire counter name against [`WORKER_COUNTERS`].
pub(crate) fn intern_counter(name: &str) -> Option<&'static str> {
    WORKER_COUNTERS.iter().copied().find(|known| *known == name)
}

fn protocol_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn decode_err(err: JsonError) -> io::Error {
    protocol_err(format!("shard wire decode: {err}"))
}

/// Writes one checksummed message line and flushes it to the peer.
fn write_line(writer: &mut impl Write, message: &Value) -> io::Result<()> {
    queue_line(writer, message)?;
    writer.flush()
}

/// Writes one checksummed message line into the writer's buffer without
/// flushing. Workers batch the outcome frames of a dispatched range this
/// way and flush once per range, so an N-strategy range costs one syscall
/// burst instead of N (the controller admits outcomes by index, so frame
/// arrival granularity is invisible to campaign state).
fn queue_line(writer: &mut impl Write, message: &Value) -> io::Result<()> {
    let line = checksummed_line(&message.to_string_compact());
    writer.write_all(line.as_bytes())
}

/// Reads the next message line. `Ok(None)` means the peer closed the
/// connection; a failed checksum or unparseable payload is an error — on
/// the wire (unlike on disk) there is no tolerant skip.
fn read_message(reader: &mut impl BufRead) -> io::Result<Option<Value>> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let payload = verify_line(trimmed)
            .ok_or_else(|| protocol_err("shard wire line failed its checksum"))?;
        let message = snake_json::parse(payload)
            .map_err(|err| protocol_err(format!("shard wire line is not JSON: {err}")))?;
        return Ok(Some(message));
    }
}

// ---------------------------------------------------------------------------
// Scenario encoding
//
// `ScenarioSpec` has no journal serialisation (the journal stores only the
// scenario digest), so the wire carries a dedicated encoding. The digest
// handshake makes this encoding self-verifying: the worker recomputes
// `scenario_digest` from the decoded spec, so any field this code drops or
// distorts shows up as a mismatch, not as silently different results.
// ---------------------------------------------------------------------------

fn encode_duration(duration: SimDuration) -> Value {
    Value::U64(duration.as_nanos())
}

fn decode_duration(value: &Value, what: &str) -> Result<SimDuration, JsonError> {
    value
        .as_u64()
        .map(SimDuration::from_nanos)
        .ok_or_else(|| JsonError::decode(format!("{what}: expected nanoseconds")))
}

fn decode_usize(message: &Value, key: &str) -> Result<usize, JsonError> {
    let raw = message.req_u64(key)?;
    usize::try_from(raw).map_err(|_| JsonError::decode(format!("{key}: {raw} overflows usize")))
}

fn decode_u32(message: &Value, key: &str) -> Result<u32, JsonError> {
    let raw = message.req_u64(key)?;
    u32::try_from(raw).map_err(|_| JsonError::decode(format!("{key}: {raw} overflows u32")))
}

fn encode_impairment(impair: &Impairment) -> Value {
    obj([
        ("loss_ppm", Value::U64(u64::from(impair.loss_ppm))),
        ("dup_ppm", Value::U64(u64::from(impair.dup_ppm))),
        ("corrupt_ppm", Value::U64(u64::from(impair.corrupt_ppm))),
        ("reorder_ppm", Value::U64(u64::from(impair.reorder_ppm))),
        ("jitter", encode_duration(impair.jitter)),
        (
            "flap",
            match impair.flap {
                None => Value::Null,
                Some(flap) => obj([
                    ("first_down", Value::U64(flap.first_down.as_nanos())),
                    ("down_for", encode_duration(flap.down_for)),
                    ("period", encode_duration(flap.period)),
                ]),
            },
        ),
    ])
}

fn decode_impairment(value: &Value) -> Result<Impairment, JsonError> {
    let flap = match value.req("flap")? {
        Value::Null => None,
        flap => Some(FlapSpec {
            first_down: SimTime::from_nanos(flap.req_u64("first_down")?),
            down_for: decode_duration(flap.req("down_for")?, "flap.down_for")?,
            period: decode_duration(flap.req("period")?, "flap.period")?,
        }),
    };
    Ok(Impairment {
        loss_ppm: decode_u32(value, "loss_ppm")?,
        dup_ppm: decode_u32(value, "dup_ppm")?,
        corrupt_ppm: decode_u32(value, "corrupt_ppm")?,
        reorder_ppm: decode_u32(value, "reorder_ppm")?,
        jitter: decode_duration(value.req("jitter")?, "jitter")?,
        flap,
    })
}

fn encode_link(link: &LinkSpec) -> Value {
    obj([
        ("bandwidth_bps", Value::U64(link.bandwidth_bps)),
        ("delay", encode_duration(link.delay)),
        ("queue_packets", Value::U64(link.queue_packets as u64)),
        (
            "aqm",
            Value::Str(
                match link.aqm {
                    Aqm::DropTail => "drop_tail",
                    Aqm::Red => "red",
                }
                .to_owned(),
            ),
        ),
        ("impair", encode_impairment(&link.impair)),
    ])
}

fn decode_link(value: &Value) -> Result<LinkSpec, JsonError> {
    let aqm = match value.req_str("aqm")? {
        "drop_tail" => Aqm::DropTail,
        "red" => Aqm::Red,
        other => return Err(JsonError::decode(format!("unknown aqm `{other}`"))),
    };
    Ok(LinkSpec {
        bandwidth_bps: value.req_u64("bandwidth_bps")?,
        delay: decode_duration(value.req("delay")?, "link.delay")?,
        queue_packets: decode_usize(value, "queue_packets")?,
        aqm,
        impair: decode_impairment(value.req("impair")?)?,
    })
}

fn encode_tcp_profile(profile: &Profile) -> Value {
    obj([
        ("name", Value::Str(profile.name.clone())),
        (
            "initial_cwnd_segments",
            Value::U64(u64::from(profile.initial_cwnd_segments)),
        ),
        (
            "max_data_retries",
            Value::U64(u64::from(profile.max_data_retries)),
        ),
        ("min_rto", encode_duration(profile.min_rto)),
        ("max_rto", encode_duration(profile.max_rto)),
        (
            "naive_ack_counting",
            Value::Bool(profile.naive_ack_counting),
        ),
        ("fast_retransmit", Value::Bool(profile.fast_retransmit)),
        (
            "harsh_dupack_response",
            Value::Bool(profile.harsh_dupack_response),
        ),
        (
            "invalid_flags",
            Value::Str(
                match profile.invalid_flags {
                    InvalidFlagPolicy::BestEffort => "best_effort",
                    InvalidFlagPolicy::Ignore => "ignore",
                    InvalidFlagPolicy::RstAlwaysWins => "rst_always_wins",
                }
                .to_owned(),
            ),
        ),
        (
            "abort_style",
            Value::Str(
                match profile.abort_style {
                    AbortStyle::FinThenRst => "fin_then_rst",
                    AbortStyle::RstOnly => "rst_only",
                }
                .to_owned(),
            ),
        ),
        ("dsack", Value::Bool(profile.dsack)),
        (
            "sack_loss_evidence",
            Value::Bool(profile.sack_loss_evidence),
        ),
        ("sack_recovery", Value::Bool(profile.sack_recovery)),
        ("syn_retries", Value::U64(u64::from(profile.syn_retries))),
        ("time_wait", encode_duration(profile.time_wait)),
        ("app_close_delay", encode_duration(profile.app_close_delay)),
    ])
}

fn decode_tcp_profile(value: &Value) -> Result<Profile, JsonError> {
    let invalid_flags = match value.req_str("invalid_flags")? {
        "best_effort" => InvalidFlagPolicy::BestEffort,
        "ignore" => InvalidFlagPolicy::Ignore,
        "rst_always_wins" => InvalidFlagPolicy::RstAlwaysWins,
        other => {
            return Err(JsonError::decode(format!(
                "unknown invalid_flags policy `{other}`"
            )))
        }
    };
    let abort_style = match value.req_str("abort_style")? {
        "fin_then_rst" => AbortStyle::FinThenRst,
        "rst_only" => AbortStyle::RstOnly,
        other => return Err(JsonError::decode(format!("unknown abort_style `{other}`"))),
    };
    Ok(Profile {
        name: value.req_str("name")?.to_owned(),
        initial_cwnd_segments: decode_u32(value, "initial_cwnd_segments")?,
        max_data_retries: decode_u32(value, "max_data_retries")?,
        min_rto: decode_duration(value.req("min_rto")?, "min_rto")?,
        max_rto: decode_duration(value.req("max_rto")?, "max_rto")?,
        naive_ack_counting: value.req_bool("naive_ack_counting")?,
        fast_retransmit: value.req_bool("fast_retransmit")?,
        harsh_dupack_response: value.req_bool("harsh_dupack_response")?,
        invalid_flags,
        abort_style,
        dsack: value.req_bool("dsack")?,
        sack_loss_evidence: value.req_bool("sack_loss_evidence")?,
        sack_recovery: value.req_bool("sack_recovery")?,
        syn_retries: decode_u32(value, "syn_retries")?,
        time_wait: decode_duration(value.req("time_wait")?, "time_wait")?,
        app_close_delay: decode_duration(value.req("app_close_delay")?, "app_close_delay")?,
    })
}

fn encode_dccp_profile(profile: &DccpProfile) -> Value {
    obj([
        ("name", Value::Str(profile.name.clone())),
        (
            "initial_cwnd_packets",
            Value::U64(u64::from(profile.initial_cwnd_packets)),
        ),
        ("seq_window", Value::U64(profile.seq_window)),
        ("ack_ratio", Value::U64(u64::from(profile.ack_ratio))),
        ("tx_qlen", Value::U64(profile.tx_qlen as u64)),
        ("min_rto", encode_duration(profile.min_rto)),
        ("max_rto", encode_duration(profile.max_rto)),
        (
            "request_retries",
            Value::U64(u64::from(profile.request_retries)),
        ),
        (
            "close_retries",
            Value::U64(u64::from(profile.close_retries)),
        ),
        (
            "type_check_before_seq",
            Value::Bool(profile.type_check_before_seq),
        ),
        ("time_wait", encode_duration(profile.time_wait)),
    ])
}

fn decode_dccp_profile(value: &Value) -> Result<DccpProfile, JsonError> {
    Ok(DccpProfile {
        name: value.req_str("name")?.to_owned(),
        initial_cwnd_packets: decode_u32(value, "initial_cwnd_packets")?,
        seq_window: value.req_u64("seq_window")?,
        ack_ratio: decode_u32(value, "ack_ratio")?,
        tx_qlen: decode_usize(value, "tx_qlen")?,
        min_rto: decode_duration(value.req("min_rto")?, "min_rto")?,
        max_rto: decode_duration(value.req("max_rto")?, "max_rto")?,
        request_retries: decode_u32(value, "request_retries")?,
        close_retries: decode_u32(value, "close_retries")?,
        type_check_before_seq: value.req_bool("type_check_before_seq")?,
        time_wait: decode_duration(value.req("time_wait")?, "time_wait")?,
    })
}

fn encode_topology(topology: &TopologySpec) -> Value {
    match topology {
        TopologySpec::Dumbbell(d) => obj([
            ("kind", Value::Str("dumbbell".to_owned())),
            ("bottleneck", encode_link(&d.bottleneck)),
            ("access", encode_link(&d.access)),
        ]),
        TopologySpec::Generated(g) => obj([
            ("kind", Value::Str(g.kind.label().to_owned())),
            ("hosts", Value::U64(g.hosts as u64)),
            // The topology seed is carried explicitly: ensemble reseeding
            // rewrites the scenario seed but must leave the generated
            // network identical across members.
            ("topo_seed", Value::U64(g.seed)),
            ("bottleneck", encode_link(&g.bottleneck)),
            ("access", encode_link(&g.access)),
        ]),
    }
}

fn decode_topology(value: &Value) -> Result<TopologySpec, JsonError> {
    let bottleneck = decode_link(value.req("bottleneck")?)?;
    let access = decode_link(value.req("access")?)?;
    match value.req_str("kind")? {
        "dumbbell" => Ok(TopologySpec::Dumbbell(DumbbellSpec { bottleneck, access })),
        label => {
            let kind = TopologyKind::from_label(label)
                .ok_or_else(|| JsonError::decode(format!("unknown topology kind `{label}`")))?;
            Ok(TopologySpec::Generated(TopologyGenSpec {
                kind,
                hosts: decode_usize(value, "hosts")?,
                seed: value.req_u64("topo_seed")?,
                bottleneck,
                access,
            }))
        }
    }
}

fn encode_flows(flows: &Option<Vec<FlowGroup>>) -> Value {
    match flows {
        None => Value::Null,
        Some(groups) => Value::Arr(
            groups
                .iter()
                .map(|g| {
                    obj([
                        ("role", Value::Str(g.role.label().to_owned())),
                        ("count", Value::U64(g.count as u64)),
                    ])
                })
                .collect(),
        ),
    }
}

fn decode_flows(value: &Value) -> Result<Option<Vec<FlowGroup>>, JsonError> {
    match value {
        Value::Null => Ok(None),
        Value::Arr(entries) => {
            let mut groups = Vec::with_capacity(entries.len());
            for entry in entries {
                let label = entry.req_str("role")?;
                let role = FlowRole::from_label(label)
                    .ok_or_else(|| JsonError::decode(format!("unknown flow role `{label}`")))?;
                groups.push(FlowGroup {
                    role,
                    count: decode_usize(entry, "count")?,
                });
            }
            Ok(Some(groups))
        }
        _ => Err(JsonError::decode("flows: expected null or array")),
    }
}

pub(crate) fn encode_scenario(spec: &ScenarioSpec) -> Value {
    let (protocol, profile) = match &spec.protocol {
        ProtocolKind::Tcp(profile) => ("tcp", encode_tcp_profile(profile)),
        ProtocolKind::Dccp(profile) => ("dccp", encode_dccp_profile(profile)),
    };
    obj([
        ("protocol", Value::Str(protocol.to_owned())),
        ("profile", profile),
        ("topology", encode_topology(&spec.topology)),
        ("flows", encode_flows(&spec.flows)),
        ("data_secs", Value::U64(spec.data_secs)),
        ("grace_secs", Value::U64(spec.grace_secs)),
        ("seed", Value::U64(spec.seed)),
        (
            "target_connections",
            Value::U64(spec.target_connections as u64),
        ),
        (
            "event_budget",
            match spec.event_budget {
                None => Value::Null,
                Some(budget) => Value::U64(budget),
            },
        ),
    ])
}

pub(crate) fn decode_scenario(value: &Value) -> Result<ScenarioSpec, JsonError> {
    let profile = value.req("profile")?;
    let protocol = match value.req_str("protocol")? {
        "tcp" => ProtocolKind::Tcp(decode_tcp_profile(profile)?),
        "dccp" => ProtocolKind::Dccp(decode_dccp_profile(profile)?),
        other => return Err(JsonError::decode(format!("unknown protocol `{other}`"))),
    };
    let event_budget = match value.req("event_budget")? {
        Value::Null => None,
        budget => Some(
            budget
                .as_u64()
                .ok_or_else(|| JsonError::decode("event_budget: expected integer"))?,
        ),
    };
    Ok(ScenarioSpec {
        protocol,
        topology: decode_topology(value.req("topology")?)?,
        flows: decode_flows(value.req("flows")?)?,
        data_secs: value.req_u64("data_secs")?,
        grace_secs: value.req_u64("grace_secs")?,
        seed: value.req_u64("seed")?,
        target_connections: decode_usize(value, "target_connections")?,
        event_budget,
    })
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Everything a worker needs to stand up its executors, decoded from the
/// controller's `hello`.
struct WorkerJob {
    shard: u64,
    digest: u64,
    spec: ScenarioSpec,
    threshold: f64,
    baseline_reps: usize,
    retest: bool,
    snapshot_fork: bool,
    memoize: bool,
    deadline: Option<Duration>,
    stall_retries: usize,
    stall_backoff: Duration,
    /// How often the worker's heartbeat thread proves liveness.
    heartbeat: Duration,
    /// Journal-segment file to append evaluated outcomes to, when the
    /// campaign has a journal (crash-tolerant resume; see `segment.rs`).
    segment: Option<PathBuf>,
    /// Chaos: stop heartbeating and hang forever after this many
    /// outcomes, so the controller's read deadline is exercised.
    hang_after: Option<u64>,
}

fn encode_hello(
    shard: usize,
    digest: u64,
    config: &CampaignConfig,
    memoize: bool,
    segment: Option<&Path>,
    hang_after: Option<u64>,
) -> Value {
    obj([
        ("type", Value::Str("hello".to_owned())),
        ("version", Value::U64(WIRE_VERSION)),
        ("shard", Value::U64(shard as u64)),
        ("digest", Value::U64(digest)),
        ("scenario", encode_scenario(&config.scenario)),
        ("threshold", Value::F64(config.threshold)),
        ("baseline_reps", Value::U64(config.baseline_reps as u64)),
        ("retest", Value::Bool(config.retest)),
        ("snapshot_fork", Value::Bool(config.snapshot_fork)),
        ("memoize", Value::Bool(memoize)),
        (
            "deadline_nanos",
            match config.deadline {
                None => Value::Null,
                Some(deadline) => Value::U64(deadline.as_nanos() as u64),
            },
        ),
        ("stall_retries", Value::U64(config.stall_retries as u64)),
        (
            "stall_backoff_nanos",
            Value::U64(config.stall_backoff.as_nanos() as u64),
        ),
        (
            "heartbeat_nanos",
            Value::U64(config.heartbeat.as_nanos() as u64),
        ),
        (
            "segment",
            match segment {
                None => Value::Null,
                Some(path) => Value::Str(path.to_string_lossy().into_owned()),
            },
        ),
        (
            "hang_after",
            match hang_after {
                None => Value::Null,
                Some(count) => Value::U64(count),
            },
        ),
    ])
}

fn decode_hello(message: &Value) -> Result<WorkerJob, JsonError> {
    let version = message.req_u64("version")?;
    if version != WIRE_VERSION {
        return Err(JsonError::decode(format!(
            "shard wire version mismatch: controller speaks {version}, worker speaks {WIRE_VERSION}"
        )));
    }
    let deadline = match message.req("deadline_nanos")? {
        Value::Null => None,
        nanos => Some(Duration::from_nanos(nanos.as_u64().ok_or_else(|| {
            JsonError::decode("deadline_nanos: expected integer")
        })?)),
    };
    let segment = match message.req("segment")? {
        Value::Null => None,
        Value::Str(path) => Some(PathBuf::from(path)),
        _ => return Err(JsonError::decode("segment: expected string or null")),
    };
    let hang_after = match message.req("hang_after")? {
        Value::Null => None,
        count => Some(
            count
                .as_u64()
                .ok_or_else(|| JsonError::decode("hang_after: expected integer"))?,
        ),
    };
    Ok(WorkerJob {
        shard: message.req_u64("shard")?,
        digest: message.req_u64("digest")?,
        spec: decode_scenario(message.req("scenario")?)?,
        threshold: message.req_f64("threshold")?,
        baseline_reps: decode_usize(message, "baseline_reps")?,
        retest: message.req_bool("retest")?,
        snapshot_fork: message.req_bool("snapshot_fork")?,
        memoize: message.req_bool("memoize")?,
        deadline,
        stall_retries: decode_usize(message, "stall_retries")?,
        stall_backoff: Duration::from_nanos(message.req_u64("stall_backoff_nanos")?),
        heartbeat: Duration::from_nanos(message.req_u64("heartbeat_nanos")?),
        segment,
        hang_after,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// An [`Observer`] that only accumulates counters, so a worker can ship
/// per-evaluation counter deltas to the controller. Spans and histogram
/// samples are deliberately dropped: in a single-process run they land
/// only in the manifest's (timing) section, which determinism comparisons
/// strip, so reproducing them buys nothing.
#[derive(Debug, Default)]
struct CounterAccumulator {
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

impl CounterAccumulator {
    /// Takes and resets the accumulated counter deltas.
    fn drain(&self) -> BTreeMap<&'static str, u64> {
        std::mem::take(&mut *self.counters.lock().unwrap())
    }
}

impl Observer for CounterAccumulator {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }
}

/// Parses the `SNAKE_SHARD_EXIT_AFTER="<shard>:<k>"` test hook: the
/// matching worker calls `process::exit` after sending `k` outcomes
/// (`k = 0` exits right after the `ready` handshake). Used by the
/// shard-death determinism tests; ignored unless the shard index matches.
fn exit_after_hook(shard: u64) -> Option<u64> {
    let spec = env::var("SNAKE_SHARD_EXIT_AFTER").ok()?;
    let (target, count) = spec.split_once(':')?;
    if target.trim().parse::<u64>().ok()? == shard {
        count.trim().parse().ok()
    } else {
        None
    }
}

/// Connects to a shard controller with bounded retries and exponential
/// backoff, so a worker started moments before (or moments after a
/// controller restart) does not fail instantly on a transient refusal.
/// The final error message is stable — `could not connect to controller
/// at <addr> after <n> attempt(s) over <t>ms: <cause>` — and carries the
/// last underlying error's kind, so scripts and tests can match on it.
pub fn connect_with_backoff(
    addr: &str,
    attempts: u32,
    first_backoff: Duration,
) -> io::Result<TcpStream> {
    let started = Instant::now();
    let mut backoff = first_backoff;
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(err) => last = Some(err),
        }
    }
    let kind = last
        .as_ref()
        .map_or(io::ErrorKind::NotConnected, io::Error::kind);
    let detail = last.map_or_else(|| "no attempt was made".to_owned(), |err| err.to_string());
    Err(io::Error::new(
        kind,
        format!(
            "could not connect to controller at {addr} after {attempts} attempt(s) over {}ms: {detail}",
            started.elapsed().as_millis()
        ),
    ))
}

/// Runs the `snake shard-worker` loop: connect to the controller at
/// `addr` (with bounded retries), handshake, evaluate the strategy ranges
/// it sends, and stream back one `outcome` message per strategy — while a
/// heartbeat thread proves liveness and, when the campaign has a journal,
/// every evaluated outcome is also appended to this worker's journal
/// segment. Returns when the controller sends `shutdown` or closes the
/// connection.
///
/// The worker is stateless between ranges and owns no campaign artifacts
/// beyond its segment file: no journal, no memo store, no verdict ledger.
/// If it dies mid-range the controller re-dispatches the unfinished
/// indices elsewhere, and already-admitted outcomes are never re-run.
pub fn run_shard_worker(addr: &str) -> io::Result<()> {
    let stream = connect_with_backoff(addr, CONNECT_ATTEMPTS, CONNECT_BACKOFF)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));

    let hello = read_message(&mut reader)?
        .ok_or_else(|| protocol_err("controller closed the connection before hello"))?;
    if hello.req_str("type").map_err(decode_err)? != "hello" {
        return Err(protocol_err("expected hello as the first message"));
    }
    let job = decode_hello(&hello).map_err(decode_err)?;
    let digest = scenario_digest(&job.spec, job.threshold, job.baseline_reps);
    if digest != job.digest {
        // Echo what we computed anyway: the controller reports the
        // mismatch and degrades to in-process execution.
        let ready = obj([
            ("type", Value::Str("ready".to_owned())),
            ("digest", Value::U64(digest)),
        ]);
        write_line(&mut *writer.lock().unwrap(), &ready)?;
        return Err(protocol_err(format!(
            "scenario digest mismatch: controller sent {:016x}, decoded spec hashes to {digest:016x}",
            job.digest
        )));
    }
    let exit_after = exit_after_hook(job.shard);

    // Stand up the executors exactly as `Campaign::run` does, with a
    // counter-accumulating observer so evaluation tallies can be shipped
    // to the controller per outcome.
    let accumulator = Arc::new(CounterAccumulator::default());
    let observer: Arc<dyn Observer> = accumulator.clone();
    let exec_options = ExecutorOptions {
        snapshot_fork: job.snapshot_fork,
        memoize: job.memoize,
        halt_arming: true,
        observer: observer.clone(),
    };
    let exec = PlannedExecutor::new(&job.spec, exec_options.clone());
    let baseline = exec.baseline().clone();
    if !baseline_valid(&baseline) {
        return Err(protocol_err("worker baseline is invalid"));
    }
    let retest_spec = ScenarioSpec {
        seed: job.spec.seed.wrapping_add(1),
        ..job.spec.clone()
    };
    let retest_exec = if job.retest {
        Some(PlannedExecutor::new(&retest_spec, exec_options))
    } else {
        None
    };
    let envelope = build_envelope(&job.spec, &baseline, job.baseline_reps, job.threshold);
    let retest_envelope = retest_exec.as_ref().map(|retest| {
        build_envelope(
            &retest_spec,
            retest.baseline(),
            job.baseline_reps,
            job.threshold,
        )
    });

    let config = CampaignConfig {
        scenario: job.spec,
        params: GenerationParams::default(),
        threshold: job.threshold,
        parallelism: 1,
        max_strategies: None,
        feedback_rounds: 1,
        retest: job.retest,
        journal: None,
        resume: false,
        progress_every: 0,
        snapshot_fork: job.snapshot_fork,
        memoize: job.memoize,
        memo_store: None,
        fault_hook: None,
        chaos: None,
        baseline_reps: job.baseline_reps,
        deadline: job.deadline,
        stall_retries: job.stall_retries,
        stall_backoff: job.stall_backoff,
        observer,
        shards: 0,
        shard_listen: None,
        shard_worker_bin: None,
        shard_timeout: DEFAULT_SHARD_TIMEOUT,
        heartbeat: job.heartbeat,
        insecure_bind: false,
    };
    let shared = Arc::new(SharedCtx {
        exec,
        retest_exec,
        config,
        memoize: job.memoize,
        envelope,
        retest_envelope,
        escalated: AtomicUsize::new(0),
        stalls: AtomicUsize::new(0),
        quarantined: AtomicUsize::new(0),
    });
    // Setup cost (baseline, plan, envelopes) accrued counters of its own;
    // the controller already counted its setup once, so discard ours
    // rather than double-reporting.
    accumulator.drain();

    // Open this connection's journal segment (best effort: a worker that
    // cannot write segments still evaluates correctly; only
    // controller-crash recovery loses precision, never correctness).
    let mut segment = job.segment.as_ref().and_then(|path| {
        match SegmentWriter::create(path, job.shard, digest, job.memoize) {
            Ok(writer) => Some(writer),
            Err(err) => {
                eprintln!(
                    "snake: shard {} cannot write its journal segment {path:?}: {err}",
                    job.shard
                );
                None
            }
        }
    });

    let ready = obj([
        ("type", Value::Str("ready".to_owned())),
        ("digest", Value::U64(digest)),
    ]);
    write_line(&mut *writer.lock().unwrap(), &ready)?;

    // Heartbeat thread: proves liveness to the controller's read deadline
    // while the main thread is deep inside an evaluation. It shares the
    // framed writer under the mutex, so a heartbeat can never tear an
    // outcome frame.
    let stop_heartbeats = Arc::new(AtomicBool::new(false));
    {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop_heartbeats);
        let accumulator = Arc::clone(&accumulator);
        let interval = job.heartbeat.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name(format!("snake-shard-hb-{}", job.shard))
            .spawn(move || loop {
                std::thread::sleep(interval);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let beat = obj([("type", Value::Str("heartbeat".to_owned()))]);
                if write_line(&mut *writer.lock().unwrap(), &beat).is_err() {
                    break;
                }
                accumulator.counter_add("shard.heartbeat.sent", 1);
            })
            .expect("spawning the heartbeat thread cannot fail");
    }

    let mut sent: u64 = 0;
    if exit_after == Some(sent) {
        std::process::exit(EXIT_AFTER_CODE);
    }

    // When the controller dies mid-campaign, range messages it already
    // sent are still readable from the socket buffer. Those strategies
    // are exactly what segments exist to preserve, so a broken wire stops
    // *sending* but not evaluating-and-segment-writing; the loop then
    // runs to EOF. Without a segment there is nothing to preserve and
    // wire death ends the worker immediately.
    let mut wire_ok = true;
    let result = (|| -> io::Result<()> {
        while let Some(message) = read_message(&mut reader)? {
            match message.req_str("type").map_err(decode_err)? {
                "range" => {
                    accumulator.counter_add("shard.outcome_batches", 1);
                    let start = message.req_u64("start").map_err(decode_err)?;
                    let strategies = message
                        .req("strategies")
                        .map_err(decode_err)?
                        .as_arr()
                        .ok_or_else(|| protocol_err("range.strategies: expected array"))?;
                    for (offset, encoded) in strategies.iter().enumerate() {
                        let strategy = Strategy::from_json(encoded).map_err(decode_err)?;
                        let began = Instant::now();
                        let outcome = evaluate_watched(&shared, strategy);
                        let busy_nanos = began.elapsed().as_nanos() as u64;
                        let index = start + offset as u64;
                        let counters: Vec<(String, u64)> = accumulator
                            .drain()
                            .into_iter()
                            .map(|(name, delta)| (name.to_owned(), delta))
                            .collect();
                        // Segment first, wire second: an outcome that
                        // reached the controller is always recoverable
                        // from disk, never the other way around.
                        match segment
                            .as_mut()
                            .map(|seg| seg.record(index, busy_nanos, &counters, &outcome))
                        {
                            Some(Ok(())) => {
                                accumulator.counter_add("shard.segments.written", 1);
                            }
                            Some(Err(err)) => {
                                eprintln!(
                                    "snake: shard {} stopped writing its journal segment: {err}",
                                    job.shard
                                );
                                segment = None;
                            }
                            None => {}
                        }
                        if wire_ok {
                            let reply = obj([
                                ("type", Value::Str("outcome".to_owned())),
                                ("index", Value::U64(index)),
                                ("busy_nanos", Value::U64(busy_nanos)),
                                ("counters", counters_json(&counters)),
                                ("outcome", outcome.to_json()),
                            ]);
                            if let Err(err) = queue_line(&mut *writer.lock().unwrap(), &reply) {
                                if segment.is_none() {
                                    return Err(err);
                                }
                                wire_ok = false;
                            }
                        }
                        sent += 1;
                        if exit_after == Some(sent) {
                            // The hook simulates a worker dying *after*
                            // this outcome reached the wire, so drain the
                            // batch buffer before exiting.
                            writer.lock().unwrap().flush()?;
                            std::process::exit(EXIT_AFTER_CODE);
                        }
                        if job.hang_after == Some(sent) {
                            // Chaos: go silent without closing anything.
                            // Heartbeats stop, the current batch stays
                            // buffered — exactly the shape of a
                            // livelocked worker. The controller's read
                            // deadline must declare this shard dead; the
                            // process is killed from outside.
                            stop_heartbeats.store(true, Ordering::Relaxed);
                            loop {
                                std::thread::sleep(Duration::from_secs(60));
                            }
                        }
                    }
                    if wire_ok {
                        if let Err(err) = writer.lock().unwrap().flush() {
                            if segment.is_none() {
                                return Err(err);
                            }
                            wire_ok = false;
                        }
                    }
                }
                "shutdown" => break,
                other => return Err(protocol_err(format!("unexpected message type `{other}`"))),
            }
        }
        Ok(())
    })();
    stop_heartbeats.store(true, Ordering::Relaxed);
    result
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// One message from a shard's reader thread to the dispatcher. Every
/// event carries the connection *generation* it came from: a reconnected
/// slot bumps its generation, so traffic from a retired connection —
/// including its terminal `Dead` — is recognisably stale and discarded.
pub(crate) enum ShardEvent {
    /// A worker finished one strategy.
    Outcome {
        /// Which shard produced it.
        shard: usize,
        /// The connection generation that produced it.
        generation: u64,
        /// Global strategy index within the batch.
        index: usize,
        /// Worker wall-clock spent evaluating, for busy/idle accounting.
        busy_nanos: u64,
        /// Counter deltas the worker's observer accumulated.
        counters: Vec<(String, u64)>,
        /// The evaluated outcome, in journal encoding.
        outcome: Box<StrategyOutcome>,
    },
    /// The shard's connection is unusable: closed, undecodable, or silent
    /// past the read deadline.
    Dead {
        /// Which shard died.
        shard: usize,
        /// The connection generation that died.
        generation: u64,
        /// Whether death was a read-deadline expiry (a hung or
        /// partitioned worker) rather than a closed/corrupt connection.
        timed_out: bool,
    },
}

/// What a bounded wait on the pool's event stream produced.
pub(crate) enum PoolWait {
    /// An event arrived within the deadline.
    Event(ShardEvent),
    /// Nothing arrived: no shard made outcome progress for the whole
    /// window (heartbeats never reach this channel). The dispatcher
    /// checks its per-shard progress deadlines.
    Idle,
    /// Every sender is gone — all reader threads exited and the pool's
    /// own clone was dropped; nothing further can arrive.
    Closed,
}

fn decode_outcome_event(
    shard: usize,
    generation: u64,
    message: &Value,
) -> Result<ShardEvent, JsonError> {
    if message.req_str("type")? != "outcome" {
        return Err(JsonError::decode("expected an outcome message"));
    }
    let index = message.req_u64("index")?;
    let index =
        usize::try_from(index).map_err(|_| JsonError::decode("outcome index overflows usize"))?;
    let counters = match message.req("counters")? {
        Value::Obj(pairs) => pairs
            .iter()
            .map(|(name, delta)| {
                delta
                    .as_u64()
                    .map(|delta| (name.clone(), delta))
                    .ok_or_else(|| JsonError::decode(format!("counter {name}: expected integer")))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(JsonError::decode("outcome.counters: expected object")),
    };
    Ok(ShardEvent::Outcome {
        shard,
        generation,
        index,
        busy_nanos: message.req_u64("busy_nanos")?,
        counters,
        outcome: Box::new(StrategyOutcome::from_json(message.req("outcome")?)?),
    })
}

/// The deterministic wire-fault lane of a [`ChaosPlan`], applied on the
/// controller's read path by outcome-frame ordinal (heartbeats are not
/// counted — their timing is wall-clock-dependent, and chaos must stay
/// reproducible under seed control).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WireFaults {
    drop_every: Option<u64>,
    truncate_every: Option<u64>,
    corrupt_every: Option<u64>,
    delay_every: Option<u64>,
    delay: Duration,
}

impl WireFaults {
    fn from_chaos(chaos: Option<&ChaosPlan>) -> WireFaults {
        match chaos {
            None => WireFaults::default(),
            Some(plan) => WireFaults {
                drop_every: plan.wire_drop_every,
                truncate_every: plan.wire_truncate_every,
                corrupt_every: plan.wire_corrupt_every,
                delay_every: plan.wire_delay_every,
                delay: Duration::from_millis(plan.wire_delay_ms),
            },
        }
    }
}

fn fault_hits(every: Option<u64>, ordinal: u64) -> bool {
    every.is_some_and(|n| n > 0 && ordinal.is_multiple_of(n))
}

fn shutdown_message() -> Value {
    obj([("type", Value::Str("shutdown".to_owned()))])
}

/// Waits for `child` to exit, escalating to a kill after [`REAP_TIMEOUT`].
fn reap(child: &mut Child) {
    let deadline = Instant::now() + REAP_TIMEOUT;
    loop {
        match child.try_wait() {
            Ok(Some(_)) | Err(_) => return,
            Ok(None) => {}
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One connected (or once-connected) worker process, controller side.
struct ShardLink {
    /// A clone of the connection, kept for `shutdown(2)` even after the
    /// writer is dropped.
    socket: TcpStream,
    /// Send half; `None` once the shard is declared dead.
    writer: Option<BufWriter<TcpStream>>,
    /// The spawned worker process (absent for `--connect` workers).
    child: Option<Child>,
    /// The reader thread draining this shard's outcome stream.
    reader: Option<JoinHandle<()>>,
    /// Whether the handshake (ready + digest match) succeeded.
    handshaked: bool,
    /// Total worker-reported evaluation time.
    busy_nanos: u64,
    /// Outcomes received from this shard.
    outcomes: u64,
    /// Connection generation for this slot; bumped per reconnect so
    /// retired connections' events are recognisably stale.
    generation: u64,
    /// Replacement attempts consumed by this slot (bounded by
    /// [`RECONNECT_ATTEMPTS`]).
    reconnect_attempts: u64,
}

/// The controller's set of worker processes for one campaign, plus the
/// merged event stream their reader threads feed.
pub(crate) struct ShardPool {
    links: Vec<ShardLink>,
    /// Links replaced by reconnects (or that failed a reconnect
    /// handshake), kept so their reader threads are joined and their
    /// children reaped at teardown, and their busy tallies reported.
    retired: Vec<ShardLink>,
    events: mpsc::Receiver<ShardEvent>,
    /// Sender handed to reader threads; kept so reconnected readers can
    /// be spawned after launch.
    tx: mpsc::Sender<ShardEvent>,
    started: Instant,
    /// Shards that completed the handshake (the `shard.workers` counter).
    workers: usize,
    /// The campaign's scenario digest (reconnect handshakes re-use it).
    digest: u64,
    /// The effective memoize flag the workers were handshaked with.
    memoize: bool,
    /// Wire-fault lane applied on every reader.
    wire: WireFaults,
    /// Segment directory, when the campaign journals.
    segments: Option<PathBuf>,
    /// Respawn context for spawned-children mode: the retained listener
    /// and the worker binary. `None` under `--shard-listen`, where
    /// workers are started externally and cannot be respawned.
    respawn: Option<(TcpListener, PathBuf)>,
    /// Ranges handed to workers, including re-dispatches.
    pub(crate) ranges_dispatched: u64,
    /// Ranges re-dispatched after a shard death or protocol violation.
    pub(crate) ranges_redispatched: u64,
    /// Shards declared dead by read-deadline expiry (hung/partitioned).
    pub(crate) heartbeats_missed: u64,
    /// Successful slot replacements.
    pub(crate) reconnects: u64,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("links", &self.links.len())
            .field("workers", &self.workers)
            .field("ranges_dispatched", &self.ranges_dispatched)
            .field("ranges_redispatched", &self.ranges_redispatched)
            .finish()
    }
}

fn spawn_reader(
    shard: usize,
    generation: u64,
    mut reader: BufReader<TcpStream>,
    tx: mpsc::Sender<ShardEvent>,
    wire: WireFaults,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("snake-shard-rx-{shard}-g{generation}"))
        .spawn(move || {
            let dead = |timed_out| ShardEvent::Dead {
                shard,
                generation,
                timed_out,
            };
            let mut outcomes: u64 = 0;
            loop {
                let event = match read_message(&mut reader) {
                    Ok(Some(message)) => {
                        if message.get("type").and_then(Value::as_str) == Some("heartbeat") {
                            // Liveness proven simply by arriving before
                            // the read deadline; nothing to dispatch.
                            continue;
                        }
                        match decode_outcome_event(shard, generation, &message) {
                            Ok(event) => {
                                outcomes += 1;
                                // Wire chaos, by outcome ordinal: a
                                // truncated or corrupted frame would have
                                // failed its checksum, which on the wire
                                // is a protocol death; a dropped frame
                                // simply never happened; a delayed frame
                                // arrives late but intact.
                                if fault_hits(wire.truncate_every, outcomes)
                                    || fault_hits(wire.corrupt_every, outcomes)
                                {
                                    dead(false)
                                } else if fault_hits(wire.drop_every, outcomes) {
                                    continue;
                                } else {
                                    if fault_hits(wire.delay_every, outcomes) {
                                        std::thread::sleep(wire.delay);
                                    }
                                    event
                                }
                            }
                            Err(_) => dead(false),
                        }
                    }
                    Ok(None) => dead(false),
                    Err(err) => dead(matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    )),
                };
                let is_dead = matches!(event, ShardEvent::Dead { .. });
                if tx.send(event).is_err() || is_dead {
                    break;
                }
            }
        })
        .expect("spawning a shard reader thread cannot fail")
}

/// Accepts up to `want` connections from spawned children, polling so a
/// child that died on startup does not hang the controller forever.
fn accept_children(
    listener: &TcpListener,
    want: usize,
    children: &mut [Child],
    timeout: Duration,
) -> Vec<TcpStream> {
    listener
        .set_nonblocking(true)
        .expect("listener supports nonblocking");
    let deadline = Instant::now() + timeout;
    let mut accepted = Vec::new();
    while accepted.len() < want && Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .expect("accepted stream supports blocking");
                accepted.push(stream);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                // A connected worker blocks on its socket, so an exited
                // child is one that failed before connecting. Once every
                // still-running child is accounted for by an accepted
                // stream, no further connection can arrive.
                let exited = children
                    .iter_mut()
                    .filter_map(|child| child.try_wait().ok().flatten())
                    .count();
                if children.len() - exited <= accepted.len() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    accepted
}

/// Spawns one `shard-worker --connect` child pointed at `addr`.
fn spawn_worker(worker_bin: &Path, addr: &str) -> io::Result<Child> {
    Command::new(worker_bin)
        .args(["shard-worker", "--connect", addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
}

/// Deterministic sub-100ms reconnect jitter: a splitmix64 finalizer over
/// the (digest, shard, attempt) triple, so two controllers racing to
/// replace shards of the same campaign stagger identically run-to-run.
fn reconnect_jitter(digest: u64, shard: usize, attempt: u64) -> Duration {
    let mut z = digest ^ ((shard as u64) << 8) ^ attempt;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Duration::from_millis((z ^ (z >> 31)) % 100)
}

impl ShardPool {
    /// Spawns (or accepts) the configured worker processes, handshakes
    /// each one, and starts their reader threads. Shards that fail to
    /// connect, echo a wrong digest, or die during the handshake are
    /// simply absent from the live set; the caller degrades to in-process
    /// execution when `live()` comes back zero.
    ///
    /// `segments` is the journal-segment directory workers should write
    /// their evaluated-outcome segments into (shared filesystem assumed
    /// for spawned children; `--connect` workers on other machines simply
    /// skip segment writing when the path is not creatable).
    pub(crate) fn launch(
        config: &CampaignConfig,
        memoize: bool,
        segments: Option<PathBuf>,
    ) -> io::Result<ShardPool> {
        let digest = scenario_digest(&config.scenario, config.threshold, config.baseline_reps);
        let wire = WireFaults::from_chaos(config.chaos.as_ref());
        let hang_after = config
            .chaos
            .as_ref()
            .and_then(|plan| plan.hang_worker_after);
        let (tx, rx) = mpsc::channel();
        let mut streams: Vec<(TcpStream, Option<Child>)> = Vec::new();
        let mut respawn = None;

        if let Some(listen) = &config.shard_listen {
            let listener = TcpListener::bind(listen.as_str())?;
            let addr = listener.local_addr()?;
            eprintln!(
                "snake: shard controller listening on {addr} — start {} `snake shard-worker --connect {addr}` process(es)",
                config.shards
            );
            for _ in 0..config.shards {
                let (stream, _) = listener.accept()?;
                streams.push((stream, None));
            }
        } else {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let worker_bin = match &config.shard_worker_bin {
                Some(path) => path.clone(),
                None => env::current_exe()?,
            };
            let mut children = Vec::new();
            for _ in 0..config.shards {
                match spawn_worker(&worker_bin, &addr.to_string()) {
                    Ok(child) => children.push(child),
                    Err(err) => {
                        eprintln!("snake: failed to spawn shard worker {worker_bin:?}: {err}");
                    }
                }
            }
            let accepted = accept_children(
                &listener,
                children.len(),
                &mut children,
                config.shard_timeout,
            );
            // Pair accepted streams with children positionally for
            // reaping only — shard identity comes from the hello message,
            // so the pairing does not need to match spawn order.
            let mut children = children.into_iter();
            for stream in accepted {
                streams.push((stream, children.next()));
            }
            // Children beyond the accepted count never connected; reap
            // them now rather than leaking processes.
            for mut orphan in children {
                orphan.kill().ok();
                orphan.wait().ok();
            }
            // Keep the listener and binary path so a dead shard can be
            // replaced by a fresh child mid-campaign.
            respawn = Some((listener, worker_bin));
        }

        let mut pool = ShardPool {
            links: Vec::new(),
            retired: Vec::new(),
            events: rx,
            tx,
            started: Instant::now(),
            workers: 0,
            digest,
            memoize,
            wire,
            segments,
            respawn,
            ranges_dispatched: 0,
            ranges_redispatched: 0,
            heartbeats_missed: 0,
            reconnects: 0,
        };
        for (shard, (stream, child)) in streams.into_iter().enumerate() {
            stream.set_nodelay(true).ok();
            // The hang knob targets shard 0's initial connection only, so
            // a hang-chaos campaign still has live shards to finish on.
            let hang = if shard == 0 { hang_after } else { None };
            let segment = pool.segment_path(shard, 0);
            let link = Self::handshake(
                shard,
                0,
                stream,
                child,
                digest,
                config,
                memoize,
                segment.as_deref(),
                hang,
                &pool.tx,
                wire,
            );
            pool.workers += usize::from(link.handshaked);
            pool.links.push(link);
        }
        Ok(pool)
    }

    /// The segment file a given `(shard, generation)` connection should
    /// write, when the campaign journals.
    fn segment_path(&self, shard: usize, generation: u64) -> Option<PathBuf> {
        self.segments
            .as_deref()
            .map(|dir| segment_file(dir, shard, generation))
    }

    /// Runs the hello/ready handshake on one accepted stream. Any failure
    /// produces a dead link (kept only so its child is reaped later).
    ///
    /// The read deadline stays armed after the handshake: a worker that
    /// goes silent for longer than `config.shard_timeout` mid-evaluation
    /// (no outcome, no heartbeat) is declared dead by its reader thread
    /// rather than hanging the controller forever.
    #[allow(clippy::too_many_arguments)]
    fn handshake(
        shard: usize,
        generation: u64,
        stream: TcpStream,
        child: Option<Child>,
        digest: u64,
        config: &CampaignConfig,
        memoize: bool,
        segment: Option<&Path>,
        hang_after: Option<u64>,
        tx: &mpsc::Sender<ShardEvent>,
        wire: WireFaults,
    ) -> ShardLink {
        let mut link = ShardLink {
            socket: stream.try_clone().unwrap_or(stream),
            writer: None,
            child,
            reader: None,
            handshaked: false,
            busy_nanos: 0,
            outcomes: 0,
            generation,
            reconnect_attempts: 0,
        };
        let attempt = (|| -> io::Result<(BufWriter<TcpStream>, BufReader<TcpStream>)> {
            let mut writer = BufWriter::new(link.socket.try_clone()?);
            write_line(
                &mut writer,
                &encode_hello(shard, digest, config, memoize, segment, hang_after),
            )?;
            let read_half = link.socket.try_clone()?;
            read_half.set_read_timeout(Some(config.shard_timeout))?;
            let mut reader = BufReader::new(read_half);
            let ready = read_message(&mut reader)?
                .ok_or_else(|| protocol_err("worker closed the connection before ready"))?;
            if ready.req_str("type").map_err(decode_err)? != "ready" {
                return Err(protocol_err("expected a ready message"));
            }
            let echoed = ready.req_u64("digest").map_err(decode_err)?;
            if echoed != digest {
                return Err(protocol_err(format!(
                    "scenario digest mismatch: sent {digest:016x}, worker decoded {echoed:016x}"
                )));
            }
            Ok((writer, reader))
        })();
        match attempt {
            Ok((writer, reader)) => {
                link.writer = Some(writer);
                link.reader = Some(spawn_reader(shard, generation, reader, tx.clone(), wire));
                link.handshaked = true;
            }
            Err(err) => {
                eprintln!("snake: shard {shard} failed its handshake and was dropped: {err}");
                link.socket.shutdown(Shutdown::Both).ok();
            }
        }
        link
    }

    /// Attempts to replace a dead shard slot with a freshly spawned
    /// worker. Only spawned-children mode can respawn (`--shard-listen`
    /// workers are started externally); each slot gets at most
    /// [`RECONNECT_ATTEMPTS`] replacements, with exponential backoff plus
    /// deterministic jitter between tries. Returns `true` when the slot
    /// is live again (at a bumped generation, writing a fresh segment
    /// file so the dead connection's segment is never appended to).
    pub(crate) fn try_reconnect(&mut self, shard: usize, config: &CampaignConfig) -> bool {
        let Some(link) = self.links.get_mut(shard) else {
            return false;
        };
        if link.writer.is_some() || link.reconnect_attempts >= RECONNECT_ATTEMPTS {
            return false;
        }
        let Some((listener, worker_bin)) = self.respawn.as_ref() else {
            return false;
        };
        let attempt = link.reconnect_attempts;
        link.reconnect_attempts += 1;
        let backoff = RECONNECT_BACKOFF * 2u32.saturating_pow(attempt as u32)
            + reconnect_jitter(self.digest, shard, attempt);
        std::thread::sleep(backoff);

        let addr = match listener.local_addr() {
            Ok(addr) => addr.to_string(),
            Err(_) => return false,
        };
        let mut child = match spawn_worker(worker_bin, &addr) {
            Ok(child) => child,
            Err(err) => {
                eprintln!("snake: shard {shard} respawn failed: {err}");
                return false;
            }
        };
        let accepted = accept_children(
            listener,
            1,
            std::slice::from_mut(&mut child),
            config.shard_timeout,
        );
        let Some(stream) = accepted.into_iter().next() else {
            child.kill().ok();
            child.wait().ok();
            return false;
        };
        stream.set_nodelay(true).ok();

        let generation = self.links[shard].generation + 1;
        let segment = self.segment_path(shard, generation);
        let mut fresh = Self::handshake(
            shard,
            generation,
            stream,
            Some(child),
            self.digest,
            config,
            self.memoize,
            segment.as_deref(),
            None,
            &self.tx,
            self.wire,
        );
        fresh.reconnect_attempts = self.links[shard].reconnect_attempts;
        let live = fresh.handshaked;
        // Retire the old link whichever way the handshake went: its
        // reader thread and child still need joining/reaping at teardown,
        // and its busy tally still counts toward the shard histograms.
        let old = std::mem::replace(&mut self.links[shard], fresh);
        self.retired.push(old);
        if live {
            self.reconnects += 1;
        }
        live
    }

    /// The current connection generation for a shard slot; events tagged
    /// with an older generation are stale traffic from a retired link.
    pub(crate) fn generation(&self, shard: usize) -> u64 {
        self.links.get(shard).map_or(0, |link| link.generation)
    }

    /// Shards currently accepting work.
    pub(crate) fn live(&self) -> usize {
        self.links
            .iter()
            .filter(|link| link.writer.is_some())
            .count()
    }

    /// Whether one specific shard is still accepting work.
    pub(crate) fn is_live(&self, shard: usize) -> bool {
        self.links
            .get(shard)
            .is_some_and(|link| link.writer.is_some())
    }

    /// Total link slots (dead ones included); shard indices range over this.
    pub(crate) fn len(&self) -> usize {
        self.links.len()
    }

    /// Sends one contiguous range to a shard. Returns `false` — after
    /// killing the link — when the write fails, so the caller re-queues.
    pub(crate) fn send_range(
        &mut self,
        shard: usize,
        start: usize,
        strategies: &[Strategy],
    ) -> bool {
        let Some(writer) = self
            .links
            .get_mut(shard)
            .and_then(|link| link.writer.as_mut())
        else {
            return false;
        };
        let message = obj([
            ("type", Value::Str("range".to_owned())),
            ("start", Value::U64(start as u64)),
            (
                "strategies",
                Value::Arr(strategies.iter().map(ToJson::to_json).collect()),
            ),
        ]);
        if write_line(writer, &message).is_err() {
            self.kill(shard);
            return false;
        }
        self.ranges_dispatched += 1;
        true
    }

    /// Declares a shard dead: drops its writer, shuts the socket down
    /// (which also unblocks its reader thread into an EOF), and kills the
    /// spawned child outright — a worker declared dead for missing its
    /// read deadline may be hung in an evaluation and would otherwise
    /// stall teardown until the reap timeout.
    pub(crate) fn kill(&mut self, shard: usize) {
        if let Some(link) = self.links.get_mut(shard) {
            link.writer = None;
            link.socket.shutdown(Shutdown::Both).ok();
            if let Some(child) = link.child.as_mut() {
                child.kill().ok();
            }
        }
    }

    /// Credits one received outcome to a shard's busy-time tally.
    pub(crate) fn record_busy(&mut self, shard: usize, busy_nanos: u64) {
        if let Some(link) = self.links.get_mut(shard) {
            link.busy_nanos += busy_nanos;
            link.outcomes += 1;
        }
    }

    /// Waits up to `timeout` for the next event from any shard. Every
    /// dead reader sends a `Dead` event before exiting and the armed read
    /// deadlines bound how long a broken wire stays quiet, but neither
    /// covers a worker whose heartbeats keep flowing while an outcome
    /// never arrives (a frame lost to wire chaos, an evaluation thread
    /// wedged behind a live heartbeat thread) — heartbeats are swallowed
    /// by the readers, so [`PoolWait::Idle`] means no *outcome* progress
    /// anywhere, and the caller applies its progress deadline.
    pub(crate) fn next_event_timeout(&self, timeout: Duration) -> PoolWait {
        match self.events.recv_timeout(timeout) {
            Ok(event) => PoolWait::Event(event),
            Err(mpsc::RecvTimeoutError::Timeout) => PoolWait::Idle,
            Err(mpsc::RecvTimeoutError::Disconnected) => PoolWait::Closed,
        }
    }

    /// Shuts every worker down, joins the reader threads, reaps spawned
    /// children, and reports per-shard tallies to `observer`: the
    /// `shard.workers` / `shard.ranges_dispatched` /
    /// `shard.ranges_redispatched` counters and one `shard.busy_nanos` /
    /// `shard.idle_nanos` histogram sample per handshaked shard.
    pub(crate) fn finish(&mut self, observer: &dyn Observer) {
        let lifetime = self.started.elapsed().as_nanos() as u64;
        self.teardown();
        observer.counter_add("shard.workers", self.workers as u64);
        observer.counter_add("shard.ranges_dispatched", self.ranges_dispatched);
        observer.counter_add("shard.ranges_redispatched", self.ranges_redispatched);
        observer.counter_add("shard.heartbeat.missed", self.heartbeats_missed);
        observer.counter_add("shard.reconnects", self.reconnects);
        for link in self.links.iter().chain(self.retired.iter()) {
            if link.handshaked {
                observer.record("shard.busy_nanos", link.busy_nanos);
                observer.record("shard.idle_nanos", lifetime.saturating_sub(link.busy_nanos));
            }
        }
    }

    fn teardown(&mut self) {
        for link in self.links.iter_mut().chain(self.retired.iter_mut()) {
            if let Some(mut writer) = link.writer.take() {
                write_line(&mut writer, &shutdown_message()).ok();
            }
            link.socket.shutdown(Shutdown::Both).ok();
        }
        for link in self.links.iter_mut().chain(self.retired.iter_mut()) {
            if let Some(handle) = link.reader.take() {
                handle.join().ok();
            }
            if let Some(mut child) = link.child.take() {
                reap(&mut child);
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.teardown();
    }
}
