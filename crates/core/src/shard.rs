//! Controller/executor split: sharded multi-process campaign execution.
//!
//! The paper's harness was a controller machine driving five executor
//! machines over TCP (§V): the controller owns strategy enumeration and
//! verdicts, the executors own simulation. This module reproduces that
//! division inside one host: `snake shard-worker` processes connect to the
//! controller over a loopback socket, receive the scenario (by value, plus
//! a digest they must independently recompute) and contiguous
//! strategy-index ranges, evaluate them through their own
//! [`PlannedExecutor`](crate::scenario::PlannedExecutor) — snapshot-fork,
//! memoized halt-arming and the stall watchdog all intact — and stream
//! back one outcome message per strategy.
//!
//! # Wire format
//!
//! Every message is one line of compact JSON framed exactly like a journal
//! line: `payload\tFNV64(payload)\n` (see `journal::checksummed_line`).
//! Unlike the on-disk journal, where a corrupt line is skipped and
//! counted, a checksum failure on the wire is a protocol error: the
//! controller declares the shard dead and re-dispatches its outstanding
//! range. A shard can therefore never contribute a damaged outcome.
//!
//! Controller → worker:
//!
//! * `hello` — protocol version, the worker's shard index, the scenario
//!   spec and every evaluation-relevant knob, and the controller's
//!   scenario digest. The worker re-derives the digest from the *decoded*
//!   spec and echoes it in `ready`; any encode/decode drift surfaces as a
//!   digest mismatch and the shard is dropped before it can run anything.
//! * `range` — a starting strategy index plus the strategies themselves.
//! * `shutdown` — the campaign is over; exit cleanly.
//!
//! Worker → controller:
//!
//! * `ready` — handshake acknowledgement carrying the recomputed digest.
//! * `outcome` — one evaluated strategy: its global index, the worker's
//!   wall-clock busy time, the counter deltas its observer accumulated
//!   during the evaluation (so the controller's manifest tallies match a
//!   single-process run), and the full
//!   [`StrategyOutcome`](crate::campaign::StrategyOutcome) in journal
//!   encoding.
//!
//! Determinism is owned entirely by the controller: workers never touch
//! the journal, the memo store or the admission ledger. Outcomes are
//! admitted strictly in strategy-index order through the same reorder
//! buffer the in-process thread pool uses, so TSV, manifest and memo
//! markers are bit-identical at any shard count — including zero, the
//! in-process fallback the controller degrades to when every shard dies.

use std::collections::BTreeMap;
use std::env;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::AtomicUsize;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snake_dccp::DccpProfile;
use snake_json::{obj, FromJson, JsonError, ObjExt, ToJson, Value};
use snake_netsim::{
    Aqm, DumbbellSpec, FlapSpec, Impairment, LinkSpec, SimDuration, SimTime, TopologyGenSpec,
    TopologyKind,
};
use snake_observe::Observer;
use snake_proxy::Strategy;
use snake_tcp::{AbortStyle, InvalidFlagPolicy, Profile};

use crate::campaign::{
    build_envelope, evaluate_watched, CampaignConfig, SharedCtx, StrategyOutcome,
};
use crate::detect::baseline_valid;
use crate::journal::{checksummed_line, verify_line};
use crate::memostore::scenario_digest;
use crate::scenario::{
    ExecutorOptions, FlowGroup, FlowRole, PlannedExecutor, ProtocolKind, ScenarioSpec, TopologySpec,
};
use crate::strategen::GenerationParams;

/// Wire protocol version; bumped whenever a message shape changes. A
/// worker refuses a `hello` carrying any other version.
pub(crate) const WIRE_VERSION: u64 = 2;

/// Exit code a worker uses when the `SNAKE_SHARD_EXIT_AFTER` test hook
/// fires (distinguishable from a panic's 101 in test assertions).
const EXIT_AFTER_CODE: i32 = 17;

/// How long the controller waits for spawned workers to connect and for
/// each handshake read before declaring the shard dead.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long `finish` waits for a worker process to exit after the
/// shutdown message before killing it.
const REAP_TIMEOUT: Duration = Duration::from_secs(5);

/// The counters a worker may legitimately report per outcome, interned so
/// the controller can replay them into its own observer
/// ([`Observer::counter_add`] takes `&'static str`). Everything outside
/// this table is dropped: a worker cannot invent controller-side state.
const WORKER_COUNTERS: &[&str] = &[
    "exec.runs.from_scratch",
    "exec.runs.forked",
    "exec.runs.elided",
    "exec.runs.halted",
    "netsim.events",
    "netsim.timers_cancelled",
    "netsim.timers_purged",
    "netsim.queue_compactions",
    "netsim.queue.depth_hwm",
    "netsim.arena.alloc",
    "netsim.arena.reuse",
    "netsim.snapshot_forks",
    "netsim.snapshot_clone_bytes",
    "netsim.forks",
    "netsim.fork_clone_bytes",
    "netsim.impair.lost",
    "netsim.impair.duplicated",
    "netsim.impair.corrupted",
    "netsim.impair.reordered",
    "netsim.impair.flap_dropped",
    "shard.outcome_batches",
    "campaign.escalated",
    "campaign.stalls",
    "campaign.stall_retries",
    "campaign.quarantined",
];

/// Interns a wire counter name against [`WORKER_COUNTERS`].
pub(crate) fn intern_counter(name: &str) -> Option<&'static str> {
    WORKER_COUNTERS.iter().copied().find(|known| *known == name)
}

fn protocol_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn decode_err(err: JsonError) -> io::Error {
    protocol_err(format!("shard wire decode: {err}"))
}

/// Writes one checksummed message line and flushes it to the peer.
fn write_line(writer: &mut impl Write, message: &Value) -> io::Result<()> {
    queue_line(writer, message)?;
    writer.flush()
}

/// Writes one checksummed message line into the writer's buffer without
/// flushing. Workers batch the outcome frames of a dispatched range this
/// way and flush once per range, so an N-strategy range costs one syscall
/// burst instead of N (the controller admits outcomes by index, so frame
/// arrival granularity is invisible to campaign state).
fn queue_line(writer: &mut impl Write, message: &Value) -> io::Result<()> {
    let line = checksummed_line(&message.to_string_compact());
    writer.write_all(line.as_bytes())
}

/// Reads the next message line. `Ok(None)` means the peer closed the
/// connection; a failed checksum or unparseable payload is an error — on
/// the wire (unlike on disk) there is no tolerant skip.
fn read_message(reader: &mut impl BufRead) -> io::Result<Option<Value>> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let payload = verify_line(trimmed)
            .ok_or_else(|| protocol_err("shard wire line failed its checksum"))?;
        let message = snake_json::parse(payload)
            .map_err(|err| protocol_err(format!("shard wire line is not JSON: {err}")))?;
        return Ok(Some(message));
    }
}

// ---------------------------------------------------------------------------
// Scenario encoding
//
// `ScenarioSpec` has no journal serialisation (the journal stores only the
// scenario digest), so the wire carries a dedicated encoding. The digest
// handshake makes this encoding self-verifying: the worker recomputes
// `scenario_digest` from the decoded spec, so any field this code drops or
// distorts shows up as a mismatch, not as silently different results.
// ---------------------------------------------------------------------------

fn encode_duration(duration: SimDuration) -> Value {
    Value::U64(duration.as_nanos())
}

fn decode_duration(value: &Value, what: &str) -> Result<SimDuration, JsonError> {
    value
        .as_u64()
        .map(SimDuration::from_nanos)
        .ok_or_else(|| JsonError::decode(format!("{what}: expected nanoseconds")))
}

fn decode_usize(message: &Value, key: &str) -> Result<usize, JsonError> {
    let raw = message.req_u64(key)?;
    usize::try_from(raw).map_err(|_| JsonError::decode(format!("{key}: {raw} overflows usize")))
}

fn decode_u32(message: &Value, key: &str) -> Result<u32, JsonError> {
    let raw = message.req_u64(key)?;
    u32::try_from(raw).map_err(|_| JsonError::decode(format!("{key}: {raw} overflows u32")))
}

fn encode_impairment(impair: &Impairment) -> Value {
    obj([
        ("loss_ppm", Value::U64(u64::from(impair.loss_ppm))),
        ("dup_ppm", Value::U64(u64::from(impair.dup_ppm))),
        ("corrupt_ppm", Value::U64(u64::from(impair.corrupt_ppm))),
        ("reorder_ppm", Value::U64(u64::from(impair.reorder_ppm))),
        ("jitter", encode_duration(impair.jitter)),
        (
            "flap",
            match impair.flap {
                None => Value::Null,
                Some(flap) => obj([
                    ("first_down", Value::U64(flap.first_down.as_nanos())),
                    ("down_for", encode_duration(flap.down_for)),
                    ("period", encode_duration(flap.period)),
                ]),
            },
        ),
    ])
}

fn decode_impairment(value: &Value) -> Result<Impairment, JsonError> {
    let flap = match value.req("flap")? {
        Value::Null => None,
        flap => Some(FlapSpec {
            first_down: SimTime::from_nanos(flap.req_u64("first_down")?),
            down_for: decode_duration(flap.req("down_for")?, "flap.down_for")?,
            period: decode_duration(flap.req("period")?, "flap.period")?,
        }),
    };
    Ok(Impairment {
        loss_ppm: decode_u32(value, "loss_ppm")?,
        dup_ppm: decode_u32(value, "dup_ppm")?,
        corrupt_ppm: decode_u32(value, "corrupt_ppm")?,
        reorder_ppm: decode_u32(value, "reorder_ppm")?,
        jitter: decode_duration(value.req("jitter")?, "jitter")?,
        flap,
    })
}

fn encode_link(link: &LinkSpec) -> Value {
    obj([
        ("bandwidth_bps", Value::U64(link.bandwidth_bps)),
        ("delay", encode_duration(link.delay)),
        ("queue_packets", Value::U64(link.queue_packets as u64)),
        (
            "aqm",
            Value::Str(
                match link.aqm {
                    Aqm::DropTail => "drop_tail",
                    Aqm::Red => "red",
                }
                .to_owned(),
            ),
        ),
        ("impair", encode_impairment(&link.impair)),
    ])
}

fn decode_link(value: &Value) -> Result<LinkSpec, JsonError> {
    let aqm = match value.req_str("aqm")? {
        "drop_tail" => Aqm::DropTail,
        "red" => Aqm::Red,
        other => return Err(JsonError::decode(format!("unknown aqm `{other}`"))),
    };
    Ok(LinkSpec {
        bandwidth_bps: value.req_u64("bandwidth_bps")?,
        delay: decode_duration(value.req("delay")?, "link.delay")?,
        queue_packets: decode_usize(value, "queue_packets")?,
        aqm,
        impair: decode_impairment(value.req("impair")?)?,
    })
}

fn encode_tcp_profile(profile: &Profile) -> Value {
    obj([
        ("name", Value::Str(profile.name.clone())),
        (
            "initial_cwnd_segments",
            Value::U64(u64::from(profile.initial_cwnd_segments)),
        ),
        (
            "max_data_retries",
            Value::U64(u64::from(profile.max_data_retries)),
        ),
        ("min_rto", encode_duration(profile.min_rto)),
        ("max_rto", encode_duration(profile.max_rto)),
        (
            "naive_ack_counting",
            Value::Bool(profile.naive_ack_counting),
        ),
        ("fast_retransmit", Value::Bool(profile.fast_retransmit)),
        (
            "harsh_dupack_response",
            Value::Bool(profile.harsh_dupack_response),
        ),
        (
            "invalid_flags",
            Value::Str(
                match profile.invalid_flags {
                    InvalidFlagPolicy::BestEffort => "best_effort",
                    InvalidFlagPolicy::Ignore => "ignore",
                    InvalidFlagPolicy::RstAlwaysWins => "rst_always_wins",
                }
                .to_owned(),
            ),
        ),
        (
            "abort_style",
            Value::Str(
                match profile.abort_style {
                    AbortStyle::FinThenRst => "fin_then_rst",
                    AbortStyle::RstOnly => "rst_only",
                }
                .to_owned(),
            ),
        ),
        ("dsack", Value::Bool(profile.dsack)),
        (
            "sack_loss_evidence",
            Value::Bool(profile.sack_loss_evidence),
        ),
        ("sack_recovery", Value::Bool(profile.sack_recovery)),
        ("syn_retries", Value::U64(u64::from(profile.syn_retries))),
        ("time_wait", encode_duration(profile.time_wait)),
        ("app_close_delay", encode_duration(profile.app_close_delay)),
    ])
}

fn decode_tcp_profile(value: &Value) -> Result<Profile, JsonError> {
    let invalid_flags = match value.req_str("invalid_flags")? {
        "best_effort" => InvalidFlagPolicy::BestEffort,
        "ignore" => InvalidFlagPolicy::Ignore,
        "rst_always_wins" => InvalidFlagPolicy::RstAlwaysWins,
        other => {
            return Err(JsonError::decode(format!(
                "unknown invalid_flags policy `{other}`"
            )))
        }
    };
    let abort_style = match value.req_str("abort_style")? {
        "fin_then_rst" => AbortStyle::FinThenRst,
        "rst_only" => AbortStyle::RstOnly,
        other => return Err(JsonError::decode(format!("unknown abort_style `{other}`"))),
    };
    Ok(Profile {
        name: value.req_str("name")?.to_owned(),
        initial_cwnd_segments: decode_u32(value, "initial_cwnd_segments")?,
        max_data_retries: decode_u32(value, "max_data_retries")?,
        min_rto: decode_duration(value.req("min_rto")?, "min_rto")?,
        max_rto: decode_duration(value.req("max_rto")?, "max_rto")?,
        naive_ack_counting: value.req_bool("naive_ack_counting")?,
        fast_retransmit: value.req_bool("fast_retransmit")?,
        harsh_dupack_response: value.req_bool("harsh_dupack_response")?,
        invalid_flags,
        abort_style,
        dsack: value.req_bool("dsack")?,
        sack_loss_evidence: value.req_bool("sack_loss_evidence")?,
        sack_recovery: value.req_bool("sack_recovery")?,
        syn_retries: decode_u32(value, "syn_retries")?,
        time_wait: decode_duration(value.req("time_wait")?, "time_wait")?,
        app_close_delay: decode_duration(value.req("app_close_delay")?, "app_close_delay")?,
    })
}

fn encode_dccp_profile(profile: &DccpProfile) -> Value {
    obj([
        ("name", Value::Str(profile.name.clone())),
        (
            "initial_cwnd_packets",
            Value::U64(u64::from(profile.initial_cwnd_packets)),
        ),
        ("seq_window", Value::U64(profile.seq_window)),
        ("ack_ratio", Value::U64(u64::from(profile.ack_ratio))),
        ("tx_qlen", Value::U64(profile.tx_qlen as u64)),
        ("min_rto", encode_duration(profile.min_rto)),
        ("max_rto", encode_duration(profile.max_rto)),
        (
            "request_retries",
            Value::U64(u64::from(profile.request_retries)),
        ),
        (
            "close_retries",
            Value::U64(u64::from(profile.close_retries)),
        ),
        (
            "type_check_before_seq",
            Value::Bool(profile.type_check_before_seq),
        ),
        ("time_wait", encode_duration(profile.time_wait)),
    ])
}

fn decode_dccp_profile(value: &Value) -> Result<DccpProfile, JsonError> {
    Ok(DccpProfile {
        name: value.req_str("name")?.to_owned(),
        initial_cwnd_packets: decode_u32(value, "initial_cwnd_packets")?,
        seq_window: value.req_u64("seq_window")?,
        ack_ratio: decode_u32(value, "ack_ratio")?,
        tx_qlen: decode_usize(value, "tx_qlen")?,
        min_rto: decode_duration(value.req("min_rto")?, "min_rto")?,
        max_rto: decode_duration(value.req("max_rto")?, "max_rto")?,
        request_retries: decode_u32(value, "request_retries")?,
        close_retries: decode_u32(value, "close_retries")?,
        type_check_before_seq: value.req_bool("type_check_before_seq")?,
        time_wait: decode_duration(value.req("time_wait")?, "time_wait")?,
    })
}

fn encode_topology(topology: &TopologySpec) -> Value {
    match topology {
        TopologySpec::Dumbbell(d) => obj([
            ("kind", Value::Str("dumbbell".to_owned())),
            ("bottleneck", encode_link(&d.bottleneck)),
            ("access", encode_link(&d.access)),
        ]),
        TopologySpec::Generated(g) => obj([
            ("kind", Value::Str(g.kind.label().to_owned())),
            ("hosts", Value::U64(g.hosts as u64)),
            // The topology seed is carried explicitly: ensemble reseeding
            // rewrites the scenario seed but must leave the generated
            // network identical across members.
            ("topo_seed", Value::U64(g.seed)),
            ("bottleneck", encode_link(&g.bottleneck)),
            ("access", encode_link(&g.access)),
        ]),
    }
}

fn decode_topology(value: &Value) -> Result<TopologySpec, JsonError> {
    let bottleneck = decode_link(value.req("bottleneck")?)?;
    let access = decode_link(value.req("access")?)?;
    match value.req_str("kind")? {
        "dumbbell" => Ok(TopologySpec::Dumbbell(DumbbellSpec { bottleneck, access })),
        label => {
            let kind = TopologyKind::from_label(label)
                .ok_or_else(|| JsonError::decode(format!("unknown topology kind `{label}`")))?;
            Ok(TopologySpec::Generated(TopologyGenSpec {
                kind,
                hosts: decode_usize(value, "hosts")?,
                seed: value.req_u64("topo_seed")?,
                bottleneck,
                access,
            }))
        }
    }
}

fn encode_flows(flows: &Option<Vec<FlowGroup>>) -> Value {
    match flows {
        None => Value::Null,
        Some(groups) => Value::Arr(
            groups
                .iter()
                .map(|g| {
                    obj([
                        ("role", Value::Str(g.role.label().to_owned())),
                        ("count", Value::U64(g.count as u64)),
                    ])
                })
                .collect(),
        ),
    }
}

fn decode_flows(value: &Value) -> Result<Option<Vec<FlowGroup>>, JsonError> {
    match value {
        Value::Null => Ok(None),
        Value::Arr(entries) => {
            let mut groups = Vec::with_capacity(entries.len());
            for entry in entries {
                let label = entry.req_str("role")?;
                let role = FlowRole::from_label(label)
                    .ok_or_else(|| JsonError::decode(format!("unknown flow role `{label}`")))?;
                groups.push(FlowGroup {
                    role,
                    count: decode_usize(entry, "count")?,
                });
            }
            Ok(Some(groups))
        }
        _ => Err(JsonError::decode("flows: expected null or array")),
    }
}

pub(crate) fn encode_scenario(spec: &ScenarioSpec) -> Value {
    let (protocol, profile) = match &spec.protocol {
        ProtocolKind::Tcp(profile) => ("tcp", encode_tcp_profile(profile)),
        ProtocolKind::Dccp(profile) => ("dccp", encode_dccp_profile(profile)),
    };
    obj([
        ("protocol", Value::Str(protocol.to_owned())),
        ("profile", profile),
        ("topology", encode_topology(&spec.topology)),
        ("flows", encode_flows(&spec.flows)),
        ("data_secs", Value::U64(spec.data_secs)),
        ("grace_secs", Value::U64(spec.grace_secs)),
        ("seed", Value::U64(spec.seed)),
        (
            "target_connections",
            Value::U64(spec.target_connections as u64),
        ),
        (
            "event_budget",
            match spec.event_budget {
                None => Value::Null,
                Some(budget) => Value::U64(budget),
            },
        ),
    ])
}

pub(crate) fn decode_scenario(value: &Value) -> Result<ScenarioSpec, JsonError> {
    let profile = value.req("profile")?;
    let protocol = match value.req_str("protocol")? {
        "tcp" => ProtocolKind::Tcp(decode_tcp_profile(profile)?),
        "dccp" => ProtocolKind::Dccp(decode_dccp_profile(profile)?),
        other => return Err(JsonError::decode(format!("unknown protocol `{other}`"))),
    };
    let event_budget = match value.req("event_budget")? {
        Value::Null => None,
        budget => Some(
            budget
                .as_u64()
                .ok_or_else(|| JsonError::decode("event_budget: expected integer"))?,
        ),
    };
    Ok(ScenarioSpec {
        protocol,
        topology: decode_topology(value.req("topology")?)?,
        flows: decode_flows(value.req("flows")?)?,
        data_secs: value.req_u64("data_secs")?,
        grace_secs: value.req_u64("grace_secs")?,
        seed: value.req_u64("seed")?,
        target_connections: decode_usize(value, "target_connections")?,
        event_budget,
    })
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Everything a worker needs to stand up its executors, decoded from the
/// controller's `hello`.
struct WorkerJob {
    shard: u64,
    digest: u64,
    spec: ScenarioSpec,
    threshold: f64,
    baseline_reps: usize,
    retest: bool,
    snapshot_fork: bool,
    memoize: bool,
    deadline: Option<Duration>,
    stall_retries: usize,
    stall_backoff: Duration,
}

fn encode_hello(shard: usize, digest: u64, config: &CampaignConfig, memoize: bool) -> Value {
    obj([
        ("type", Value::Str("hello".to_owned())),
        ("version", Value::U64(WIRE_VERSION)),
        ("shard", Value::U64(shard as u64)),
        ("digest", Value::U64(digest)),
        ("scenario", encode_scenario(&config.scenario)),
        ("threshold", Value::F64(config.threshold)),
        ("baseline_reps", Value::U64(config.baseline_reps as u64)),
        ("retest", Value::Bool(config.retest)),
        ("snapshot_fork", Value::Bool(config.snapshot_fork)),
        ("memoize", Value::Bool(memoize)),
        (
            "deadline_nanos",
            match config.deadline {
                None => Value::Null,
                Some(deadline) => Value::U64(deadline.as_nanos() as u64),
            },
        ),
        ("stall_retries", Value::U64(config.stall_retries as u64)),
        (
            "stall_backoff_nanos",
            Value::U64(config.stall_backoff.as_nanos() as u64),
        ),
    ])
}

fn decode_hello(message: &Value) -> Result<WorkerJob, JsonError> {
    let version = message.req_u64("version")?;
    if version != WIRE_VERSION {
        return Err(JsonError::decode(format!(
            "shard wire version mismatch: controller speaks {version}, worker speaks {WIRE_VERSION}"
        )));
    }
    let deadline = match message.req("deadline_nanos")? {
        Value::Null => None,
        nanos => Some(Duration::from_nanos(nanos.as_u64().ok_or_else(|| {
            JsonError::decode("deadline_nanos: expected integer")
        })?)),
    };
    Ok(WorkerJob {
        shard: message.req_u64("shard")?,
        digest: message.req_u64("digest")?,
        spec: decode_scenario(message.req("scenario")?)?,
        threshold: message.req_f64("threshold")?,
        baseline_reps: decode_usize(message, "baseline_reps")?,
        retest: message.req_bool("retest")?,
        snapshot_fork: message.req_bool("snapshot_fork")?,
        memoize: message.req_bool("memoize")?,
        deadline,
        stall_retries: decode_usize(message, "stall_retries")?,
        stall_backoff: Duration::from_nanos(message.req_u64("stall_backoff_nanos")?),
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// An [`Observer`] that only accumulates counters, so a worker can ship
/// per-evaluation counter deltas to the controller. Spans and histogram
/// samples are deliberately dropped: in a single-process run they land
/// only in the manifest's (timing) section, which determinism comparisons
/// strip, so reproducing them buys nothing.
#[derive(Debug, Default)]
struct CounterAccumulator {
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

impl CounterAccumulator {
    /// Takes and resets the accumulated counter deltas.
    fn drain(&self) -> BTreeMap<&'static str, u64> {
        std::mem::take(&mut *self.counters.lock().unwrap())
    }
}

impl Observer for CounterAccumulator {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }
}

/// Parses the `SNAKE_SHARD_EXIT_AFTER="<shard>:<k>"` test hook: the
/// matching worker calls `process::exit` after sending `k` outcomes
/// (`k = 0` exits right after the `ready` handshake). Used by the
/// shard-death determinism tests; ignored unless the shard index matches.
fn exit_after_hook(shard: u64) -> Option<u64> {
    let spec = env::var("SNAKE_SHARD_EXIT_AFTER").ok()?;
    let (target, count) = spec.split_once(':')?;
    if target.trim().parse::<u64>().ok()? == shard {
        count.trim().parse().ok()
    } else {
        None
    }
}

/// Runs the `snake shard-worker` loop: connect to the controller at
/// `addr`, handshake, evaluate the strategy ranges it sends, and stream
/// back one `outcome` message per strategy. Returns when the controller
/// sends `shutdown` or closes the connection.
///
/// The worker is stateless between ranges and owns no campaign artifacts:
/// no journal, no memo store, no verdict ledger. If it dies mid-range the
/// controller re-dispatches the unfinished indices elsewhere, and
/// already-admitted outcomes are never re-run.
pub fn run_shard_worker(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let hello = read_message(&mut reader)?
        .ok_or_else(|| protocol_err("controller closed the connection before hello"))?;
    if hello.req_str("type").map_err(decode_err)? != "hello" {
        return Err(protocol_err("expected hello as the first message"));
    }
    let job = decode_hello(&hello).map_err(decode_err)?;
    let digest = scenario_digest(&job.spec, job.threshold, job.baseline_reps);
    if digest != job.digest {
        // Echo what we computed anyway: the controller reports the
        // mismatch and degrades to in-process execution.
        let ready = obj([
            ("type", Value::Str("ready".to_owned())),
            ("digest", Value::U64(digest)),
        ]);
        write_line(&mut writer, &ready)?;
        return Err(protocol_err(format!(
            "scenario digest mismatch: controller sent {:016x}, decoded spec hashes to {digest:016x}",
            job.digest
        )));
    }
    let exit_after = exit_after_hook(job.shard);

    // Stand up the executors exactly as `Campaign::run` does, with a
    // counter-accumulating observer so evaluation tallies can be shipped
    // to the controller per outcome.
    let accumulator = Arc::new(CounterAccumulator::default());
    let observer: Arc<dyn Observer> = accumulator.clone();
    let exec_options = ExecutorOptions {
        snapshot_fork: job.snapshot_fork,
        memoize: job.memoize,
        halt_arming: true,
        observer: observer.clone(),
    };
    let exec = PlannedExecutor::new(&job.spec, exec_options.clone());
    let baseline = exec.baseline().clone();
    if !baseline_valid(&baseline) {
        return Err(protocol_err("worker baseline is invalid"));
    }
    let retest_spec = ScenarioSpec {
        seed: job.spec.seed.wrapping_add(1),
        ..job.spec.clone()
    };
    let retest_exec = if job.retest {
        Some(PlannedExecutor::new(&retest_spec, exec_options))
    } else {
        None
    };
    let envelope = build_envelope(&job.spec, &baseline, job.baseline_reps, job.threshold);
    let retest_envelope = retest_exec.as_ref().map(|retest| {
        build_envelope(
            &retest_spec,
            retest.baseline(),
            job.baseline_reps,
            job.threshold,
        )
    });

    let config = CampaignConfig {
        scenario: job.spec,
        params: GenerationParams::default(),
        threshold: job.threshold,
        parallelism: 1,
        max_strategies: None,
        feedback_rounds: 1,
        retest: job.retest,
        journal: None,
        resume: false,
        progress_every: 0,
        snapshot_fork: job.snapshot_fork,
        memoize: job.memoize,
        memo_store: None,
        fault_hook: None,
        chaos: None,
        baseline_reps: job.baseline_reps,
        deadline: job.deadline,
        stall_retries: job.stall_retries,
        stall_backoff: job.stall_backoff,
        observer,
        shards: 0,
        shard_listen: None,
        shard_worker_bin: None,
    };
    let shared = Arc::new(SharedCtx {
        exec,
        retest_exec,
        config,
        memoize: job.memoize,
        envelope,
        retest_envelope,
        escalated: AtomicUsize::new(0),
        stalls: AtomicUsize::new(0),
        quarantined: AtomicUsize::new(0),
    });
    // Setup cost (baseline, plan, envelopes) accrued counters of its own;
    // the controller already counted its setup once, so discard ours
    // rather than double-reporting.
    accumulator.drain();

    let ready = obj([
        ("type", Value::Str("ready".to_owned())),
        ("digest", Value::U64(digest)),
    ]);
    write_line(&mut writer, &ready)?;
    let mut sent: u64 = 0;
    if exit_after == Some(sent) {
        std::process::exit(EXIT_AFTER_CODE);
    }

    while let Some(message) = read_message(&mut reader)? {
        match message.req_str("type").map_err(decode_err)? {
            "range" => {
                accumulator.counter_add("shard.outcome_batches", 1);
                let start = message.req_u64("start").map_err(decode_err)?;
                let strategies = message
                    .req("strategies")
                    .map_err(decode_err)?
                    .as_arr()
                    .ok_or_else(|| protocol_err("range.strategies: expected array"))?;
                for (offset, encoded) in strategies.iter().enumerate() {
                    let strategy = Strategy::from_json(encoded).map_err(decode_err)?;
                    let began = Instant::now();
                    let outcome = evaluate_watched(&shared, strategy);
                    let busy_nanos = began.elapsed().as_nanos() as u64;
                    let counters = accumulator.drain();
                    let counters_obj = Value::Obj(
                        counters
                            .into_iter()
                            .map(|(name, delta)| (name.to_owned(), Value::U64(delta)))
                            .collect(),
                    );
                    let reply = obj([
                        ("type", Value::Str("outcome".to_owned())),
                        ("index", Value::U64(start + offset as u64)),
                        ("busy_nanos", Value::U64(busy_nanos)),
                        ("counters", counters_obj),
                        ("outcome", outcome.to_json()),
                    ]);
                    queue_line(&mut writer, &reply)?;
                    sent += 1;
                    if exit_after == Some(sent) {
                        // The hook simulates a worker dying *after* this
                        // outcome reached the wire, so drain the batch
                        // buffer before exiting.
                        writer.flush()?;
                        std::process::exit(EXIT_AFTER_CODE);
                    }
                }
                writer.flush()?;
            }
            "shutdown" => break,
            other => return Err(protocol_err(format!("unexpected message type `{other}`"))),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// One message from a shard's reader thread to the dispatcher.
pub(crate) enum ShardEvent {
    /// A worker finished one strategy.
    Outcome {
        /// Which shard produced it.
        shard: usize,
        /// Global strategy index within the batch.
        index: usize,
        /// Worker wall-clock spent evaluating, for busy/idle accounting.
        busy_nanos: u64,
        /// Counter deltas the worker's observer accumulated.
        counters: Vec<(String, u64)>,
        /// The evaluated outcome, in journal encoding.
        outcome: Box<StrategyOutcome>,
    },
    /// The shard's connection closed or produced an undecodable message.
    Dead {
        /// Which shard died.
        shard: usize,
    },
}

fn decode_outcome_event(shard: usize, message: &Value) -> Result<ShardEvent, JsonError> {
    if message.req_str("type")? != "outcome" {
        return Err(JsonError::decode("expected an outcome message"));
    }
    let index = message.req_u64("index")?;
    let index =
        usize::try_from(index).map_err(|_| JsonError::decode("outcome index overflows usize"))?;
    let counters = match message.req("counters")? {
        Value::Obj(pairs) => pairs
            .iter()
            .map(|(name, delta)| {
                delta
                    .as_u64()
                    .map(|delta| (name.clone(), delta))
                    .ok_or_else(|| JsonError::decode(format!("counter {name}: expected integer")))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(JsonError::decode("outcome.counters: expected object")),
    };
    Ok(ShardEvent::Outcome {
        shard,
        index,
        busy_nanos: message.req_u64("busy_nanos")?,
        counters,
        outcome: Box::new(StrategyOutcome::from_json(message.req("outcome")?)?),
    })
}

fn shutdown_message() -> Value {
    obj([("type", Value::Str("shutdown".to_owned()))])
}

/// Waits for `child` to exit, escalating to a kill after [`REAP_TIMEOUT`].
fn reap(child: &mut Child) {
    let deadline = Instant::now() + REAP_TIMEOUT;
    loop {
        match child.try_wait() {
            Ok(Some(_)) | Err(_) => return,
            Ok(None) => {}
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One connected (or once-connected) worker process, controller side.
struct ShardLink {
    /// A clone of the connection, kept for `shutdown(2)` even after the
    /// writer is dropped.
    socket: TcpStream,
    /// Send half; `None` once the shard is declared dead.
    writer: Option<BufWriter<TcpStream>>,
    /// The spawned worker process (absent for `--connect` workers).
    child: Option<Child>,
    /// The reader thread draining this shard's outcome stream.
    reader: Option<JoinHandle<()>>,
    /// Whether the handshake (ready + digest match) succeeded.
    handshaked: bool,
    /// Total worker-reported evaluation time.
    busy_nanos: u64,
    /// Outcomes received from this shard.
    outcomes: u64,
}

/// The controller's set of worker processes for one campaign, plus the
/// merged event stream their reader threads feed.
pub(crate) struct ShardPool {
    links: Vec<ShardLink>,
    events: mpsc::Receiver<ShardEvent>,
    started: Instant,
    /// Shards that completed the handshake (the `shard.workers` counter).
    workers: usize,
    /// Ranges handed to workers, including re-dispatches.
    pub(crate) ranges_dispatched: u64,
    /// Ranges re-dispatched after a shard death or protocol violation.
    pub(crate) ranges_redispatched: u64,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("links", &self.links.len())
            .field("workers", &self.workers)
            .field("ranges_dispatched", &self.ranges_dispatched)
            .field("ranges_redispatched", &self.ranges_redispatched)
            .finish()
    }
}

fn spawn_reader(
    shard: usize,
    mut reader: BufReader<TcpStream>,
    tx: mpsc::Sender<ShardEvent>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("snake-shard-rx-{shard}"))
        .spawn(move || loop {
            let event = match read_message(&mut reader) {
                Ok(Some(message)) => {
                    decode_outcome_event(shard, &message).unwrap_or(ShardEvent::Dead { shard })
                }
                Ok(None) | Err(_) => ShardEvent::Dead { shard },
            };
            let dead = matches!(event, ShardEvent::Dead { .. });
            if tx.send(event).is_err() || dead {
                break;
            }
        })
        .expect("spawning a shard reader thread cannot fail")
}

/// Accepts up to `want` connections from spawned children, polling so a
/// child that died on startup does not hang the controller forever.
fn accept_children(listener: &TcpListener, want: usize, children: &mut [Child]) -> Vec<TcpStream> {
    listener
        .set_nonblocking(true)
        .expect("loopback listener supports nonblocking");
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut accepted = Vec::new();
    while accepted.len() < want && Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .expect("accepted stream supports blocking");
                accepted.push(stream);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                // A connected worker blocks on its socket, so an exited
                // child is one that failed before connecting. Once every
                // still-running child is accounted for by an accepted
                // stream, no further connection can arrive.
                let exited = children
                    .iter_mut()
                    .filter_map(|child| child.try_wait().ok().flatten())
                    .count();
                if children.len() - exited <= accepted.len() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    accepted
}

impl ShardPool {
    /// Spawns (or accepts) the configured worker processes, handshakes
    /// each one, and starts their reader threads. Shards that fail to
    /// connect, echo a wrong digest, or die during the handshake are
    /// simply absent from the live set; the caller degrades to in-process
    /// execution when `live()` comes back zero.
    pub(crate) fn launch(config: &CampaignConfig, memoize: bool) -> io::Result<ShardPool> {
        let digest = scenario_digest(&config.scenario, config.threshold, config.baseline_reps);
        let (tx, rx) = mpsc::channel();
        let mut streams: Vec<(TcpStream, Option<Child>)> = Vec::new();

        if let Some(listen) = &config.shard_listen {
            let listener = TcpListener::bind(listen.as_str())?;
            let addr = listener.local_addr()?;
            eprintln!(
                "snake: shard controller listening on {addr} — start {} `snake shard-worker --connect {addr}` process(es)",
                config.shards
            );
            for _ in 0..config.shards {
                let (stream, _) = listener.accept()?;
                streams.push((stream, None));
            }
        } else {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let worker_bin = match &config.shard_worker_bin {
                Some(path) => path.clone(),
                None => env::current_exe()?,
            };
            let mut children = Vec::new();
            for _ in 0..config.shards {
                let spawned = Command::new(&worker_bin)
                    .args(["shard-worker", "--connect", &addr.to_string()])
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit())
                    .spawn();
                match spawned {
                    Ok(child) => children.push(child),
                    Err(err) => {
                        eprintln!("snake: failed to spawn shard worker {worker_bin:?}: {err}");
                    }
                }
            }
            let accepted = accept_children(&listener, children.len(), &mut children);
            // Pair accepted streams with children positionally for
            // reaping only — shard identity comes from the hello message,
            // so the pairing does not need to match spawn order.
            let mut children = children.into_iter();
            for stream in accepted {
                streams.push((stream, children.next()));
            }
            // Children beyond the accepted count never connected; reap
            // them now rather than leaking processes.
            for mut orphan in children {
                orphan.kill().ok();
                orphan.wait().ok();
            }
        }

        let mut links = Vec::new();
        let mut workers = 0;
        for (shard, (stream, child)) in streams.into_iter().enumerate() {
            stream.set_nodelay(true).ok();
            let link = Self::handshake(shard, stream, child, digest, config, memoize, &tx);
            workers += usize::from(link.handshaked);
            links.push(link);
        }
        Ok(ShardPool {
            links,
            events: rx,
            started: Instant::now(),
            workers,
            ranges_dispatched: 0,
            ranges_redispatched: 0,
        })
    }

    /// Runs the hello/ready handshake on one accepted stream. Any failure
    /// produces a dead link (kept only so its child is reaped later).
    fn handshake(
        shard: usize,
        stream: TcpStream,
        child: Option<Child>,
        digest: u64,
        config: &CampaignConfig,
        memoize: bool,
        tx: &mpsc::Sender<ShardEvent>,
    ) -> ShardLink {
        let mut link = ShardLink {
            socket: stream.try_clone().unwrap_or(stream),
            writer: None,
            child,
            reader: None,
            handshaked: false,
            busy_nanos: 0,
            outcomes: 0,
        };
        let attempt = (|| -> io::Result<(BufWriter<TcpStream>, BufReader<TcpStream>)> {
            let mut writer = BufWriter::new(link.socket.try_clone()?);
            write_line(&mut writer, &encode_hello(shard, digest, config, memoize))?;
            let read_half = link.socket.try_clone()?;
            read_half.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            let mut reader = BufReader::new(read_half);
            let ready = read_message(&mut reader)?
                .ok_or_else(|| protocol_err("worker closed the connection before ready"))?;
            if ready.req_str("type").map_err(decode_err)? != "ready" {
                return Err(protocol_err("expected a ready message"));
            }
            let echoed = ready.req_u64("digest").map_err(decode_err)?;
            if echoed != digest {
                return Err(protocol_err(format!(
                    "scenario digest mismatch: sent {digest:016x}, worker decoded {echoed:016x}"
                )));
            }
            reader.get_ref().set_read_timeout(None)?;
            Ok((writer, reader))
        })();
        match attempt {
            Ok((writer, reader)) => {
                link.writer = Some(writer);
                link.reader = Some(spawn_reader(shard, reader, tx.clone()));
                link.handshaked = true;
            }
            Err(err) => {
                eprintln!("snake: shard {shard} failed its handshake and was dropped: {err}");
                link.socket.shutdown(Shutdown::Both).ok();
            }
        }
        link
    }

    /// Shards currently accepting work.
    pub(crate) fn live(&self) -> usize {
        self.links
            .iter()
            .filter(|link| link.writer.is_some())
            .count()
    }

    /// Whether one specific shard is still accepting work.
    pub(crate) fn is_live(&self, shard: usize) -> bool {
        self.links
            .get(shard)
            .is_some_and(|link| link.writer.is_some())
    }

    /// Total link slots (dead ones included); shard indices range over this.
    pub(crate) fn len(&self) -> usize {
        self.links.len()
    }

    /// Sends one contiguous range to a shard. Returns `false` — after
    /// killing the link — when the write fails, so the caller re-queues.
    pub(crate) fn send_range(
        &mut self,
        shard: usize,
        start: usize,
        strategies: &[Strategy],
    ) -> bool {
        let Some(writer) = self
            .links
            .get_mut(shard)
            .and_then(|link| link.writer.as_mut())
        else {
            return false;
        };
        let message = obj([
            ("type", Value::Str("range".to_owned())),
            ("start", Value::U64(start as u64)),
            (
                "strategies",
                Value::Arr(strategies.iter().map(ToJson::to_json).collect()),
            ),
        ]);
        if write_line(writer, &message).is_err() {
            self.kill(shard);
            return false;
        }
        self.ranges_dispatched += 1;
        true
    }

    /// Declares a shard dead: drops its writer and shuts the socket down
    /// (which also unblocks its reader thread into an EOF).
    pub(crate) fn kill(&mut self, shard: usize) {
        if let Some(link) = self.links.get_mut(shard) {
            link.writer = None;
            link.socket.shutdown(Shutdown::Both).ok();
        }
    }

    /// Credits one received outcome to a shard's busy-time tally.
    pub(crate) fn record_busy(&mut self, shard: usize, busy_nanos: u64) {
        if let Some(link) = self.links.get_mut(shard) {
            link.busy_nanos += busy_nanos;
            link.outcomes += 1;
        }
    }

    /// Blocks for the next event from any shard. `None` means every
    /// reader thread is gone — the pool is effectively dead.
    pub(crate) fn next_event(&self) -> Option<ShardEvent> {
        self.events.recv().ok()
    }

    /// Shuts every worker down, joins the reader threads, reaps spawned
    /// children, and reports per-shard tallies to `observer`: the
    /// `shard.workers` / `shard.ranges_dispatched` /
    /// `shard.ranges_redispatched` counters and one `shard.busy_nanos` /
    /// `shard.idle_nanos` histogram sample per handshaked shard.
    pub(crate) fn finish(&mut self, observer: &dyn Observer) {
        let lifetime = self.started.elapsed().as_nanos() as u64;
        self.teardown();
        observer.counter_add("shard.workers", self.workers as u64);
        observer.counter_add("shard.ranges_dispatched", self.ranges_dispatched);
        observer.counter_add("shard.ranges_redispatched", self.ranges_redispatched);
        for link in &self.links {
            if link.handshaked {
                observer.record("shard.busy_nanos", link.busy_nanos);
                observer.record("shard.idle_nanos", lifetime.saturating_sub(link.busy_nanos));
            }
        }
    }

    fn teardown(&mut self) {
        for link in &mut self.links {
            if let Some(mut writer) = link.writer.take() {
                write_line(&mut writer, &shutdown_message()).ok();
            }
            link.socket.shutdown(Shutdown::Both).ok();
        }
        for link in &mut self.links {
            if let Some(handle) = link.reader.take() {
                handle.join().ok();
            }
            if let Some(mut child) = link.child.take() {
                reap(&mut child);
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.teardown();
    }
}
