use std::collections::BTreeSet;

use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, ProxyReport, SeqChoice, Strategy,
    StrategyKind,
};

use crate::detect::Verdict;
use crate::scenario::ProtocolKind;

/// Parameter lists for the basic attacks — the knobs of §IV-C, chosen to
/// cover the magnitudes the paper's attacks need (for example 10×
/// duplication for the rate-limiting attack, multi-second delays for
/// Shrew-style batching).
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationParams {
    /// Drop probabilities in percent.
    pub drop_percents: Vec<u8>,
    /// Duplicate copy counts.
    pub duplicate_copies: Vec<u32>,
    /// Delays in seconds.
    pub delay_secs: Vec<f64>,
    /// Batch intervals in seconds.
    pub batch_secs: Vec<f64>,
    /// Injection repeat count for single-packet injections.
    pub inject_repeat: u32,
    /// hitseqwindow injection rate in packets per second.
    pub hitseq_rate_pps: u64,
    /// Cap on hitseqwindow packet count (covers the full 32-bit TCP space
    /// at window strides; necessarily only samples DCCP's 48-bit space,
    /// which is why those strategies were false positives in the paper).
    pub hitseq_max_count: u64,
}

impl Default for GenerationParams {
    fn default() -> GenerationParams {
        GenerationParams {
            drop_percents: vec![100, 50, 10],
            duplicate_copies: vec![1, 2, 10],
            delay_secs: vec![0.1, 1.0, 4.0],
            batch_secs: vec![0.5, 4.0],
            inject_repeat: 3,
            hitseq_rate_pps: 20_000,
            hitseq_max_count: 66_000,
        }
    }
}

/// Generates the strategy set for one protocol from the state tracker's
/// feedback (paper §IV-C / §V-A): for every `(endpoint, state, packet
/// type)` pair observed in prior runs, one strategy per basic attack
/// parameterisation; and for every observed state, the off-path injection
/// strategies.
///
/// `already` holds ids of pairs that were covered by earlier rounds, so the
/// controller can generate "a few at a time in response to feedback" as
/// new states and packet types appear under attack.
pub fn generate_strategies(
    protocol: &ProtocolKind,
    reports: &[&ProxyReport],
    params: &GenerationParams,
    next_id: &mut u64,
    already: &mut BTreeSet<String>,
) -> Vec<Strategy> {
    let spec = match protocol {
        ProtocolKind::Tcp(_) => snake_packet::tcp::tcp_spec(),
        ProtocolKind::Dccp(_) => snake_packet::dccp::dccp_spec(),
    };
    let injectable: &[&str] = match protocol {
        ProtocolKind::Tcp(_) => &["SYN", "RST", "ACK", "FIN+ACK", "DATA"],
        ProtocolKind::Dccp(_) => &["REQUEST", "DATA", "ACK", "CLOSE", "RESET", "SYNC"],
    };
    let hitseq_types: &[&str] = match protocol {
        ProtocolKind::Tcp(_) => &["RST", "SYN"],
        ProtocolKind::Dccp(_) => &["RESET", "DATA"],
    };
    let (seq_bits, window) = match protocol {
        ProtocolKind::Tcp(_) => (32u32, 65_535u64),
        ProtocolKind::Dccp(_) => (48u32, 100u64),
    };

    // Collect send-direction pairs and visited states from the reports.
    let mut pairs: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut states: BTreeSet<(String, String)> = BTreeSet::new();
    for report in reports {
        for (endpoint, state, ptype, dir, _count) in &report.observed {
            states.insert((endpoint.clone(), state.clone()));
            if dir == "send" {
                pairs.insert((endpoint.clone(), state.clone(), ptype.clone()));
            }
        }
    }

    // One bucket of candidate strategies per observed pair / state. The
    // buckets are emitted breadth-first (every pair's first variant before
    // any pair's second), so a controller that caps the strategy count
    // still covers the whole observed state space — the paper's
    // state-coverage premise (§IV-C) — instead of exhausting one pair's
    // parameter grid while later states go untested. Late-state triggers
    // also fork from late snapshots, which is what makes capped campaigns
    // fast under the snapshot planner.
    let mut buckets: Vec<Vec<StrategyKind>> = Vec::new();

    for (endpoint, state, ptype) in pairs {
        let key = format!("pair:{endpoint}:{state}:{ptype}");
        if !already.insert(key) {
            continue;
        }
        let endpoint = parse_endpoint(&endpoint);
        let mut bucket = Vec::new();
        let mut on_packet = |attack: BasicAttack| {
            bucket.push(StrategyKind::OnPacket {
                endpoint,
                state: state.clone(),
                packet_type: ptype.clone(),
                attack,
            });
        };
        for &p in &params.drop_percents {
            on_packet(BasicAttack::Drop { percent: p });
        }
        for &c in &params.duplicate_copies {
            on_packet(BasicAttack::Duplicate { copies: c });
        }
        for &s in &params.delay_secs {
            on_packet(BasicAttack::Delay { secs: s });
        }
        for &s in &params.batch_secs {
            on_packet(BasicAttack::Batch { secs: s });
        }
        on_packet(BasicAttack::Reflect);
        // Lies are emitted mutation-round-robin across fields (flag fields
        // first within each round) rather than field-major: a capped
        // controller then samples every field with its first mutation before
        // any field's second, and the flag Set(0)/Set(1) lies — half of
        // which the executor proves inert against the baseline and answers
        // for free — land inside the cap instead of behind one field's
        // whole mutation grid.
        let mut lie_fields: Vec<_> = spec.fields().iter().collect();
        lie_fields.sort_by_key(|f| !f.is_flag());
        let per_field: Vec<&[FieldMutation]> = lie_fields
            .iter()
            .map(|f| {
                if f.is_flag() {
                    FieldMutation::flag_mutations()
                } else {
                    FieldMutation::standard_mutations()
                }
            })
            .collect();
        let rounds = per_field.iter().map(|m| m.len()).max().unwrap_or(0);
        for round in 0..rounds {
            for (field, mutations) in lie_fields.iter().zip(&per_field) {
                if let Some(&m) = mutations.get(round) {
                    on_packet(BasicAttack::Lie {
                        field: field.name().to_owned(),
                        mutation: m,
                    });
                }
            }
        }
        buckets.push(bucket);
    }

    for (endpoint, state) in states {
        let key = format!("state:{endpoint}:{state}");
        if !already.insert(key) {
            continue;
        }
        let endpoint = parse_endpoint(&endpoint);
        let mut bucket = Vec::new();
        let mut push = |kind: StrategyKind| bucket.push(kind);
        for &ptype in injectable {
            for seq in [SeqChoice::Zero, SeqChoice::Random, SeqChoice::Max] {
                for direction in [InjectDirection::ToClient, InjectDirection::ToServer] {
                    push(StrategyKind::OnState {
                        endpoint,
                        state: state.clone(),
                        attack: InjectionAttack::Inject {
                            packet_type: ptype.to_owned(),
                            seq,
                            direction,
                            repeat: params.inject_repeat,
                        },
                    });
                }
            }
        }
        for &ptype in hitseq_types {
            for direction in [InjectDirection::ToClient, InjectDirection::ToServer] {
                let space = if seq_bits >= 64 {
                    u64::MAX
                } else {
                    1u64 << seq_bits
                };
                let count = (space / window.max(1))
                    .saturating_add(2)
                    .min(params.hitseq_max_count);
                push(StrategyKind::OnState {
                    endpoint,
                    state: state.clone(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: ptype.to_owned(),
                        direction,
                        stride: window,
                        count,
                        rate_pps: params.hitseq_rate_pps,
                        inert: false,
                    },
                });
            }
        }
        buckets.push(bucket);
    }

    // Breadth-first emission: variant 0 of every bucket, then variant 1 of
    // every bucket, and so on until all buckets are drained.
    let mut out = Vec::new();
    let mut iters: Vec<_> = buckets.into_iter().map(Vec::into_iter).collect();
    loop {
        let mut emitted = false;
        for it in &mut iters {
            if let Some(kind) = it.next() {
                out.push(Strategy { id: *next_id, kind });
                *next_id += 1;
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
    }
    out
}

fn parse_endpoint(s: &str) -> Endpoint {
    if s == "client" {
        Endpoint::Client
    } else {
        Endpoint::Server
    }
}

/// Header fields whose in-transit modification is impossible for both a
/// malicious client (it controls its own stack, not the wire) and an
/// off-path attacker: addressing and framing. Flagged lie strategies on
/// these fields are classified on-path, as the paper does for "modifying
/// the source or destination ports or the header size" (§VI-A).
const STRUCTURAL_FIELDS: &[&str] = &[
    "src_port",
    "dst_port",
    "data_offset",
    "checksum",
    "reserved",
    "res",
    "x",
    "ccval",
    "cscov",
    "ack_reserved",
];

/// Classifies a strategy as requiring an on-path attacker (paper §VI-A:
/// such findings are excluded because the protocols were never designed to
/// resist them).
///
/// Two cases: lying about structural/addressing fields (nobody but a
/// man-in-the-middle can corrupt those), and lying about the *content* of
/// packets the server sent (a malicious client can drop, delay, or ignore
/// what it receives, but cannot rewrite a packet's fields in transit).
pub fn is_on_path(strategy: &Strategy) -> bool {
    match &strategy.kind {
        StrategyKind::OnPacket {
            endpoint,
            attack: BasicAttack::Lie { field, .. },
            ..
        } => STRUCTURAL_FIELDS.contains(&field.as_str()) || *endpoint == Endpoint::Server,
        _ => false,
    }
}

/// Single-bit flag fields (probing these reveals how the implementation
/// handles invalid combinations — a genuine finding even when the only
/// measured effect hits the prober's own connection).
const TCP_FLAG_FIELDS: &[&str] = &["urg", "ack_flag", "psh", "rst", "syn", "fin"];

/// Classifies a flagged strategy as *self-denial*: the only measured
/// effect is the attacker breaking or slowing its own connection through
/// its own traffic, which "a malicious client could simply" achieve by not
/// connecting at all (§VI-A's reasoning for discarding such strategies
/// alongside the on-path ones). Strategies with any externally visible
/// effect — leaked server sockets, throughput gain, harm to the competing
/// flow — are never self-denial, and neither are duplication (the
/// rate-limiting attack), reflection (spoofable off-path), or flag probes
/// (fingerprinting).
pub fn is_self_denial(strategy: &Strategy, verdict: &Verdict) -> bool {
    if verdict.socket_leak || verdict.throughput_gain || verdict.competing_degradation {
        return false;
    }
    if !(verdict.establishment_prevented || verdict.throughput_degradation) {
        return false;
    }
    match &strategy.kind {
        StrategyKind::OnPacket { attack, .. } | StrategyKind::OnNthPacket { attack, .. } => {
            match attack {
                BasicAttack::Drop { .. }
                | BasicAttack::Delay { .. }
                | BasicAttack::Batch { .. } => true,
                BasicAttack::Lie { field, mutation } => {
                    // Flag probes reveal implementation behaviour
                    // (fingerprinting) and small arithmetic on sequencing
                    // fields is replicable by an off-path attacker who
                    // sniffs and spoofs an *additional* in-window packet —
                    // the paper's DCCP in-window modification attack
                    // (§VI-B.2: "an attacker does not have to be an
                    // endpoint"). Neither is self-denial.
                    let flag_probe = TCP_FLAG_FIELDS.contains(&field.as_str());
                    let seq_arith = (field == "seq" || field == "ack")
                        && matches!(mutation, FieldMutation::Add(_) | FieldMutation::Sub(_));
                    !(flag_probe || seq_arith)
                }
                BasicAttack::Duplicate { .. } | BasicAttack::Reflect => false,
            }
        }
        StrategyKind::OnState { .. } | StrategyKind::AtTime { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_tcp::Profile;

    fn fake_report() -> ProxyReport {
        let mut r = ProxyReport::default();
        for (e, s, p, d) in [
            ("client", "CLOSED", "SYN", "send"),
            ("client", "SYN_SENT", "SYN+ACK", "recv"),
            ("client", "ESTABLISHED", "ACK", "send"),
            ("server", "LISTEN", "SYN", "recv"),
            ("server", "SYN_RECEIVED", "SYN+ACK", "send"),
            ("server", "ESTABLISHED", "DATA", "send"),
        ] {
            r.observed
                .push((e.into(), s.into(), p.into(), d.into(), 10));
        }
        r
    }

    #[test]
    fn generates_per_pair_and_per_state() {
        let report = fake_report();
        let mut next_id = 0;
        let mut seen = BTreeSet::new();
        let strategies = generate_strategies(
            &ProtocolKind::Tcp(Profile::linux_3_13()),
            &[&report],
            &GenerationParams::default(),
            &mut next_id,
            &mut seen,
        );
        // 4 send pairs; per pair: 3 drop + 3 dup + 3 delay + 2 batch +
        // 1 reflect + (9 non-flag × 8 + 6 flag × 2) lie = 96.
        let per_pair = 3 + 3 + 3 + 2 + 1 + 9 * 8 + 6 * 2;
        // 6 (endpoint, state) combos; per state: 5 types × 3 seq × 2 dir
        // inject + 2 types × 2 dir hitseq = 34.
        let per_state = 5 * 3 * 2 + 2 * 2;
        assert_eq!(strategies.len(), 4 * per_pair + 6 * per_state);
        // Ids are unique and sequential.
        assert_eq!(next_id as usize, strategies.len());
    }

    #[test]
    fn regeneration_is_incremental() {
        let report = fake_report();
        let mut next_id = 0;
        let mut seen = BTreeSet::new();
        let protocol = ProtocolKind::Tcp(Profile::linux_3_13());
        let params = GenerationParams::default();
        let first = generate_strategies(&protocol, &[&report], &params, &mut next_id, &mut seen);
        let again = generate_strategies(&protocol, &[&report], &params, &mut next_id, &mut seen);
        assert!(!first.is_empty());
        assert!(again.is_empty(), "same feedback yields no new strategies");

        // A new state appearing under attack yields only its increment.
        let mut r2 = fake_report();
        r2.observed.push((
            "server".into(),
            "CLOSE_WAIT".into(),
            "DATA".into(),
            "send".into(),
            5,
        ));
        let more = generate_strategies(&protocol, &[&r2], &params, &mut next_id, &mut seen);
        let per_pair = 3 + 3 + 3 + 2 + 1 + 9 * 8 + 6 * 2;
        let per_state = 5 * 3 * 2 + 2 * 2;
        assert_eq!(more.len(), per_pair + per_state);
    }

    #[test]
    fn hitseqwindow_covers_tcp_space_but_samples_dccp() {
        let report = fake_report();
        let mut next_id = 0;
        let mut seen = BTreeSet::new();
        let strategies = generate_strategies(
            &ProtocolKind::Tcp(Profile::linux_3_13()),
            &[&report],
            &GenerationParams::default(),
            &mut next_id,
            &mut seen,
        );
        let hits: Vec<_> = strategies
            .iter()
            .filter_map(|s| match &s.kind {
                StrategyKind::OnState {
                    attack: InjectionAttack::HitSeqWindow { count, stride, .. },
                    ..
                } => Some((*count, *stride)),
                _ => None,
            })
            .collect();
        assert!(!hits.is_empty());
        // 2^32 / 65535 ≈ 65538: full coverage within the cap.
        assert!(hits
            .iter()
            .all(|&(c, s)| s == 65_535 && c >= (1u64 << 32) / 65_535));
    }

    #[test]
    fn on_path_classification() {
        let lie = |endpoint, field: &str| Strategy {
            id: 0,
            kind: StrategyKind::OnPacket {
                endpoint,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Lie {
                    field: field.into(),
                    mutation: FieldMutation::Max,
                },
            },
        };
        // Structural fields: on-path regardless of direction.
        assert!(is_on_path(&lie(Endpoint::Client, "src_port")));
        assert!(is_on_path(&lie(Endpoint::Client, "checksum")));
        // Semantic fields of the client's own packets: a malicious client.
        assert!(!is_on_path(&lie(Endpoint::Client, "seq")));
        assert!(!is_on_path(&lie(Endpoint::Client, "window")));
        // Rewriting the server's content in transit: on-path.
        assert!(is_on_path(&lie(Endpoint::Server, "seq")));
        // Delivery attacks are never on-path.
        let drop = Strategy {
            id: 0,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Server,
                state: "ESTABLISHED".into(),
                packet_type: "DATA".into(),
                attack: BasicAttack::Drop { percent: 100 },
            },
        };
        assert!(!is_on_path(&drop));
    }
}
