use std::collections::VecDeque;

use snake_netsim::{SimDuration, SimTime};
use snake_packet::dccp::DccpPacketType;

use crate::profile::DccpProfile;
use crate::seq48;
use crate::PACKET_PAYLOAD;

/// The DCCP connection states (RFC 4340 §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DccpState {
    Closed,
    Listen,
    Request,
    Respond,
    PartOpen,
    Open,
    CloseReq,
    Closing,
    TimeWait,
}

impl DccpState {
    /// The state's conventional name (matches the built-in dot machine).
    pub fn name(&self) -> &'static str {
        match self {
            DccpState::Closed => "CLOSED",
            DccpState::Listen => "LISTEN",
            DccpState::Request => "REQUEST",
            DccpState::Respond => "RESPOND",
            DccpState::PartOpen => "PARTOPEN",
            DccpState::Open => "OPEN",
            DccpState::CloseReq => "CLOSEREQ",
            DccpState::Closing => "CLOSING",
            DccpState::TimeWait => "TIMEWAIT",
        }
    }
}

impl std::fmt::Display for DccpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded DCCP packet: the fields the engine acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DccpSeg {
    /// Packet type.
    pub ptype: DccpPacketType,
    /// 48-bit sequence number.
    pub seq: u64,
    /// 48-bit acknowledgment number (meaningful when
    /// [`DccpPacketType::carries_ack`]).
    pub ack: u64,
    /// Cumulative count of packets the receiver observed missing, echoed
    /// on acknowledgments — this reproduction's compressed stand-in for
    /// CCID-2's ack vector (carried in the header's `ack_reserved` field).
    pub loss_echo: u16,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// Effects a [`DccpConnection`] asks its host to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DccpConnEvent {
    /// Transmit this packet to the peer.
    Transmit(DccpSeg),
    /// (Re-)arm the CCID-2 transmit timeout.
    ArmRto(SimDuration),
    /// Cancel the transmit timeout.
    CancelRto,
    /// (Re-)arm the state-machine retransmission timer (REQUEST, PARTOPEN
    /// ack, CLOSE).
    ArmRtx(SimDuration),
    /// Cancel the state-machine retransmission timer.
    CancelRtx,
    /// Arm the TIMEWAIT timer.
    ArmTimeWait(SimDuration),
    /// The handshake completed (client side entered OPEN).
    Connected,
    /// The handshake completed (server side entered OPEN).
    Accepted,
    /// `n` new payload bytes arrived (DCCP is unreliable: this is goodput,
    /// not in-order delivery).
    DeliverData(u32),
    /// The connection was torn down abnormally.
    Reset(&'static str),
    /// The connection closed cleanly.
    Finished,
}

/// One DCCP connection endpoint: RFC 4340 lifecycle and sequencing with
/// CCID-2 congestion control.
#[derive(Debug, Clone)]
pub struct DccpConnection {
    profile: DccpProfile,
    state: DccpState,

    /// Greatest sequence number sent. Every packet increments it.
    gss: u64,
    /// Greatest valid sequence number received.
    gsr: u64,
    /// Initial sequence number.
    iss: u64,

    // Sender: application queue and CCID-2.
    app_remaining: u64,
    queue: VecDeque<u32>,
    unacked: VecDeque<u64>,
    cwnd: f64,
    ssthresh: f64,
    congestion_recover: u64,
    closing: bool,
    close_sent: bool,

    // RTT / timeout.
    srtt: Option<f64>,
    rttvar: f64,
    rto_base: SimDuration,
    backoff: u32,
    rtt_sample: Option<(u64, SimTime)>,

    // Receiver.
    data_since_ack: u32,
    goodput: u64,
    last_sync_at: SimTime,
    /// Cumulative count of sequence-number gaps observed (packets missing
    /// below GSR) — echoed to the sender on every acknowledgment.
    missing_seen: u64,
    /// Last loss echo consumed from the peer's acknowledgments.
    last_loss_echo: Option<u16>,

    // State-machine retransmissions.
    rtx_count: u32,

    // Counters.
    packets_sent: u64,
    packets_received: u64,
    syncs_sent: u64,
    resets_sent: u64,
    loss_events: u64,
    rto_events: u64,
}

impl DccpConnection {
    /// Creates a client endpoint; call [`open`](DccpConnection::open) to
    /// send the REQUEST.
    pub fn client(profile: DccpProfile, iss: u64) -> DccpConnection {
        DccpConnection::with_state(profile, iss, DccpState::Closed)
    }

    /// Creates a server endpoint awaiting a REQUEST.
    pub fn server(profile: DccpProfile, iss: u64) -> DccpConnection {
        DccpConnection::with_state(profile, iss, DccpState::Listen)
    }

    fn with_state(profile: DccpProfile, iss: u64, state: DccpState) -> DccpConnection {
        let iss = seq48::mask(iss);
        let cwnd = profile.initial_cwnd_packets as f64;
        DccpConnection {
            profile,
            state,
            gss: seq48::sub(iss, 1),
            gsr: 0,
            iss,
            app_remaining: 0,
            queue: VecDeque::new(),
            unacked: VecDeque::new(),
            cwnd,
            ssthresh: f64::MAX,
            congestion_recover: seq48::sub(iss, 1),
            closing: false,
            close_sent: false,
            srtt: None,
            rttvar: 0.0,
            rto_base: SimDuration::from_secs(1),
            backoff: 0,
            rtt_sample: None,
            data_since_ack: 0,
            goodput: 0,
            last_sync_at: SimTime::ZERO,
            missing_seen: 0,
            last_loss_echo: None,
            rtx_count: 0,
            packets_sent: 0,
            packets_received: 0,
            syncs_sent: 0,
            resets_sent: 0,
            loss_events: 0,
            rto_events: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DccpState {
        self.state
    }

    /// Payload bytes received (goodput).
    pub fn goodput(&self) -> u64 {
        self.goodput
    }

    /// Packets currently in the application send queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Application bytes not yet queued.
    pub fn app_remaining(&self) -> u64 {
        self.app_remaining
    }

    /// Current congestion window in packets.
    pub fn cwnd_packets(&self) -> u32 {
        self.cwnd as u32
    }

    /// Packets sent.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Packets received and processed.
    pub fn packets_received(&self) -> u64 {
        self.packets_received
    }

    /// SYNC packets sent (resynchronisation pressure).
    pub fn syncs_sent(&self) -> u64 {
        self.syncs_sent
    }

    /// Loss events inferred by CCID-2.
    pub fn loss_events(&self) -> u64 {
        self.loss_events
    }

    /// Transmit timeouts taken.
    pub fn rto_events(&self) -> u64 {
        self.rto_events
    }

    /// Greatest sequence number sent so far.
    pub fn gss(&self) -> u64 {
        self.gss
    }

    /// Greatest valid sequence number received so far.
    pub fn gsr(&self) -> u64 {
        self.gsr
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Client: send the REQUEST and enter REQUEST state.
    pub fn open(&mut self, out: &mut Vec<DccpConnEvent>) {
        debug_assert_eq!(self.state, DccpState::Closed);
        self.state = DccpState::Request;
        self.emit(out, DccpPacketType::Request, 0, 0);
        out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
    }

    /// Queues application data (split into fixed-size packets).
    pub fn app_send(&mut self, bytes: u64, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        self.app_remaining = self.app_remaining.saturating_add(bytes);
        self.try_send(now, out);
    }

    /// Application close. DCCP refuses to send CLOSE until the send queue
    /// has fully drained (paper §VI-B.1) — data still waiting keeps the
    /// socket alive at whatever rate congestion control allows.
    pub fn app_close(&mut self, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        match self.state {
            DccpState::Closed | DccpState::TimeWait | DccpState::Listen => {}
            DccpState::Request => {
                self.state = DccpState::Closed;
                out.push(DccpConnEvent::CancelRtx);
                out.push(DccpConnEvent::Finished);
            }
            _ => {
                self.closing = true;
                // Unqueued application data is discarded, but the queue
                // itself must drain.
                self.app_remaining = 0;
                self.try_send(now, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// CCID-2 transmit timeout: no acknowledgment progress. DCCP never
    /// retransmits data — outstanding packets are written off and the
    /// window collapses to one packet, the "minimum rate" of the
    /// Acknowledgment-Mung attack.
    pub fn on_rto(&mut self, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        if self.unacked.is_empty() {
            return;
        }
        self.rto_events += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.unacked.clear();
        self.rtt_sample = None;
        self.backoff += 1;
        self.congestion_recover = self.gss;
        self.try_send(now, out);
        if !self.unacked.is_empty() {
            out.push(DccpConnEvent::ArmRto(self.rto_interval()));
        } else {
            out.push(DccpConnEvent::CancelRto);
        }
        // The queue may now be drainable for a pending CLOSE.
        self.maybe_send_close(out);
    }

    /// State-machine retransmission timer (REQUEST / PARTOPEN ack / CLOSE).
    pub fn on_rtx(&mut self, _now: SimTime, out: &mut Vec<DccpConnEvent>) {
        match self.state {
            DccpState::Request => {
                self.rtx_count += 1;
                if self.rtx_count > self.profile.request_retries {
                    self.state = DccpState::Closed;
                    out.push(DccpConnEvent::Reset("request timed out"));
                    return;
                }
                self.emit(out, DccpPacketType::Request, 0, 0);
                out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
            }
            DccpState::Respond => {
                self.rtx_count += 1;
                if self.rtx_count > self.profile.request_retries {
                    self.state = DccpState::Closed;
                    out.push(DccpConnEvent::Reset("respond timed out"));
                    return;
                }
                self.emit_ack(out, DccpPacketType::Response, 0);
                out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
            }
            DccpState::PartOpen => {
                self.rtx_count += 1;
                if self.rtx_count > self.profile.request_retries {
                    self.state = DccpState::Closed;
                    out.push(DccpConnEvent::Reset("partopen timed out"));
                    return;
                }
                self.emit_ack(out, DccpPacketType::Ack, 0);
                out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
            }
            DccpState::Closing | DccpState::CloseReq if self.close_sent => {
                self.rtx_count += 1;
                if self.rtx_count > self.profile.close_retries {
                    self.state = DccpState::Closed;
                    out.push(DccpConnEvent::Reset("close retries exhausted"));
                    return;
                }
                self.emit_ack(out, DccpPacketType::Close, 0);
                out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
            }
            _ => {}
        }
    }

    /// The TIMEWAIT timer fired.
    pub fn on_time_wait_expiry(&mut self, out: &mut Vec<DccpConnEvent>) {
        if self.state == DccpState::TimeWait {
            self.state = DccpState::Closed;
            out.push(DccpConnEvent::Finished);
        }
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    /// Processes one arriving packet.
    pub fn on_packet(&mut self, seg: DccpSeg, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        self.packets_received += 1;
        match self.state {
            DccpState::Closed | DccpState::TimeWait => {
                if seg.ptype != DccpPacketType::Reset {
                    self.send_reset(out);
                }
            }
            DccpState::Listen => self.on_packet_listen(seg, out),
            DccpState::Request => self.on_packet_request(seg, out),
            DccpState::Respond => self.on_packet_respond(seg, now, out),
            _ => self.on_packet_sync_states(seg, now, out),
        }
    }

    fn on_packet_listen(&mut self, seg: DccpSeg, out: &mut Vec<DccpConnEvent>) {
        match seg.ptype {
            DccpPacketType::Request => {
                self.gsr = seg.seq;
                self.state = DccpState::Respond;
                self.emit_ack(out, DccpPacketType::Response, 0);
                out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
            }
            DccpPacketType::Reset => {}
            _ => self.send_reset(out),
        }
    }

    /// REQUEST state: both the RFC 4340 §8.5 pseudocode and Linux 3.13
    /// check the packet *type* before validating sequence numbers, so any
    /// non-RESPONSE packet with completely arbitrary sequence and
    /// acknowledgment numbers resets the nascent connection — the
    /// REQUEST-Connection-Termination attack (paper §VI-B.3).
    fn on_packet_request(&mut self, seg: DccpSeg, out: &mut Vec<DccpConnEvent>) {
        let type_ok = matches!(seg.ptype, DccpPacketType::Response | DccpPacketType::Reset);
        let ack_ok = seg.ack == self.gss;

        if !self.profile.type_check_before_seq {
            // The mitigated ordering: silently drop anything whose
            // acknowledgment doesn't prove knowledge of our REQUEST.
            if !ack_ok && seg.ptype != DccpPacketType::Reset {
                return;
            }
        }
        if !type_ok {
            self.send_reset(out);
            self.state = DccpState::Closed;
            out.push(DccpConnEvent::CancelRtx);
            out.push(DccpConnEvent::Reset("non-RESPONSE packet in REQUEST"));
            return;
        }
        match seg.ptype {
            DccpPacketType::Reset => {
                self.state = DccpState::Closed;
                out.push(DccpConnEvent::CancelRtx);
                out.push(DccpConnEvent::Reset("reset during handshake"));
            }
            DccpPacketType::Response => {
                if !ack_ok {
                    return;
                }
                self.gsr = seg.seq;
                self.state = DccpState::PartOpen;
                self.rtx_count = 0;
                self.emit_ack(out, DccpPacketType::Ack, 0);
                out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
            }
            _ => unreachable!("type_ok guarantees Response or Reset"),
        }
    }

    fn on_packet_respond(&mut self, seg: DccpSeg, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        match seg.ptype {
            DccpPacketType::Request => {
                // Retransmitted REQUEST: answer again.
                self.gsr = seg.seq;
                self.emit_ack(out, DccpPacketType::Response, 0);
            }
            DccpPacketType::Reset if self.seq_valid(seg.seq) => {
                self.state = DccpState::Closed;
                out.push(DccpConnEvent::CancelRtx);
                out.push(DccpConnEvent::Reset("reset during handshake"));
            }
            // The ack must cover one of our RESPONSEs (several may be
            // outstanding when the REQUEST was duplicated or
            // retransmitted).
            DccpPacketType::Ack | DccpPacketType::DataAck
                if seq48::between(seg.ack, self.iss, self.gss) && self.seq_valid(seg.seq) =>
            {
                self.gsr = seg.seq;
                self.state = DccpState::Open;
                self.rtx_count = 0;
                out.push(DccpConnEvent::CancelRtx);
                out.push(DccpConnEvent::Accepted);
                if seg.payload_len > 0 {
                    self.receive_payload(&seg, out);
                }
                self.try_send(now, out);
            }
            _ => {}
        }
    }

    fn on_packet_sync_states(&mut self, seg: DccpSeg, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        // PARTOPEN completes on any valid packet from the peer.
        if self.state == DccpState::PartOpen
            && self.seq_valid(seg.seq)
            && seg.ptype != DccpPacketType::Reset
        {
            self.state = DccpState::Open;
            self.rtx_count = 0;
            out.push(DccpConnEvent::CancelRtx);
            out.push(DccpConnEvent::Connected);
        }

        match seg.ptype {
            DccpPacketType::Reset => {
                if self.seq_valid(seg.seq) {
                    let was_closing = self.state == DccpState::Closing;
                    out.push(DccpConnEvent::CancelRto);
                    out.push(DccpConnEvent::CancelRtx);
                    if was_closing {
                        // Our CLOSE was answered: normal teardown.
                        self.state = DccpState::TimeWait;
                        out.push(DccpConnEvent::ArmTimeWait(self.profile.time_wait));
                    } else {
                        self.state = DccpState::Closed;
                        out.push(DccpConnEvent::Reset("peer reset"));
                    }
                }
            }
            DccpPacketType::Sync => {
                // Answer with a SyncAck echoing the Sync's own sequence
                // number — but only if its acknowledgment is plausible.
                if self.ack_plausible(seg.ack) {
                    if self.seq_valid(seg.seq) {
                        self.gsr = seg.seq;
                    }
                    self.emit(out, DccpPacketType::SyncAck, seg.seq, 0);
                }
            }
            DccpPacketType::SyncAck => {
                if self.ack_plausible(seg.ack) {
                    // Resynchronise on the peer's current sequence number.
                    self.gsr = seg.seq;
                    self.process_ack(&seg, now, out);
                }
            }
            DccpPacketType::Request | DccpPacketType::Response => {
                // Stale handshake packet: per RFC, answer with Sync.
                self.send_sync(now, out);
            }
            DccpPacketType::Data | DccpPacketType::Ack | DccpPacketType::DataAck => {
                if !self.seq_valid(seg.seq) {
                    self.send_sync(now, out);
                    return;
                }
                if seg.ptype.carries_ack() && !self.ack_plausible(seg.ack) {
                    // Acknowledges packets never sent (paper §VI-B.2):
                    // drop the whole packet and force a resync.
                    self.send_sync(now, out);
                    return;
                }
                if seq48::gt(seg.seq, self.gsr) {
                    // Sequence gaps below the new GSR are packets that
                    // went missing; the count feeds the loss echo.
                    let gap = seq48::sub(seg.seq, self.gsr).saturating_sub(1);
                    self.missing_seen += gap;
                    self.gsr = seg.seq;
                }
                if seg.ptype.carries_ack() {
                    self.process_ack(&seg, now, out);
                }
                if seg.payload_len > 0 {
                    self.receive_payload(&seg, out);
                }
            }
            DccpPacketType::Close => {
                if self.seq_valid(seg.seq) {
                    self.gsr = seg.seq;
                    // Answer with Reset(code: closed) and free the socket.
                    self.send_reset(out);
                    self.state = DccpState::Closed;
                    out.push(DccpConnEvent::CancelRto);
                    out.push(DccpConnEvent::CancelRtx);
                    out.push(DccpConnEvent::Finished);
                }
            }
            DccpPacketType::CloseReq => {
                if self.seq_valid(seg.seq) && self.state == DccpState::Open {
                    self.gsr = seg.seq;
                    self.state = DccpState::Closing;
                    self.close_sent = true;
                    self.rtx_count = 0;
                    self.emit_ack(out, DccpPacketType::Close, 0);
                    out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Sender: CCID-2
    // ------------------------------------------------------------------

    fn try_send(&mut self, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        if !matches!(self.state, DccpState::Open) {
            return;
        }
        // The application refills the bounded send queue.
        while self.queue.len() < self.profile.tx_qlen && self.app_remaining > 0 {
            let chunk = (self.app_remaining).min(PACKET_PAYLOAD as u64) as u32;
            self.app_remaining -= chunk as u64;
            self.queue.push_back(chunk);
        }
        let was_empty = self.unacked.is_empty();
        let mut sent = false;
        while (self.unacked.len() as f64) < self.cwnd && !self.queue.is_empty() {
            let payload = self.queue.pop_front().expect("non-empty");
            self.emit_ack(out, DccpPacketType::DataAck, payload);
            self.unacked.push_back(self.gss);
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.gss, now));
            }
            sent = true;
        }
        if sent && was_empty {
            out.push(DccpConnEvent::ArmRto(self.rto_interval()));
        }
        self.maybe_send_close(out);
    }

    fn maybe_send_close(&mut self, out: &mut Vec<DccpConnEvent>) {
        if self.closing && !self.close_sent && self.queue.is_empty() && self.app_remaining == 0 {
            self.close_sent = true;
            self.state = DccpState::Closing;
            self.rtx_count = 0;
            self.emit_ack(out, DccpPacketType::Close, 0);
            out.push(DccpConnEvent::CancelRto);
            out.push(DccpConnEvent::ArmRtx(self.rtx_interval()));
        }
    }

    /// CCID-2 acknowledgment processing. The acknowledgment number reports
    /// the greatest sequence number the peer has received; the loss echo
    /// (the compressed ack-vector stand-in) reports how many packets it
    /// observed missing. New losses trigger at most one window halving per
    /// round trip of data, mirroring RFC 4341 §5.
    fn process_ack(&mut self, seg: &DccpSeg, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        let ack = seg.ack;
        let mut progressed = false;
        while let Some(&head) = self.unacked.front() {
            if seq48::gt(head, ack) {
                break;
            }
            self.unacked.pop_front();
            progressed = true;
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
            if let Some((target, sent_at)) = self.rtt_sample {
                if seq48::ge(ack, target) {
                    self.update_rtt(now.since(sent_at).as_secs_f64());
                    self.rtt_sample = None;
                }
            }
        }
        // Loss echo delta → congestion event (once per recovery window).
        let new_losses = match self.last_loss_echo {
            None => 0,
            Some(prev) => seg.loss_echo.wrapping_sub(prev) as u64,
        };
        self.last_loss_echo = Some(seg.loss_echo);
        if new_losses > 0 {
            self.loss_events += new_losses;
            if seq48::gt(ack, self.congestion_recover) || seq48::ge(ack, self.congestion_recover) {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.congestion_recover = self.gss;
            }
        }
        if progressed {
            self.backoff = 0;
            if self.unacked.is_empty() {
                out.push(DccpConnEvent::CancelRto);
            } else {
                out.push(DccpConnEvent::ArmRto(self.rto_interval()));
            }
            self.try_send(now, out);
        }
    }

    // ------------------------------------------------------------------
    // Receiver
    // ------------------------------------------------------------------

    fn receive_payload(&mut self, seg: &DccpSeg, out: &mut Vec<DccpConnEvent>) {
        self.goodput += seg.payload_len as u64;
        out.push(DccpConnEvent::DeliverData(seg.payload_len));
        self.data_since_ack += 1;
        if self.data_since_ack >= self.profile.ack_ratio {
            self.data_since_ack = 0;
            self.emit_ack(out, DccpPacketType::Ack, 0);
        }
    }

    // ------------------------------------------------------------------
    // Validity windows (RFC 4340 §7.5)
    // ------------------------------------------------------------------

    /// Sequence validity: `SWL = GSR + 1 - W/4`, `SWH = GSR + 1 + 3W/4`.
    fn seq_valid(&self, seq: u64) -> bool {
        let w = self.profile.seq_window;
        let swl = seq48::sub(seq48::add(self.gsr, 1), w / 4);
        let swh = seq48::add(seq48::add(self.gsr, 1), 3 * w / 4);
        seq48::between(seq, swl, swh)
    }

    /// Acknowledgment plausibility: `AWL = GSS - W + 1`, `AWH = GSS`. An
    /// acknowledgment outside this window refers to packets we never sent.
    fn ack_plausible(&self, ack: u64) -> bool {
        let w = self.profile.seq_window;
        let awl = seq48::sub(self.gss, w.saturating_sub(1));
        seq48::between(ack, awl, self.gss)
    }

    // ------------------------------------------------------------------
    // Emission
    // ------------------------------------------------------------------

    fn next_seq(&mut self) -> u64 {
        self.gss = seq48::add(self.gss, 1);
        self.gss
    }

    /// Emits a packet whose acknowledgment field mirrors GSR and whose
    /// loss echo reports the gaps observed so far.
    fn emit_ack(&mut self, out: &mut Vec<DccpConnEvent>, ptype: DccpPacketType, payload: u32) {
        let ack = self.gsr;
        self.emit(out, ptype, ack, payload);
    }

    fn emit(
        &mut self,
        out: &mut Vec<DccpConnEvent>,
        ptype: DccpPacketType,
        ack: u64,
        payload: u32,
    ) {
        let seq = self.next_seq();
        self.packets_sent += 1;
        out.push(DccpConnEvent::Transmit(DccpSeg {
            ptype,
            seq,
            ack,
            loss_echo: self.missing_seen as u16,
            payload_len: payload,
        }));
    }

    /// Sends a Sync asking the peer to restate its sequence position,
    /// rate-limited to one per RTT-ish interval to avoid sync storms.
    fn send_sync(&mut self, now: SimTime, out: &mut Vec<DccpConnEvent>) {
        let min_gap = SimDuration::from_millis(10);
        if now.since(self.last_sync_at) < min_gap && self.last_sync_at != SimTime::ZERO {
            return;
        }
        self.last_sync_at = now;
        self.syncs_sent += 1;
        self.emit_ack(out, DccpPacketType::Sync, 0);
    }

    fn send_reset(&mut self, out: &mut Vec<DccpConnEvent>) {
        self.resets_sent += 1;
        self.emit_ack(out, DccpPacketType::Reset, 0);
    }

    fn update_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
        let rto = SimDuration::from_secs_f64(self.srtt.expect("set") + 4.0 * self.rttvar);
        self.rto_base = rto.max(self.profile.min_rto).min(self.profile.max_rto);
    }

    fn rto_interval(&self) -> SimDuration {
        self.rto_base
            .saturating_mul(1u64 << self.backoff.min(16))
            .max(self.profile.min_rto)
            .min(self.profile.max_rto)
    }

    fn rtx_interval(&self) -> SimDuration {
        SimDuration::from_millis(400).saturating_mul(1u64 << self.rtx_count.min(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DccpProfile {
        DccpProfile::linux_3_13()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn transmits(events: &[DccpConnEvent]) -> Vec<DccpSeg> {
        events
            .iter()
            .filter_map(|e| match e {
                DccpConnEvent::Transmit(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    fn open_pair() -> (DccpConnection, DccpConnection) {
        let mut client = DccpConnection::client(profile(), 100);
        let mut server = DccpConnection::server(profile(), 9_000);
        let mut out = Vec::new();

        client.open(&mut out);
        let req = transmits(&out)[0];
        assert_eq!(req.ptype, DccpPacketType::Request);
        assert_eq!(client.state(), DccpState::Request);
        out.clear();

        server.on_packet(req, t(10), &mut out);
        let resp = transmits(&out)[0];
        assert_eq!(resp.ptype, DccpPacketType::Response);
        assert_eq!(resp.ack, req.seq);
        assert_eq!(server.state(), DccpState::Respond);
        out.clear();

        client.on_packet(resp, t(20), &mut out);
        assert_eq!(client.state(), DccpState::PartOpen);
        let ack = transmits(&out)[0];
        assert_eq!(ack.ptype, DccpPacketType::Ack);
        out.clear();

        server.on_packet(ack, t(30), &mut out);
        assert_eq!(server.state(), DccpState::Open);
        assert!(out.contains(&DccpConnEvent::Accepted));
        out.clear();

        // Server data completes the client's PARTOPEN.
        server.app_send(PACKET_PAYLOAD as u64, t(40), &mut out);
        let data = transmits(&out)[0];
        assert_eq!(data.ptype, DccpPacketType::DataAck);
        out.clear();
        client.on_packet(data, t(50), &mut out);
        assert_eq!(client.state(), DccpState::Open);
        assert!(out.contains(&DccpConnEvent::Connected));

        (client, server)
    }

    #[test]
    fn handshake_reaches_open() {
        let (c, s) = open_pair();
        assert_eq!(c.state(), DccpState::Open);
        assert_eq!(s.state(), DccpState::Open);
        assert_eq!(c.goodput(), PACKET_PAYLOAD as u64);
    }

    #[test]
    fn every_packet_increments_sequence_number() {
        let (_, mut server) = open_pair();
        let before = server.gss();
        let mut out = Vec::new();
        server.app_send(3 * PACKET_PAYLOAD as u64, t(60), &mut out);
        let segs = transmits(&out);
        assert_eq!(segs.len(), 2, "initial window is 3, one already used");
        assert_eq!(segs[0].seq, seq48::add(before, 1));
        assert_eq!(segs[1].seq, seq48::add(before, 2));
    }

    #[test]
    fn request_state_resets_on_any_other_packet_type() {
        // The REQUEST-Connection-Termination attack (paper §VI-B.3): the
        // type check precedes sequence validation, so ANY sequence and
        // acknowledgment numbers work.
        let mut client = DccpConnection::client(profile(), 100);
        let mut out = Vec::new();
        client.open(&mut out);
        out.clear();

        let bogus = DccpSeg {
            ptype: DccpPacketType::Sync,
            seq: 0xDEAD_BEEF,
            ack: 0x1234_5678,
            loss_echo: 0,
            payload_len: 0,
        };
        client.on_packet(bogus, t(10), &mut out);
        assert_eq!(client.state(), DccpState::Closed);
        assert!(out.iter().any(|e| matches!(e, DccpConnEvent::Reset(_))));
    }

    #[test]
    fn fixed_ordering_survives_bogus_packet_in_request() {
        let mut client = DccpConnection::client(DccpProfile::linux_3_13_seqcheck_fixed(), 100);
        let mut out = Vec::new();
        client.open(&mut out);
        out.clear();

        let bogus = DccpSeg {
            ptype: DccpPacketType::Sync,
            seq: 0xDEAD_BEEF,
            ack: 0x1234_5678,
            loss_echo: 0,
            payload_len: 0,
        };
        client.on_packet(bogus, t(10), &mut out);
        assert_eq!(client.state(), DccpState::Request, "bogus packet ignored");
    }

    #[test]
    fn in_window_reset_kills_open_connection() {
        let (mut client, _server) = open_pair();
        let mut out = Vec::new();
        let rst = DccpSeg {
            ptype: DccpPacketType::Reset,
            seq: seq48::add(client.gsr(), 1),
            ack: 0,
            loss_echo: 0,
            payload_len: 0,
        };
        client.on_packet(rst, t(100), &mut out);
        assert_eq!(client.state(), DccpState::Closed);
    }

    #[test]
    fn far_out_of_window_reset_is_ignored() {
        let (mut client, _server) = open_pair();
        let mut out = Vec::new();
        let rst = DccpSeg {
            ptype: DccpPacketType::Reset,
            seq: seq48::add(client.gsr(), 1_000_000),
            ack: 0,
            loss_echo: 0,
            payload_len: 0,
        };
        client.on_packet(rst, t(100), &mut out);
        assert_eq!(client.state(), DccpState::Open);
    }

    #[test]
    fn out_of_window_data_triggers_sync() {
        let (mut client, _server) = open_pair();
        let mut out = Vec::new();
        let wild = DccpSeg {
            ptype: DccpPacketType::DataAck,
            seq: seq48::add(client.gsr(), 500_000),
            ack: 0,
            loss_echo: 0,
            payload_len: PACKET_PAYLOAD,
        };
        client.on_packet(wild, t(100), &mut out);
        let sent = transmits(&out);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].ptype, DccpPacketType::Sync);
        assert_eq!(
            client.goodput(),
            PACKET_PAYLOAD as u64,
            "payload not delivered"
        );
    }

    #[test]
    fn implausible_ack_drops_packet_and_syncs() {
        // Paper §VI-B.2: data acknowledging packets never sent is dropped
        // and answered with a SYNC, costing the sender a whole window.
        let (mut client, server) = open_pair();
        let mut out = Vec::new();
        let evil = DccpSeg {
            ptype: DccpPacketType::DataAck,
            seq: seq48::add(client.gsr(), 1),
            ack: seq48::add(client.gss(), 50), // we never sent this
            loss_echo: 0,
            payload_len: PACKET_PAYLOAD,
        };
        let before = client.goodput();
        client.on_packet(evil, t(100), &mut out);
        assert_eq!(client.goodput(), before, "payload dropped");
        let sent = transmits(&out);
        assert_eq!(sent[0].ptype, DccpPacketType::Sync);
        let _ = server;
    }

    #[test]
    fn sync_syncack_resynchronises() {
        let (mut client, mut server) = open_pair();
        let mut out = Vec::new();
        // Client realises it is desynced and sends a Sync.
        let wild = DccpSeg {
            ptype: DccpPacketType::Data,
            seq: seq48::add(client.gsr(), 500_000),
            ack: 0,
            loss_echo: 0,
            payload_len: 10,
        };
        client.on_packet(wild, t(100), &mut out);
        let sync = transmits(&out)[0];
        assert_eq!(sync.ptype, DccpPacketType::Sync);
        out.clear();

        server.on_packet(sync, t(110), &mut out);
        let syncack = transmits(&out)[0];
        assert_eq!(syncack.ptype, DccpPacketType::SyncAck);
        assert_eq!(syncack.ack, sync.seq, "SyncAck echoes the Sync's seq");
        out.clear();

        client.on_packet(syncack, t(120), &mut out);
        assert_eq!(
            client.gsr(),
            syncack.seq,
            "resynchronised on peer's real seq"
        );
    }

    #[test]
    fn close_waits_for_send_queue_to_drain() {
        // Paper §VI-B.1: a DCCP sender will not close until its send queue
        // is empty.
        let (_client, mut server) = open_pair();
        let mut out = Vec::new();
        // Fill well beyond the window: cwnd 3, queue 10.
        server.app_send(20 * PACKET_PAYLOAD as u64, t(60), &mut out);
        assert!(server.queue_len() > 0);
        out.clear();

        server.app_close(t(70), &mut out);
        assert_eq!(server.state(), DccpState::Open, "still draining");
        assert!(transmits(&out)
            .iter()
            .all(|s| s.ptype != DccpPacketType::Close));
    }

    #[test]
    fn close_sent_once_queue_empties() {
        let (mut client, mut server) = open_pair();
        let mut out = Vec::new();
        // Fill beyond the congestion window so the queue holds packets.
        server.app_send(13 * PACKET_PAYLOAD as u64, t(60), &mut out);
        let mut data = transmits(&out);
        out.clear();
        server.app_close(t(70), &mut out);
        assert_eq!(server.state(), DccpState::Open, "queue still draining");
        out.clear();

        // Ack rounds: the queue drains as the window opens, and the CLOSE
        // follows the last data packet.
        for round in 0..10 {
            if server.state() == DccpState::Closing {
                break;
            }
            let mut acks = Vec::new();
            for d in &data {
                client.on_packet(*d, t(80 + round), &mut out);
            }
            for s in transmits(&out) {
                if s.ptype == DccpPacketType::Ack {
                    acks.push(s);
                }
            }
            out.clear();
            for a in acks {
                server.on_packet(a, t(90 + round), &mut out);
            }
            data = transmits(&out)
                .into_iter()
                .filter(|s| s.ptype == DccpPacketType::DataAck)
                .collect();
            out.clear();
        }
        assert_eq!(server.state(), DccpState::Closing);
        assert_eq!(server.queue_len(), 0);
    }

    #[test]
    fn close_reset_completes_teardown() {
        let (mut client, mut server) = open_pair();
        let mut out = Vec::new();
        server.app_close(t(60), &mut out);
        let close = transmits(&out)
            .into_iter()
            .find(|s| s.ptype == DccpPacketType::Close);
        let close = close.expect("close sent immediately with empty queue");
        assert_eq!(server.state(), DccpState::Closing);
        out.clear();

        client.on_packet(close, t(70), &mut out);
        assert_eq!(client.state(), DccpState::Closed);
        let rst = transmits(&out)[0];
        assert_eq!(rst.ptype, DccpPacketType::Reset);
        out.clear();

        server.on_packet(rst, t(80), &mut out);
        assert_eq!(server.state(), DccpState::TimeWait);
        server.on_time_wait_expiry(&mut out);
        assert_eq!(server.state(), DccpState::Closed);
    }

    #[test]
    fn rto_collapses_window_and_discards_unacked() {
        let (_client, mut server) = open_pair();
        let mut out = Vec::new();
        server.app_send(20 * PACKET_PAYLOAD as u64, t(60), &mut out);
        out.clear();
        let cwnd_before = server.cwnd_packets();
        server.on_rto(t(2_000), &mut out);
        assert_eq!(server.cwnd_packets(), 1, "minimum rate");
        assert!(cwnd_before > 1);
        assert_eq!(server.rto_events(), 1);
        // One new packet goes out (DCCP never retransmits old data).
        let sent = transmits(&out);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].ptype, DccpPacketType::DataAck);
    }

    #[test]
    fn loss_echo_halves_window() {
        // The receiver's loss echo (the compressed ack-vector stand-in)
        // drives CCID-2's congestion response.
        let (_client, mut server) = open_pair();
        let mut out = Vec::new();
        server.app_send(50 * PACKET_PAYLOAD as u64, t(60), &mut out);
        let data = transmits(&out);
        out.clear();

        // A clean ack first (grows the window and seeds the echo).
        let clean = DccpSeg {
            ptype: DccpPacketType::Ack,
            seq: seq48::add(server.gsr(), 1),
            ack: data[0].seq,
            loss_echo: 0,
            payload_len: 0,
        };
        server.on_packet(clean, t(100), &mut out);
        out.clear();
        let cwnd_before = server.cwnd_packets();

        // Then an ack reporting one newly observed gap.
        let lossy = DccpSeg {
            ptype: DccpPacketType::Ack,
            seq: seq48::add(server.gsr(), 1),
            ack: data.last().unwrap().seq,
            loss_echo: 1,
            payload_len: 0,
        };
        server.on_packet(lossy, t(120), &mut out);
        assert!(server.loss_events() >= 1, "loss reported via echo");
        assert!(server.cwnd_packets() < cwnd_before, "window halved");
    }

    #[test]
    fn receiver_counts_gaps_in_loss_echo() {
        let (mut client, mut server) = open_pair();
        let mut out = Vec::new();
        server.app_send(5 * PACKET_PAYLOAD as u64, t(60), &mut out);
        let data = transmits(&out);
        assert!(data.len() >= 2);
        out.clear();

        // Drop data[0]; deliver data[1]: the client observes a gap of one
        // and echoes it on its next acknowledgment.
        client.on_packet(data[1], t(100), &mut out);
        let acks: Vec<DccpSeg> = transmits(&out)
            .into_iter()
            .filter(|s| s.ptype == DccpPacketType::Ack)
            .collect();
        assert!(!acks.is_empty(), "ack generated");
        assert_eq!(acks[0].loss_echo, 1, "gap counted");
    }

    #[test]
    fn request_retransmits_then_gives_up() {
        let mut client = DccpConnection::client(profile(), 100);
        let mut out = Vec::new();
        client.open(&mut out);
        out.clear();
        for _ in 0..client.profile.request_retries {
            client.on_rtx(t(1_000), &mut out);
            assert_eq!(client.state(), DccpState::Request);
            assert_eq!(
                transmits(&out).last().unwrap().ptype,
                DccpPacketType::Request
            );
            out.clear();
        }
        client.on_rtx(t(60_000), &mut out);
        assert_eq!(client.state(), DccpState::Closed);
    }

    #[test]
    fn state_names_match_dot_machine() {
        for (state, name) in [
            (DccpState::Request, "REQUEST"),
            (DccpState::Respond, "RESPOND"),
            (DccpState::PartOpen, "PARTOPEN"),
            (DccpState::Open, "OPEN"),
            (DccpState::TimeWait, "TIMEWAIT"),
        ] {
            assert_eq!(state.name(), name);
        }
    }
}
