use rand::Rng;
use snake_netsim::{Addr, Agent, Ctx, FxHashMap as HashMap, Packet, Protocol, SimTime};
use snake_packet::dccp::{DccpBuilder, DccpView};

use crate::conn::{DccpConnEvent, DccpConnection, DccpSeg, DccpState};
use crate::profile::DccpProfile;

/// What a listening DCCP server runs on each accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DccpServerApp {
    /// Push `bytes` of application data at the client — the iperf-style
    /// workload of the paper's DCCP evaluation (§VI-B: goodput measured at
    /// the receiver).
    BulkSender {
        /// Total bytes to send.
        bytes: u64,
    },
}

impl DccpServerApp {
    /// Convenience constructor for the bulk sender.
    pub fn bulk_sender(bytes: u64) -> DccpServerApp {
        DccpServerApp::BulkSender { bytes }
    }
}

/// Snapshot of one DCCP connection's observable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DccpConnMetrics {
    /// Local port.
    pub local_port: u16,
    /// Remote address.
    pub remote: Addr,
    /// Current lifecycle state.
    pub state: DccpState,
    /// Payload bytes received (goodput).
    pub goodput: u64,
    /// Packets sent.
    pub packets_sent: u64,
    /// Packets received.
    pub packets_received: u64,
    /// SYNCs sent.
    pub syncs_sent: u64,
    /// CCID-2 loss events.
    pub loss_events: u64,
    /// Transmit timeouts.
    pub rto_events: u64,
    /// Packets still waiting in the application send queue.
    pub queue_len: usize,
}

/// By-state socket census — the simulated `netstat` for DCCP.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DccpSocketCensus {
    counts: HashMap<&'static str, usize>,
}

impl DccpSocketCensus {
    /// Number of sockets in the named state.
    pub fn count(&self, state: &str) -> usize {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// Sockets that should have been released but were not.
    pub fn leaked(&self) -> usize {
        self.counts
            .iter()
            .filter(|(s, _)| !matches!(**s, "CLOSED" | "LISTEN" | "TIMEWAIT"))
            .map(|(_, n)| n)
            .sum()
    }

    /// Iterates over `(state name, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(s, n)| (*s, *n))
    }
}

const KIND_RTO: u64 = 0;
const KIND_RTX: u64 = 1;
const KIND_TIME_WAIT: u64 = 2;
const KIND_PLAN: u64 = 3;

fn tag(idx: usize, kind: u64, gen: u64) -> u64 {
    ((idx as u64) << 32) | (kind << 28) | (gen & 0x0FFF_FFFF)
}

fn untag(tag: u64) -> (usize, u64, u64) {
    ((tag >> 32) as usize, (tag >> 28) & 0xF, tag & 0x0FFF_FFFF)
}

#[derive(Debug, Clone)]
struct ConnSlot {
    conn: DccpConnection,
    local_port: u16,
    remote: Addr,
    app: Option<DccpServerApp>,
    rto_gen: u64,
    rtx_gen: u64,
}

#[derive(Debug, Clone, Copy)]
struct ConnectPlan {
    at: SimTime,
    remote: Addr,
}

/// A simulated host running the DCCP implementation under test.
#[derive(Debug, Clone)]
pub struct DccpHost {
    profile: DccpProfile,
    conns: Vec<ConnSlot>,
    by_pair: HashMap<(u16, Addr), usize>,
    listeners: HashMap<u16, DccpServerApp>,
    plans: Vec<ConnectPlan>,
    next_ephemeral: u16,
    total_goodput: u64,
}

impl DccpHost {
    /// Creates a host running the given profile.
    pub fn new(profile: DccpProfile) -> DccpHost {
        DccpHost {
            profile,
            conns: Vec::new(),
            by_pair: HashMap::default(),
            listeners: HashMap::default(),
            plans: Vec::new(),
            next_ephemeral: 40_000,
            total_goodput: 0,
        }
    }

    /// The profile this host runs.
    pub fn profile(&self) -> &DccpProfile {
        &self.profile
    }

    /// Starts listening on `port`.
    pub fn listen(&mut self, port: u16, app: DccpServerApp) {
        self.listeners.insert(port, app);
    }

    /// Schedules a client connection before the simulation starts.
    pub fn connect_at(&mut self, at: SimTime, remote: Addr) {
        self.plans.push(ConnectPlan { at, remote });
    }

    /// Opens a client connection immediately.
    pub fn connect_now(&mut self, ctx: &mut Ctx<'_>, remote: Addr) {
        let port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(40_000);
        let iss: u64 = ctx.rng().gen::<u64>() & ((1 << 48) - 1);
        let mut conn = DccpConnection::client(self.profile.clone(), iss);
        let mut events = Vec::new();
        conn.open(&mut events);
        let idx = self.install(conn, port, remote, None);
        self.pump(ctx, idx, events);
    }

    /// Gracefully closes every connection (iperf finishing / being
    /// stopped; DCCP has no abortive close short of a raw Reset).
    pub fn close_all(&mut self, ctx: &mut Ctx<'_>) {
        for idx in 0..self.conns.len() {
            let mut events = Vec::new();
            self.conns[idx].conn.app_close(ctx.now(), &mut events);
            self.pump(ctx, idx, events);
        }
    }

    /// Total goodput delivered to applications on this host.
    pub fn total_goodput(&self) -> u64 {
        self.total_goodput
    }

    /// Per-connection metrics.
    pub fn conn_metrics(&self) -> Vec<DccpConnMetrics> {
        self.conns
            .iter()
            .map(|s| DccpConnMetrics {
                local_port: s.local_port,
                remote: s.remote,
                state: s.conn.state(),
                goodput: s.conn.goodput(),
                packets_sent: s.conn.packets_sent(),
                packets_received: s.conn.packets_received(),
                syncs_sent: s.conn.syncs_sent(),
                loss_events: s.conn.loss_events(),
                rto_events: s.conn.rto_events(),
                queue_len: s.conn.queue_len(),
            })
            .collect()
    }

    /// Counts sockets by state.
    pub fn census(&self) -> DccpSocketCensus {
        let mut census = DccpSocketCensus::default();
        for s in &self.conns {
            *census.counts.entry(s.conn.state().name()).or_insert(0) += 1;
        }
        census
    }

    fn install(
        &mut self,
        conn: DccpConnection,
        port: u16,
        remote: Addr,
        app: Option<DccpServerApp>,
    ) -> usize {
        let idx = self.conns.len();
        self.conns.push(ConnSlot {
            conn,
            local_port: port,
            remote,
            app,
            rto_gen: 0,
            rtx_gen: 0,
        });
        self.by_pair.insert((port, remote), idx);
        idx
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>, idx: usize, events: Vec<DccpConnEvent>) {
        let mut queue = std::collections::VecDeque::from(events);
        while let Some(ev) = queue.pop_front() {
            match ev {
                DccpConnEvent::Transmit(seg) => {
                    let slot = &self.conns[idx];
                    let pkt =
                        build_packet(Addr::new(ctx.node(), slot.local_port), slot.remote, &seg);
                    ctx.send(pkt);
                }
                DccpConnEvent::ArmRto(after) => {
                    let slot = &mut self.conns[idx];
                    slot.rto_gen += 1;
                    ctx.set_timer(after, tag(idx, KIND_RTO, slot.rto_gen));
                }
                DccpConnEvent::CancelRto => {
                    self.conns[idx].rto_gen += 1;
                }
                DccpConnEvent::ArmRtx(after) => {
                    let slot = &mut self.conns[idx];
                    slot.rtx_gen += 1;
                    ctx.set_timer(after, tag(idx, KIND_RTX, slot.rtx_gen));
                }
                DccpConnEvent::CancelRtx => {
                    self.conns[idx].rtx_gen += 1;
                }
                DccpConnEvent::ArmTimeWait(after) => {
                    ctx.set_timer(after, tag(idx, KIND_TIME_WAIT, 0));
                }
                DccpConnEvent::Connected => {}
                DccpConnEvent::Accepted => {
                    if let Some(DccpServerApp::BulkSender { bytes }) = self.conns[idx].app {
                        let mut more = Vec::new();
                        self.conns[idx].conn.app_send(bytes, ctx.now(), &mut more);
                        queue.extend(more);
                    }
                }
                DccpConnEvent::DeliverData(n) => {
                    self.total_goodput += n as u64;
                }
                DccpConnEvent::Reset(_) | DccpConnEvent::Finished => {}
            }
        }
    }
}

/// Encodes an outbound DCCP packet.
fn build_packet(src: Addr, dst: Addr, seg: &DccpSeg) -> Packet {
    let header = DccpBuilder::new(src.port, dst.port, seg.ptype)
        .seq(seg.seq)
        .ack(seg.ack)
        .ack_reserved(seg.loss_echo)
        .build();
    Packet::new(
        src,
        dst,
        Protocol::Dccp,
        header.into_bytes(),
        seg.payload_len,
    )
}

/// Decodes a wire packet, or `None` for malformed ones (short header,
/// reserved type code, bad checksum).
fn parse_packet(pkt: &Packet) -> Option<DccpSeg> {
    let view = DccpView::new(&pkt.header).ok()?;
    if view.checksum() != 0 {
        return None;
    }
    let ptype = view.packet_type()?;
    Some(DccpSeg {
        ptype,
        seq: view.seq(),
        ack: view.ack(),
        loss_echo: view.ack_reserved(),
        payload_len: pkt.payload_len,
    })
}

impl Agent for DccpHost {
    fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let plans = self.plans.clone();
        for (i, plan) in plans.iter().enumerate() {
            if plan.at <= ctx.now() {
                self.connect_now(ctx, plan.remote);
            } else {
                ctx.set_timer(plan.at - ctx.now(), tag(i, KIND_PLAN, 0));
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if packet.protocol != Protocol::Dccp {
            return;
        }
        let Some(seg) = parse_packet(&packet) else {
            return;
        };
        let key = (packet.dst.port, packet.src);
        if let Some(&idx) = self.by_pair.get(&key) {
            let mut events = Vec::new();
            self.conns[idx].conn.on_packet(seg, ctx.now(), &mut events);
            self.pump(ctx, idx, events);
            return;
        }
        if let Some(&app) = self.listeners.get(&packet.dst.port) {
            if seg.ptype == snake_packet::dccp::DccpPacketType::Request {
                let iss: u64 = ctx.rng().gen::<u64>() & ((1 << 48) - 1);
                let conn = DccpConnection::server(self.profile.clone(), iss);
                let idx = self.install(conn, packet.dst.port, packet.src, Some(app));
                let mut events = Vec::new();
                self.conns[idx].conn.on_packet(seg, ctx.now(), &mut events);
                self.pump(ctx, idx, events);
                return;
            }
        }
        // No socket: RFC 4340 answers with a Reset (unless it was one).
        if seg.ptype != snake_packet::dccp::DccpPacketType::Reset {
            let rst = DccpSeg {
                ptype: snake_packet::dccp::DccpPacketType::Reset,
                seq: seg.ack.wrapping_add(1) & ((1 << 48) - 1),
                ack: seg.seq,
                loss_echo: 0,
                payload_len: 0,
            };
            let pkt = build_packet(Addr::new(ctx.node(), packet.dst.port), packet.src, &rst);
            ctx.send(pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        let (idx, kind, gen) = untag(t);
        match kind {
            KIND_PLAN => {
                if let Some(plan) = self.plans.get(idx).copied() {
                    self.connect_now(ctx, plan.remote);
                }
            }
            KIND_RTO if idx < self.conns.len() && self.conns[idx].rto_gen == gen => {
                let mut events = Vec::new();
                self.conns[idx].conn.on_rto(ctx.now(), &mut events);
                self.pump(ctx, idx, events);
            }
            KIND_RTX if idx < self.conns.len() && self.conns[idx].rtx_gen == gen => {
                let mut events = Vec::new();
                self.conns[idx].conn.on_rtx(ctx.now(), &mut events);
                self.pump(ctx, idx, events);
            }
            KIND_TIME_WAIT if idx < self.conns.len() => {
                let mut events = Vec::new();
                self.conns[idx].conn.on_time_wait_expiry(&mut events);
                self.pump(ctx, idx, events);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_netsim::{Dumbbell, DumbbellSpec, Simulator, Tap, TapCtx};

    fn download_sim(secs: u64) -> (Simulator, Dumbbell) {
        let mut sim = Simulator::new(21);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        for (srv, cli) in [(d.server1, d.client1), (d.server2, d.client2)] {
            let mut s = DccpHost::new(DccpProfile::linux_3_13());
            s.listen(5001, DccpServerApp::bulk_sender(u64::MAX));
            sim.set_agent(srv, s);
            let mut c = DccpHost::new(DccpProfile::linux_3_13());
            c.connect_at(SimTime::ZERO, Addr::new(srv, 5001));
            sim.set_agent(cli, c);
        }
        sim.run_until(SimTime::from_secs(secs));
        (sim, d)
    }

    #[test]
    fn download_utilises_bottleneck() {
        let (sim, d) = download_sim(10);
        let g1 = sim.agent::<DccpHost>(d.client1).unwrap().total_goodput();
        let g2 = sim.agent::<DccpHost>(d.client2).unwrap().total_goodput();
        let total = g1 + g2;
        assert!(total > 6_000_000, "utilisation too low: {total}");
        assert!(total < 13_500_000, "above line rate: {total}");
    }

    #[test]
    fn competing_flows_share_fairly() {
        let (sim, d) = download_sim(20);
        let a = sim.agent::<DccpHost>(d.client1).unwrap().total_goodput() as f64;
        let b = sim.agent::<DccpHost>(d.client2).unwrap().total_goodput() as f64;
        let ratio = a.max(b) / a.min(b).max(1.0);
        assert!(ratio < 2.0, "unfair: {a} vs {b}");
    }

    #[test]
    fn clean_close_releases_sockets() {
        let (mut sim, d) = download_sim(5);
        for node in [d.server1, d.server2] {
            sim.schedule_control(SimTime::from_secs(5), node, |agent, ctx| {
                let any: &mut dyn std::any::Any = agent;
                any.downcast_mut::<DccpHost>().unwrap().close_all(ctx);
            });
        }
        sim.run_until(SimTime::from_secs(30));
        for node in [d.server1, d.server2] {
            let census = sim.agent::<DccpHost>(node).unwrap().census();
            assert_eq!(census.leaked(), 0, "{}: {census:?}", sim.node_name(node));
        }
    }

    /// Overwrites the acknowledgment number of client→server packets once
    /// the connection is established (the Acknowledgment-Mung attack,
    /// paper §VI-B.1 — SNAKE applies it per `(OPEN, ACK)` pair).
    struct AckMungTap;
    impl Tap for AckMungTap {
        fn on_packet(&mut self, ctx: &mut TapCtx<'_>, mut packet: Packet, toward_b: bool) {
            if toward_b && ctx.now() > SimTime::from_secs(2) {
                let spec = snake_packet::dccp::dccp_spec();
                if let Ok(mut hdr) = spec.parse(packet.header.to_vec()) {
                    let _ = hdr.set("ack", (1u64 << 48) - 1);
                    packet.header = hdr.into_bytes().into();
                }
            }
            ctx.forward(packet, toward_b);
        }
    }

    #[test]
    fn ack_mung_wedges_server_at_minimum_rate() {
        let mut sim = Simulator::new(21);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let mut s = DccpHost::new(DccpProfile::linux_3_13());
        s.listen(5001, DccpServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s);
        let mut c = DccpHost::new(DccpProfile::linux_3_13());
        c.connect_at(SimTime::ZERO, Addr::new(d.server1, 5001));
        sim.set_agent(d.client1, c);
        sim.attach_tap(d.proxy_link, AckMungTap);

        sim.schedule_control(SimTime::from_secs(5), d.server1, |agent, ctx| {
            let any: &mut dyn std::any::Any = agent;
            any.downcast_mut::<DccpHost>().unwrap().close_all(ctx);
        });
        sim.run_until(SimTime::from_secs(35));

        let server = sim.agent::<DccpHost>(d.server1).unwrap();
        let census = server.census();
        assert!(census.leaked() > 0, "socket held open: {census:?}");
        let m = &server.conn_metrics()[0];
        assert!(m.rto_events > 0, "driven to timeout-paced sending: {m:?}");
        assert!(m.state != DccpState::Closed);
    }
}
