//! A from-scratch DCCP engine (RFC 4340) with CCID-2 congestion control
//! (RFC 4341).
//!
//! This crate is the reproduction's substitute for the Linux 3.13 DCCP
//! implementation the paper tests. It implements, from the RFCs:
//!
//! * the DCCP connection lifecycle: REQUEST/RESPONSE handshake, PARTOPEN,
//!   OPEN, and the CLOSE/RESET teardown handshake,
//! * per-packet 48-bit sequence numbers where *every* packet — including
//!   pure acknowledgments — increments the sequence number,
//! * sequence-validity windows and the SYNC/SYNCACK resynchronisation
//!   handshake used to recover when endpoints fall out of sync,
//! * CCID-2 TCP-like congestion control: a packet-counted congestion
//!   window, slow start / congestion avoidance, loss inference from
//!   acknowledgments, and a transmit timeout that falls back to one packet
//!   per backed-off RTO (DCCP never retransmits data),
//! * the bounded application send queue (`tx_qlen`, default 10 packets)
//!   that a closing socket must drain before it may send CLOSE — the
//!   precondition of the Acknowledgment-Mung resource-exhaustion attack
//!   (paper §VI-B.1), and
//! * the RFC 4340 §8.5 REQUEST-state pseudocode that checks the packet
//!   *type* before the sequence numbers — the root cause of the
//!   REQUEST-Connection-Termination attack (paper §VI-B.3).
//!
//! # Examples
//!
//! ```
//! use snake_netsim::{Dumbbell, DumbbellSpec, SimTime, Simulator};
//! use snake_dccp::{DccpHost, DccpProfile, DccpServerApp};
//!
//! let mut sim = Simulator::new(1);
//! let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
//! let mut server = DccpHost::new(DccpProfile::linux_3_13());
//! server.listen(5001, DccpServerApp::bulk_sender(u64::MAX));
//! sim.set_agent(d.server1, server);
//!
//! let mut client = DccpHost::new(DccpProfile::linux_3_13());
//! client.connect_at(SimTime::ZERO, snake_netsim::Addr::new(d.server1, 5001));
//! sim.set_agent(d.client1, client);
//!
//! sim.run_until(SimTime::from_secs(5));
//! let host = sim.agent::<DccpHost>(d.client1).unwrap();
//! assert!(host.total_goodput() > 1_000_000, "several Mbit in 5 s");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod conn;
mod host;
mod profile;
pub mod seq48;

pub use conn::{DccpConnEvent, DccpConnection, DccpSeg, DccpState};
pub use host::{DccpConnMetrics, DccpHost, DccpServerApp, DccpSocketCensus};
pub use profile::DccpProfile;

/// Application payload bytes carried per DCCP data packet in the
/// evaluation workload.
pub const PACKET_PAYLOAD: u32 = 1_420;
