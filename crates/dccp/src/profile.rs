use snake_netsim::SimDuration;

/// Behavioural parameters of a DCCP implementation.
///
/// The paper evaluates one implementation (Linux 3.13); the profile type
/// exists so ablation benches can flip individual behaviours — notably the
/// RFC-pseudocode type-before-sequence check in REQUEST that enables the
/// REQUEST-Connection-Termination attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DccpProfile {
    /// Display name, as it appears in the paper's tables.
    pub name: String,
    /// Initial congestion window in packets (RFC 4341 §5: roughly 2–4).
    pub initial_cwnd_packets: u32,
    /// Sequence window feature value `W` (RFC 4340 §7.5.1; default 100).
    pub seq_window: u64,
    /// Ack ratio: the receiver acknowledges every `ack_ratio`-th data
    /// packet (RFC 4341 §6.1; default 2).
    pub ack_ratio: u32,
    /// Application send-queue depth in packets (`tx_qlen`; Linux default
    /// 10). A closing socket must drain this queue before sending CLOSE.
    pub tx_qlen: usize,
    /// Lower bound on the transmit timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the transmit timeout.
    pub max_rto: SimDuration,
    /// REQUEST retransmission limit before the client gives up.
    pub request_retries: u32,
    /// CLOSE/CLOSEREQ retransmission limit before force-closing.
    pub close_retries: u32,
    /// Process the packet-type check in REQUEST state *before* validating
    /// sequence numbers, as both the RFC 4340 §8.5 pseudocode and Linux
    /// 3.13 do. Any non-RESPONSE packet with arbitrary sequence numbers
    /// then resets the connection (paper §VI-B.3). Flipping this to
    /// `false` is the fixed behaviour the ablation bench measures.
    pub type_check_before_seq: bool,
    /// How long a socket lingers in TIMEWAIT.
    pub time_wait: SimDuration,
}

impl DccpProfile {
    /// The Linux kernel 3.13 DCCP implementation with CCID-2.
    pub fn linux_3_13() -> DccpProfile {
        DccpProfile {
            name: "Linux 3.13 (DCCP)".to_owned(),
            initial_cwnd_packets: 3,
            seq_window: 100,
            ack_ratio: 2,
            tx_qlen: 10,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            request_retries: 5,
            close_retries: 8,
            type_check_before_seq: true,
            time_wait: SimDuration::from_secs(60),
        }
    }

    /// A hypothetical fixed implementation that validates sequence numbers
    /// before the REQUEST-state type check (the mitigation for the
    /// REQUEST-Connection-Termination attack).
    pub fn linux_3_13_seqcheck_fixed() -> DccpProfile {
        DccpProfile {
            name: "Linux 3.13 (DCCP, seq-check-first)".to_owned(),
            type_check_before_seq: false,
            ..DccpProfile::linux_3_13()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_matches_documented_defaults() {
        let p = DccpProfile::linux_3_13();
        assert_eq!(p.tx_qlen, 10, "paper: send queue defaults to 10 packets");
        assert_eq!(p.seq_window, 100);
        assert_eq!(p.ack_ratio, 2);
        assert!(p.type_check_before_seq);
    }

    #[test]
    fn fixed_variant_flips_only_the_check() {
        let a = DccpProfile::linux_3_13();
        let b = DccpProfile::linux_3_13_seqcheck_fixed();
        assert!(!b.type_check_before_seq);
        assert_eq!(a.tx_qlen, b.tx_qlen);
        assert_eq!(a.seq_window, b.seq_window);
    }
}
