//! Circular 48-bit sequence number arithmetic (RFC 4340 §7.1).
//!
//! DCCP sequence numbers occupy a 48-bit space and every comparison is
//! circular. The attack proxy mutates sequence and acknowledgment fields to
//! arbitrary 48-bit values, so the engine must stay correct at the wrap.

/// The 48-bit modulus.
pub const MOD: u64 = 1 << 48;

/// Mask to 48 bits.
#[inline]
pub fn mask(v: u64) -> u64 {
    v & (MOD - 1)
}

/// `a + b` mod 2^48.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    mask(a.wrapping_add(b))
}

/// `a - b` mod 2^48 (circular distance from `b` forward to `a`).
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    mask(a.wrapping_sub(b))
}

/// Circular `a < b`: true when the forward distance from `a` to `b` is
/// less than half the space (RFC 4340's "circular arithmetic").
#[inline]
pub fn lt(a: u64, b: u64) -> bool {
    a != b && sub(b, a) < MOD / 2
}

/// Circular `a <= b`.
#[inline]
pub fn le(a: u64, b: u64) -> bool {
    a == b || lt(a, b)
}

/// Circular `a > b`.
#[inline]
pub fn gt(a: u64, b: u64) -> bool {
    lt(b, a)
}

/// Circular `a >= b`.
#[inline]
pub fn ge(a: u64, b: u64) -> bool {
    le(b, a)
}

/// Whether `x` lies in the circular closed interval `[lo, hi]`.
#[inline]
pub fn between(x: u64, lo: u64, hi: u64) -> bool {
    sub(x, lo) <= sub(hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(lt(1, 2));
        assert!(gt(2, 1));
        assert!(le(2, 2));
        assert!(ge(5, 1));
    }

    #[test]
    fn ordering_across_wrap() {
        let top = MOD - 1;
        assert!(lt(top, 0));
        assert!(gt(3, top));
        assert!(lt(top - 10, 5));
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(add(MOD - 1, 1), 0);
        assert_eq!(sub(0, 1), MOD - 1);
        assert_eq!(add(5, 10), 15);
    }

    #[test]
    fn between_straddles_wrap() {
        assert!(between(5, 0, 10));
        assert!(!between(11, 0, 10));
        assert!(between(2, MOD - 5, 10), "interval wrapping zero");
        assert!(between(MOD - 3, MOD - 5, 10));
        assert!(!between(MOD - 10, MOD - 5, 10));
    }

    #[test]
    fn mask_truncates() {
        assert_eq!(mask(u64::MAX), MOD - 1);
        assert_eq!(mask(MOD), 0);
    }
}
