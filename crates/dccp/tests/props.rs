//! Property-based tests on DCCP's 48-bit circular arithmetic and the
//! engine's tolerance of adversarial packets.

use proptest::prelude::*;
use snake_dccp::{seq48, DccpConnection, DccpProfile, DccpSeg};
use snake_netsim::SimTime;
use snake_packet::dccp::DccpPacketType;

fn arb48() -> impl Strategy<Value = u64> {
    (0u64..(1 << 48)).prop_map(|v| v)
}

proptest! {
    /// Arithmetic stays inside the 48-bit space.
    #[test]
    fn arithmetic_closed(a in arb48(), b in arb48()) {
        prop_assert!(seq48::add(a, b) < seq48::MOD);
        prop_assert!(seq48::sub(a, b) < seq48::MOD);
    }

    /// add/sub are inverses.
    #[test]
    fn add_sub_inverse(a in arb48(), b in arb48()) {
        prop_assert_eq!(seq48::sub(seq48::add(a, b), b), a);
    }

    /// Ordering is shift-invariant.
    #[test]
    fn ordering_shift_invariant(a in arb48(), b in arb48(), k in arb48()) {
        prop_assert_eq!(seq48::lt(a, b), seq48::lt(seq48::add(a, k), seq48::add(b, k)));
    }

    /// `between` matches its arithmetic definition.
    #[test]
    fn between_definition(x in arb48(), lo in arb48(), hi in arb48()) {
        let member = seq48::between(x, lo, hi);
        prop_assert_eq!(member, seq48::sub(x, lo) <= seq48::sub(hi, lo));
    }
}

fn open_pair(iss: u64) -> (DccpConnection, DccpConnection) {
    let mut client = DccpConnection::client(DccpProfile::linux_3_13(), iss);
    let mut server = DccpConnection::server(DccpProfile::linux_3_13(), seq48::add(iss, 0x9999));
    let mut out = Vec::new();
    client.open(&mut out);
    let req = tx(&out);
    out.clear();
    server.on_packet(req, SimTime::ZERO, &mut out);
    let resp = tx(&out);
    out.clear();
    client.on_packet(resp, SimTime::ZERO, &mut out);
    let ack = tx(&out);
    out.clear();
    server.on_packet(ack, SimTime::ZERO, &mut out);
    (client, server)
}

fn tx(events: &[snake_dccp::DccpConnEvent]) -> DccpSeg {
    events
        .iter()
        .find_map(|e| match e {
            snake_dccp::DccpConnEvent::Transmit(s) => Some(*s),
            _ => None,
        })
        .expect("transmit")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The handshake reaches OPEN on the server for any ISS, including
    /// values that wrap mid-connection.
    #[test]
    fn handshake_for_any_iss(iss in arb48()) {
        let (_client, server) = open_pair(iss);
        prop_assert_eq!(server.state(), snake_dccp::DccpState::Open);
    }

    /// Arbitrary garbage packets never panic the engine, and far
    /// out-of-window sequence numbers never advance GSR.
    #[test]
    fn engine_tolerates_arbitrary_packets(
        pkts in prop::collection::vec((arb48(), arb48(), 0u8..10, 0u32..2_000, any::<u16>()), 1..50)
    ) {
        let (mut client, _server) = open_pair(1_000);
        let w = 100; // the profile's sequence window
        let mut out = Vec::new();
        for (seq, ack, ty, len, echo) in pkts {
            let ptype = DccpPacketType::from_code(ty).unwrap_or(DccpPacketType::Data);
            let before = client.gsr();
            let seg = DccpSeg { ptype, seq, ack, loss_echo: echo, payload_len: len };
            client.on_packet(seg, SimTime::ZERO, &mut out);
            out.clear();
            if client.state() == snake_dccp::DccpState::Closed {
                break;
            }
            // GSR only moves within the validity window of its previous
            // value (or via Sync/SyncAck whose ack must be plausible).
            let moved = seq48::sub(client.gsr(), before);
            prop_assert!(moved <= 3 * w / 4 + 1 || ptype == DccpPacketType::SyncAck,
                "gsr jumped by {} on {:?}", moved, ptype);
        }
    }
}
