//! Minimal JSON support for the campaign journal.
//!
//! The workspace builds with no external dependencies, so the streaming
//! JSONL journal (see `snake-core::journal`) serialises through this small
//! value model instead of serde. Integers are kept exact: `u64`/`i64`
//! values round-trip without passing through `f64`, which matters for
//! 48-bit DCCP sequence numbers and byte counters.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for counters and ids).
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Any number that is not an integer.
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object with insertion order preserved (stable journal lines).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to compact JSON text (single line, no trailing newline).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Convenience constructor for object values.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Types that can serialise themselves to a [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait FromJson: Sized {
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

/// Parse or decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the error when parsing text; `None` for decode errors.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A decode (shape-mismatch) error.
    pub fn decode(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn parse(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {}", self.message, at),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Helpers for pulling typed fields out of object values.
pub trait ObjExt {
    fn req(&self, key: &str) -> Result<&Value, JsonError>;
    fn req_u64(&self, key: &str) -> Result<u64, JsonError>;
    fn req_f64(&self, key: &str) -> Result<f64, JsonError>;
    fn req_bool(&self, key: &str) -> Result<bool, JsonError>;
    fn req_str(&self, key: &str) -> Result<&str, JsonError>;
}

impl ObjExt for Value {
    fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::decode(format!("missing field `{key}`")))
    }

    fn req_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| JsonError::decode(format!("field `{key}` is not a u64")))
    }

    fn req_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| JsonError::decode(format!("field `{key}` is not a number")))
    }

    fn req_bool(&self, key: &str) -> Result<bool, JsonError> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| JsonError::decode(format!("field `{key}` is not a bool")))
    }

    fn req_str(&self, key: &str) -> Result<&str, JsonError> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| JsonError::decode(format!("field `{key}` is not a string")))
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` always keeps a decimal point or exponent, so the
                // parser reads it back as F64.
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no Inf/NaN; null is the conventional stand-in.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::parse("trailing characters", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(JsonError::parse("unexpected character", self.pos)),
            None => Err(JsonError::parse("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::parse(format!("expected `{text}`"), self.pos))
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(JsonError::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        let mut keys_seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if keys_seen.insert(key.clone(), ()).is_some() {
                return Err(JsonError::parse(format!("duplicate key `{key}`"), self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(JsonError::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::parse("bad \\u escape", start))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::parse("bad \\u escape", start))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::parse("bad \\u escape", start))?;
                            // Surrogates are not paired here; the writer only
                            // emits \u for control characters.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::parse("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::parse("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::parse("invalid number", start))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| JsonError::parse("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn big_integers_stay_exact() {
        let big = (1u64 << 48) + 12345; // 48-bit seq numbers must not lose bits
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.to_string_compact(), big.to_string());
        let huge = u64::MAX;
        assert_eq!(parse(&huge.to_string()).unwrap().as_u64(), Some(huge));
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "tab\there \"quote\" back\\slash\nnewline \u{1}ctrl é";
        let v = Value::Str(s.to_owned());
        let text = v.to_string_compact();
        assert!(
            !text.contains('\n'),
            "journal lines must stay single-line: {text}"
        );
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn objects_preserve_order_and_lookup() {
        let v = parse(r#"{"b": 1, "a": {"x": [1, 2, null]}, "c": -3.25}"#).unwrap();
        assert_eq!(v.req_u64("b").unwrap(), 1);
        assert_eq!(
            v.get("a")
                .unwrap()
                .get("x")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            3
        );
        assert_eq!(v.req_f64("c").unwrap(), -3.25);
        match &v {
            Value::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["b", "a", "c"]);
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("nope").unwrap_err();
        assert!(err.to_string().contains("null"));
    }

    #[test]
    fn missing_fields_decode_error() {
        let v = parse(r#"{"a": 1}"#).unwrap();
        let err = v.req_u64("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = v.req_str("a").unwrap_err();
        assert!(err.to_string().contains("not a string"));
    }
}
