use std::any::Any;

use rand::rngs::SmallRng;

use crate::packet::{Addr, Packet};
use crate::sim::{Command, NodeId};
use crate::time::{SimDuration, SimTime};

/// Handle for a pending timer, used to cancel it. Carries the timer's fire
/// time: the timer wheel locates the pending entry by handle id alone, but
/// the reference heap scheduler needs the fire time to purge cancellation
/// records once the deadline passes (a cancelled timer can never fire
/// after it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    pub(crate) id: u64,
    pub(crate) at: SimTime,
}

/// A protocol endpoint (or any other process) running on a simulated node.
///
/// Agents are the systems under test: the TCP and DCCP hosts implement this
/// trait. All interaction with the network happens through the [`Ctx`]
/// passed to each callback; agents never touch the simulator directly, which
/// keeps them deterministic and single-threaded.
///
/// The `Any` supertrait lets the executor downcast agents after a run to
/// extract metrics (the simulated equivalent of the paper's executor
/// querying the OS with `netstat`). The `Send + Sync` supertraits let a
/// paused simulator snapshot be shared across executor worker threads, which
/// fork their own copies from it.
pub trait Agent: Any + Send + Sync {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when a packet addressed to this node arrives.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet);

    /// Called when a timer set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Deep-clones this agent as a boxed trait object, for
    /// [`Simulator::fork`](crate::Simulator::fork). The default returns
    /// `None` (not forkable); production agents override it with
    /// `Some(Box::new(self.clone()))`.
    fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
        None
    }
}

/// The agent's window into the simulator during a callback.
///
/// Operations are buffered and applied when the callback returns, keeping
/// event application atomic per callback.
#[derive(Debug)]
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) commands: &'a mut Vec<Command>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) next_timer: &'a mut u64,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A transport address on this node.
    pub fn addr(&self, port: u16) -> Addr {
        Addr::new(self.node, port)
    }

    /// Sends a packet; it is routed from this node toward `packet.dst`.
    pub fn send(&mut self, packet: Packet) {
        self.commands.push(Command::Send {
            from: self.node,
            packet,
        });
    }

    /// Sets a one-shot timer `after` from now; `tag` is returned to
    /// [`Agent::on_timer`].
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) -> TimerHandle {
        let handle = TimerHandle {
            id: *self.next_timer,
            at: self.now + after,
        };
        *self.next_timer += 1;
        self.commands.push(Command::SetTimer {
            node: self.node,
            handle,
            tag,
        });
        handle
    }

    /// Sets a one-shot timer at an absolute time (clamped to no earlier
    /// than now); `tag` is returned to [`Agent::on_timer`]. Unlike
    /// [`set_timer`](Ctx::set_timer), this cannot overflow near
    /// [`SimTime::MAX`], so it is the right way to arm "never"-style
    /// sentinel timers.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerHandle {
        let handle = TimerHandle {
            id: *self.next_timer,
            at: at.max(self.now),
        };
        *self.next_timer += 1;
        self.commands.push(Command::SetTimer {
            node: self.node,
            handle,
            tag,
        });
        handle
    }

    /// Cancels a timer; harmless if it already fired.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.commands.push(Command::CancelTimer { handle });
    }

    /// The node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_buffers_commands() {
        let mut commands = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next_timer = 0;
        let mut ctx = Ctx {
            now: SimTime::from_secs(1),
            node: NodeId::from_index(0),
            commands: &mut commands,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        let h = ctx.set_timer(SimDuration::from_millis(10), 42);
        ctx.cancel_timer(h);
        assert_eq!(commands.len(), 2);
        match &commands[0] {
            Command::SetTimer { handle, tag, .. } => {
                assert_eq!(handle.at, SimTime::from_millis(1_010));
                assert_eq!(*tag, 42);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn timer_handles_are_unique() {
        let mut commands = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next_timer = 0;
        let mut ctx = Ctx {
            now: SimTime::ZERO,
            node: NodeId::from_index(0),
            commands: &mut commands,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        let a = ctx.set_timer(SimDuration::ZERO, 0);
        let b = ctx.set_timer(SimDuration::ZERO, 0);
        assert_ne!(a, b);
    }
}
