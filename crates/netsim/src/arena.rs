//! Slab-style recycling arena for in-flight [`Packet`] storage.
//!
//! Every packet travelling through the simulator — parked in a scheduled
//! event, a channel queue, or a delivery FIFO — lives in one `PacketArena`
//! slot and is referred to by a 4-byte [`PacketRef`](crate::sched::PacketRef)
//! index. Taking a packet returns its slot to a free list, so steady-state
//! traffic recycles a small working set of `Packet` (and, transitively,
//! inline [`HeaderBuf`](crate::smallbuf::HeaderBuf)) storage instead of
//! allocating per hop. Slots are handed out deterministically (LIFO free
//! list, then append), so the arena's layout — and therefore a forked
//! clone of it — is a pure function of the event history.

use crate::packet::Packet;

/// Recycling store for packets referenced by scheduled events and channel
/// queues. Cloning clones the slots verbatim, which is exactly what the
/// snapshot-fork path needs: outstanding `PacketRef`s in the cloned event
/// queue resolve to identical packet bytes in the cloned arena.
#[derive(Debug, Clone, Default)]
pub(crate) struct PacketArena {
    slots: Vec<Packet>,
    /// Indices of vacated slots, reused LIFO.
    free: Vec<u32>,
    /// Slots created because the free list was empty.
    allocs: u64,
    /// Slots recycled from the free list.
    reuses: u64,
}

impl PacketArena {
    /// Parks a packet, returning the slot index to embed in an event.
    pub(crate) fn insert(&mut self, packet: Packet) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.reuses += 1;
                self.slots[idx as usize] = packet;
                idx
            }
            None => {
                self.allocs += 1;
                let idx = self.slots.len() as u32;
                self.slots.push(packet);
                idx
            }
        }
    }

    /// Removes and returns the packet at `idx`, vacating the slot. Each
    /// ref is taken exactly once — events own their packet refs uniquely.
    pub(crate) fn take(&mut self, idx: u32) -> Packet {
        self.free.push(idx);
        std::mem::replace(&mut self.slots[idx as usize], Packet::tombstone())
    }

    /// Slots ever created (the arena's high-water occupancy).
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total insertions that grew the arena.
    pub(crate) fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Total insertions served from the free list.
    pub(crate) fn reuses(&self) -> u64 {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, Protocol};
    use crate::sim::NodeId;

    fn pkt(payload_len: u32) -> Packet {
        Packet::new(
            Addr::new(NodeId::from_index(0), 1),
            Addr::new(NodeId::from_index(1), 2),
            Protocol::Other(9),
            vec![0xAB; 8],
            payload_len,
        )
    }

    #[test]
    fn free_list_recycles_lifo() {
        let mut arena = PacketArena::default();
        let a = arena.insert(pkt(1));
        let b = arena.insert(pkt(2));
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.allocs(), 2);
        assert_eq!(arena.take(a).payload_len, 1);
        assert_eq!(arena.take(b).payload_len, 2);
        // LIFO: last-freed slot (b's) is reused first.
        assert_eq!(arena.insert(pkt(3)), 1);
        assert_eq!(arena.insert(pkt(4)), 0);
        assert_eq!(arena.reuses(), 2);
        assert_eq!(arena.capacity(), 2);
    }

    #[test]
    fn clone_preserves_slots_and_free_list() {
        let mut arena = PacketArena::default();
        let a = arena.insert(pkt(7));
        let _b = arena.insert(pkt(8));
        arena.take(a);
        let mut fork = arena.clone();
        // Both sides hand out the same slot next and resolve b equally.
        assert_eq!(arena.insert(pkt(9)), fork.insert(pkt(9)));
        assert_eq!(arena.take(1).payload_len, fork.take(1).payload_len);
    }
}
