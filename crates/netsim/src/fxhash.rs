//! A hand-rolled FxHash-style hasher for the simulator's hot maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is keyed with
//! per-process randomness and shows up on profiles for the per-event timer
//! and control lookups. The maps in this workspace are keyed by small
//! integers, addresses, and short strings generated inside the simulation —
//! never by untrusted input — so HashDoS resistance buys nothing here, while
//! determinism matters a great deal: fork equivalence and campaign resume
//! both depend on identical runs hashing identically in every process.
//!
//! The mixing function is the classic Firefox/rustc "FxHash" fold
//! (`rotate ^ word, * constant`), written out here rather than pulled in as
//! a dependency.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (the fractional bits of the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher. Not cryptographic, not
/// DoS-resistant — deterministic and fast, for simulation-internal keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s with no per-process key material.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"SYN_RECEIVED"), hash_of(&"SYN_RECEIVED"));
        assert_eq!(hash_of(&(7u64, "ACK")), hash_of(&(7u64, "ACK")));
    }

    #[test]
    fn nearby_keys_do_not_collide() {
        let hashes: std::collections::BTreeSet<u64> = (0u64..1000).map(|n| hash_of(&n)).collect();
        assert_eq!(hashes.len(), 1000, "sequential u64 keys must not collide");
    }

    #[test]
    fn split_strings_differ_from_joined_ones() {
        // The length fold keeps short-tail inputs from aliasing.
        assert_ne!(hash_of(&"ab"), hash_of(&"a\0"));
        assert_ne!(hash_of(&[1u8, 2]), hash_of(&[1u8, 2, 0]));
    }

    #[test]
    fn map_behaves_like_a_hashmap() {
        let mut m: FxHashMap<(u64, String), u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert((i, format!("k{i}")), i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(21, "k21".to_owned())), Some(&42));
    }
}
