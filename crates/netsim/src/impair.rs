//! Adversarial link impairments: stochastic loss, duplication, corruption,
//! reordering jitter, and deterministic link flapping.
//!
//! Every stochastic decision is drawn from a *per-channel impairment RNG
//! lane* seeded from the simulator seed (see `Channel`), never from the
//! agents' RNG — so enabling an impairment on one link cannot reshuffle
//! random draws anywhere else in the simulation. Same seed + same
//! impairment spec ⇒ bit-identical runs, which is what keeps snapshot-fork
//! execution and cross-strategy memoization exact under noise.
//!
//! Probabilities are stored in parts-per-million (`u32`) rather than `f64`
//! so [`Impairment`] stays `Copy + Eq + Hash`-friendly and a spec can be
//! compared, journaled and replayed without float round-trip worries.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// One million — the denominator of all impairment probabilities.
pub const PPM: u32 = 1_000_000;

/// A deterministic link up/down schedule: the link direction is down
/// (drops every arrival) during `[first_down + k·period, first_down +
/// k·period + down_for)` for every `k ≥ 0`.
///
/// Flapping consumes no RNG draws at all: whether an arrival is dropped
/// depends only on the simulated clock, so a flap schedule composes with
/// the stochastic impairments without perturbing their draw sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSpec {
    /// When the first outage starts.
    pub first_down: SimTime,
    /// How long each outage lasts. Must be shorter than `period`.
    pub down_for: SimDuration,
    /// Distance between the starts of consecutive outages.
    pub period: SimDuration,
}

impl FlapSpec {
    /// Whether the link direction is down at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        if now < self.first_down {
            return false;
        }
        let since = (now - self.first_down).as_nanos();
        let period = self.period.as_nanos().max(1);
        since % period < self.down_for.as_nanos()
    }
}

/// Impairments applied to one direction of a link.
///
/// The default ([`Impairment::NONE`]) applies nothing and — crucially —
/// draws nothing: a link with no impairments never touches its impairment
/// RNG lane, so adding the field is invisible to existing scenarios.
///
/// Order of application per arriving packet: flap window check (no draw),
/// loss draw, corruption draw, duplication draw; an independently drawn
/// reorder jitter is added to the propagation delay at transmit
/// completion. Draws only happen for impairments whose probability is
/// non-zero, so the draw sequence of a spec is stable when unrelated
/// impairments are added elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Impairment {
    /// Probability (ppm) an arriving packet is silently lost.
    pub loss_ppm: u32,
    /// Probability (ppm) an arriving packet is duplicated (the copy is
    /// offered to the queue right behind the original).
    pub dup_ppm: u32,
    /// Probability (ppm) an arriving packet is corrupted on the wire.
    /// Corrupted frames fail the receiving NIC's frame check and are
    /// discarded, as on real Ethernet — so corruption is loss with its
    /// own counter and its own draw.
    pub corrupt_ppm: u32,
    /// Probability (ppm) a delivered packet is held back by an extra
    /// uniform delay in `(0, jitter]`, overtaking later traffic.
    pub reorder_ppm: u32,
    /// Maximum extra delay a reordered packet receives.
    pub jitter: SimDuration,
    /// Optional deterministic link flapping schedule.
    pub flap: Option<FlapSpec>,
}

impl Impairment {
    /// No impairments: the spec every link starts with.
    pub const NONE: Impairment = Impairment {
        loss_ppm: 0,
        dup_ppm: 0,
        corrupt_ppm: 0,
        reorder_ppm: 0,
        jitter: SimDuration::ZERO,
        flap: None,
    };

    /// Whether this spec applies nothing at all.
    pub fn is_none(&self) -> bool {
        *self == Impairment::NONE
    }

    /// Whether any impairment consumes RNG draws (everything but flap).
    pub fn is_stochastic(&self) -> bool {
        self.loss_ppm > 0 || self.dup_ppm > 0 || self.corrupt_ppm > 0 || self.reorder_ppm > 0
    }

    /// The built-in presets, name → spec. These are the configurations the
    /// robustness test matrix and `snake campaign --impair NAME` use.
    pub fn presets() -> &'static [(&'static str, Impairment)] {
        const MS: u64 = 1_000_000; // nanoseconds per millisecond
        const PRESETS: &[(&str, Impairment)] = &[
            (
                "light",
                Impairment {
                    loss_ppm: 1_000,    // 0.1 %
                    reorder_ppm: 5_000, // 0.5 %
                    jitter: SimDuration::from_nanos(500_000),
                    ..Impairment::NONE
                },
            ),
            (
                "lossy",
                Impairment {
                    loss_ppm: 20_000,   // 2 %
                    dup_ppm: 2_000,     // 0.2 %
                    corrupt_ppm: 5_000, // 0.5 %
                    ..Impairment::NONE
                },
            ),
            (
                "jittery",
                Impairment {
                    reorder_ppm: 50_000, // 5 %
                    jitter: SimDuration::from_nanos(3 * MS),
                    ..Impairment::NONE
                },
            ),
            (
                "flappy",
                Impairment {
                    flap: Some(FlapSpec {
                        first_down: SimTime::from_millis(3_000),
                        down_for: SimDuration::from_millis(150),
                        period: SimDuration::from_millis(5_000),
                    }),
                    ..Impairment::NONE
                },
            ),
            (
                "chaos",
                Impairment {
                    loss_ppm: 10_000,   // 1 %
                    dup_ppm: 5_000,     // 0.5 %
                    corrupt_ppm: 5_000, // 0.5 %
                    reorder_ppm: 20_000,
                    jitter: SimDuration::from_nanos(2 * MS),
                    flap: Some(FlapSpec {
                        first_down: SimTime::from_millis(4_000),
                        down_for: SimDuration::from_millis(120),
                        period: SimDuration::from_millis(6_000),
                    }),
                },
            ),
        ];
        PRESETS
    }

    /// Looks up a built-in preset by name.
    pub fn preset(name: &str) -> Option<Impairment> {
        Impairment::presets()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, spec)| *spec)
    }

    /// Parses an impairment spec: either a preset name (`lossy`) or a
    /// comma-separated `key=value` list:
    ///
    /// * `loss=F` / `dup=F` / `corrupt=F` / `reorder=F` — probabilities as
    ///   fractions in `[0, 1]` (so `loss=0.02` is 2 % loss),
    /// * `jitter=MS` — maximum reorder delay in milliseconds,
    /// * `flap=FIRST:DOWN:PERIOD` — outage schedule in seconds.
    ///
    /// `reorder` without an explicit `jitter` defaults to 1 ms of jitter.
    pub fn parse(s: &str) -> Result<Impairment, String> {
        let s = s.trim();
        if let Some(preset) = Impairment::preset(s) {
            return Ok(preset);
        }
        let mut spec = Impairment::NONE;
        let mut jitter_set = false;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("impairment `{part}` is not KEY=VALUE or a preset name"))?;
            match key {
                "loss" => spec.loss_ppm = parse_fraction(key, value)?,
                "dup" => spec.dup_ppm = parse_fraction(key, value)?,
                "corrupt" => spec.corrupt_ppm = parse_fraction(key, value)?,
                "reorder" => spec.reorder_ppm = parse_fraction(key, value)?,
                "jitter" => {
                    let ms: f64 = value
                        .parse()
                        .map_err(|_| format!("jitter expects milliseconds (got `{value}`)"))?;
                    if !(0.0..=60_000.0).contains(&ms) {
                        return Err(format!("jitter must be within [0, 60000] ms (got {ms})"));
                    }
                    spec.jitter = SimDuration::from_secs_f64(ms / 1e3);
                    jitter_set = true;
                }
                "flap" => spec.flap = Some(parse_flap(value)?),
                other => {
                    return Err(format!(
                        "unknown impairment `{other}` (expected loss/dup/corrupt/reorder/jitter/flap or a preset: {})",
                        preset_names().join(", ")
                    ))
                }
            }
        }
        if spec.reorder_ppm > 0 && !jitter_set && spec.jitter == SimDuration::ZERO {
            spec.jitter = SimDuration::from_millis(1);
        }
        Ok(spec)
    }
}

impl fmt::Display for Impairment {
    /// Round-trippable `key=value` rendering (the manifest uses this).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut parts: Vec<String> = Vec::new();
        let frac = |ppm: u32| ppm as f64 / PPM as f64;
        if self.loss_ppm > 0 {
            parts.push(format!("loss={}", frac(self.loss_ppm)));
        }
        if self.dup_ppm > 0 {
            parts.push(format!("dup={}", frac(self.dup_ppm)));
        }
        if self.corrupt_ppm > 0 {
            parts.push(format!("corrupt={}", frac(self.corrupt_ppm)));
        }
        if self.reorder_ppm > 0 {
            parts.push(format!("reorder={}", frac(self.reorder_ppm)));
        }
        if self.jitter > SimDuration::ZERO {
            parts.push(format!("jitter={}", self.jitter.as_nanos() as f64 / 1e6));
        }
        if let Some(flap) = &self.flap {
            parts.push(format!(
                "flap={}:{}:{}",
                flap.first_down.as_secs_f64(),
                flap.down_for.as_secs_f64(),
                flap.period.as_secs_f64()
            ));
        }
        f.write_str(&parts.join(","))
    }
}

/// The preset names, for error messages and CLI help.
pub fn preset_names() -> Vec<&'static str> {
    Impairment::presets().iter().map(|(n, _)| *n).collect()
}

fn parse_fraction(key: &str, value: &str) -> Result<u32, String> {
    let f: f64 = value
        .parse()
        .map_err(|_| format!("{key} expects a fraction in [0, 1] (got `{value}`)"))?;
    if !(0.0..=1.0).contains(&f) {
        return Err(format!("{key} must be within [0, 1] (got {f})"));
    }
    Ok((f * PPM as f64).round() as u32)
}

fn parse_flap(value: &str) -> Result<FlapSpec, String> {
    let parts: Vec<&str> = value.split(':').collect();
    let [first, down, period] = parts.as_slice() else {
        return Err(format!(
            "flap expects FIRST:DOWN:PERIOD in seconds (got `{value}`)"
        ));
    };
    let secs = |name: &str, raw: &str| -> Result<f64, String> {
        let v: f64 = raw
            .parse()
            .map_err(|_| format!("flap {name} expects seconds (got `{raw}`)"))?;
        if !(0.0..=3_600.0).contains(&v) {
            return Err(format!("flap {name} must be within [0, 3600] s (got {v})"));
        }
        Ok(v)
    };
    let first = secs("FIRST", first)?;
    let down = secs("DOWN", down)?;
    let period = secs("PERIOD", period)?;
    if down <= 0.0 {
        return Err("flap DOWN must be positive".to_owned());
    }
    if period <= down {
        return Err(format!(
            "flap PERIOD ({period}) must exceed DOWN ({down}) so the link comes back up"
        ));
    }
    Ok(FlapSpec {
        first_down: SimTime::from_nanos((first * 1e9).round() as u64),
        down_for: SimDuration::from_secs_f64(down),
        period: SimDuration::from_secs_f64(period),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_default_and_draws_nothing() {
        assert_eq!(Impairment::default(), Impairment::NONE);
        assert!(Impairment::NONE.is_none());
        assert!(!Impairment::NONE.is_stochastic());
    }

    #[test]
    fn parse_key_value_list() {
        let spec = Impairment::parse("loss=0.02, dup=0.001,corrupt=0.005").unwrap();
        assert_eq!(spec.loss_ppm, 20_000);
        assert_eq!(spec.dup_ppm, 1_000);
        assert_eq!(spec.corrupt_ppm, 5_000);
        assert_eq!(spec.reorder_ppm, 0);
        assert!(spec.flap.is_none());
    }

    #[test]
    fn parse_reorder_defaults_jitter() {
        let spec = Impairment::parse("reorder=0.05").unwrap();
        assert_eq!(spec.reorder_ppm, 50_000);
        assert_eq!(spec.jitter, SimDuration::from_millis(1));
        let explicit = Impairment::parse("reorder=0.05,jitter=2.5").unwrap();
        assert_eq!(explicit.jitter, SimDuration::from_micros(2_500));
    }

    #[test]
    fn parse_flap_schedule() {
        let spec = Impairment::parse("flap=3:0.2:5").unwrap();
        let flap = spec.flap.unwrap();
        assert_eq!(flap.first_down, SimTime::from_secs(3));
        assert_eq!(flap.down_for, SimDuration::from_millis(200));
        assert_eq!(flap.period, SimDuration::from_secs(5));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Impairment::parse("loss=1.5").is_err());
        assert!(Impairment::parse("loss=-0.1").is_err());
        assert!(Impairment::parse("warble=1").is_err());
        assert!(Impairment::parse("flap=1:2").is_err());
        assert!(Impairment::parse("flap=1:5:3").is_err(), "period <= down");
        assert!(Impairment::parse("loss").is_err(), "missing =value");
    }

    #[test]
    fn every_preset_parses_by_name() {
        for (name, spec) in Impairment::presets() {
            assert_eq!(Impairment::parse(name).unwrap(), *spec, "preset {name}");
            assert!(!spec.is_none(), "preset {name} must impair something");
        }
    }

    #[test]
    fn display_round_trips() {
        for (name, spec) in Impairment::presets() {
            let rendered = spec.to_string();
            let reparsed = Impairment::parse(&rendered).unwrap();
            assert_eq!(reparsed, *spec, "preset {name} via `{rendered}`");
        }
        assert_eq!(Impairment::NONE.to_string(), "none");
    }

    #[test]
    fn flap_windows_are_periodic() {
        let flap = FlapSpec {
            first_down: SimTime::from_secs(2),
            down_for: SimDuration::from_millis(100),
            period: SimDuration::from_secs(1),
        };
        assert!(!flap.is_down(SimTime::from_millis(1_999)));
        assert!(flap.is_down(SimTime::from_secs(2)));
        assert!(flap.is_down(SimTime::from_millis(2_099)));
        assert!(!flap.is_down(SimTime::from_millis(2_100)));
        assert!(flap.is_down(SimTime::from_millis(3_050)), "next period");
        assert!(!flap.is_down(SimTime::from_millis(3_500)));
    }
}
