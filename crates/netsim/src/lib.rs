//! Deterministic discrete-event network emulator.
//!
//! SNAKE's executors run each attack scenario on an emulated network: the
//! paper uses NS-3 tying together KVM virtual machines in a dumbbell
//! topology, with the attack proxy spliced into one client's access link.
//! This crate is the reproduction's substitute substrate: a single-threaded,
//! seeded discrete-event simulator providing
//!
//! * nodes running protocol [`Agent`]s (the systems under test),
//! * duplex [`links`](LinkSpec) with bandwidth, propagation delay, and
//!   finite tail-drop queues (the bottleneck that congestion control reacts
//!   to),
//! * static shortest-path routing,
//! * a [`Tap`] hook on any link — the attach point for the attack proxy,
//!   mirroring the paper's modified NS-3 tap-bridge, and
//! * scripted control actions (start/stop applications mid-run).
//!
//! Determinism is a feature the paper's testbed does not have: identical
//! `(topology, agents, seed)` produce identical packet traces, which makes
//! the repeatability re-test exact and the whole campaign reproducible.
//!
//! # Examples
//!
//! Two nodes exchanging one packet over a 10 Mbit/s link:
//!
//! ```
//! use snake_netsim::{Agent, Ctx, LinkSpec, Packet, Protocol, SimDuration, SimTime, Simulator};
//!
//! struct Pinger { peer: snake_netsim::NodeId, got: bool }
//! impl Agent for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         let pkt = Packet::new(
//!             ctx.addr(7), snake_netsim::Addr::new(self.peer, 7),
//!             Protocol::Other(99), vec![0u8; 8], 100,
//!         );
//!         ctx.send(pkt);
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) { self.got = true; }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_node("a");
//! let b = sim.add_node("b");
//! sim.set_agent(a, Pinger { peer: b, got: false });
//! sim.set_agent(b, Pinger { peer: a, got: false });
//! sim.add_link(a, b, LinkSpec::new(10_000_000, SimDuration::from_millis(5), 64));
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.agent::<Pinger>(b).unwrap().got);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod agent;
mod arena;
mod fxhash;
mod impair;
mod link;
mod packet;
mod sched;
mod sim;
mod smallbuf;
mod tap;
mod time;
mod topology;
mod trace;

pub use agent::{Agent, Ctx, TimerHandle};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use impair::{preset_names, FlapSpec, Impairment, PPM};
pub use link::{Aqm, ChannelStats, LinkId, LinkSpec};
pub use packet::{Addr, Packet, Protocol};
pub use sim::{NodeId, SimStats, Simulator};
pub use smallbuf::HeaderBuf;
pub use tap::{Tap, TapCtx};
pub use time::{SimDuration, SimTime};
pub use topology::{
    BuiltTopology, Dumbbell, DumbbellSpec, NodeRole, TopoLink, TopoNode, TopologyGen,
    TopologyGenSpec, TopologyKind, TopologyLayout,
};
pub use trace::{Trace, TraceRecord};
