use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::impair::{Impairment, PPM};
use crate::packet::Packet;
use crate::time::{tx_delay, SimDuration, SimTime};

/// Identifier of a duplex link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Queue management discipline for a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aqm {
    /// Plain FIFO tail drop.
    DropTail,
    /// A gentle RED variant: once the queue passes a quarter of its
    /// capacity, arrivals are dropped with probability ramping linearly to
    /// 15% at full (where tail drop takes over anyway). Used on the
    /// evaluation bottleneck to desynchronise competing flows, as RED does
    /// on real routers.
    Red,
}

/// Parameters of a duplex link: bandwidth, one-way propagation delay,
/// per-direction queue capacity in packets, and optional adversarial
/// impairments.
///
/// The finite queue is what turns over-subscription into loss, which is the
/// congestion signal TCP New Reno and DCCP CCID-2 respond to; without it
/// none of the congestion-control attacks would have anything to attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Link rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in packets, per direction.
    pub queue_packets: usize,
    /// Queue management discipline.
    pub aqm: Aqm,
    /// Adversarial impairments applied to each direction
    /// ([`Impairment::NONE`] by default).
    pub impair: Impairment,
}

impl LinkSpec {
    /// Creates a tail-drop link spec, validating the parameters.
    ///
    /// Zero bandwidth would make transmission time infinite and a zero
    /// queue could never start a transmission, so both are rejected.
    pub fn try_new(
        bandwidth_bps: u64,
        delay: SimDuration,
        queue_packets: usize,
    ) -> Result<LinkSpec, String> {
        if bandwidth_bps == 0 {
            return Err("link bandwidth must be positive".to_owned());
        }
        if queue_packets == 0 {
            return Err("link queue must hold at least one packet".to_owned());
        }
        Ok(LinkSpec {
            bandwidth_bps,
            delay,
            queue_packets,
            aqm: Aqm::DropTail,
            impair: Impairment::NONE,
        })
    }

    /// Creates a tail-drop link spec.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `queue_packets` is zero; use
    /// [`LinkSpec::try_new`] to validate untrusted input instead.
    pub fn new(bandwidth_bps: u64, delay: SimDuration, queue_packets: usize) -> LinkSpec {
        LinkSpec::try_new(bandwidth_bps, delay, queue_packets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Switches the spec to RED queue management.
    pub fn with_red(mut self) -> LinkSpec {
        self.aqm = Aqm::Red;
        self
    }

    /// Applies an impairment spec to both directions of the link.
    pub fn with_impairment(mut self, impair: Impairment) -> LinkSpec {
        self.impair = impair;
        self
    }
}

/// Counters for one direction of a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Packets accepted onto the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full (or by RED).
    pub dropped: u64,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Bytes fully transmitted (wire lengths).
    pub bytes: u64,
    /// Packets removed by the stochastic loss impairment.
    pub lost: u64,
    /// Packets duplicated by the duplication impairment.
    pub duplicated: u64,
    /// Packets discarded as corrupted (failed frame check on receive).
    pub corrupted: u64,
    /// Packets delayed by reorder jitter.
    pub reordered: u64,
    /// Packets dropped because the link was in a flap outage window.
    pub flap_dropped: u64,
}

impl ChannelStats {
    /// Total packets removed or perturbed by impairments (not queue drops).
    pub fn impaired(&self) -> u64 {
        self.lost + self.duplicated + self.corrupted + self.reordered + self.flap_dropped
    }
}

/// Mixes a simulator seed, a lane index and a lane salt into an
/// independent RNG seed (a splitmix64 finalizer over the xor-combined
/// inputs). Each subsystem draws from its own lane, so adding draws in one
/// lane — enabling an impairment, adding a RED queue — never reshuffles
/// the sequence seen by any other.
pub(crate) fn lane_seed(seed: u64, lane: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lane salt for a channel's AQM (RED) draws.
pub(crate) const LANE_AQM: u64 = 1;
/// Lane salt for a channel's impairment draws.
pub(crate) const LANE_IMPAIR: u64 = 2;

/// One direction of a duplex link: a FIFO tail-drop queue feeding a
/// transmitter, followed by fixed propagation delay, with an optional
/// impairment stage in front of the queue.
///
/// Each channel owns two private RNG lanes derived from the simulator
/// seed and the channel's index: one for AQM drop decisions, one for
/// impairment draws. A lane only advances when *this* channel consults
/// it, so a channel's random behaviour is a pure function of the seed and
/// the traffic it has carried — the property the snapshot-fork executor
/// and the memoization layer rely on.
#[derive(Debug, Clone)]
pub(crate) struct Channel {
    pub(crate) spec: LinkSpec,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    aqm_rng: SmallRng,
    impair_rng: SmallRng,
    pub(crate) stats: ChannelStats,
}

impl Channel {
    /// Packets currently held by this channel (queued plus in flight),
    /// used to estimate how much a simulator fork copies.
    pub(crate) fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    pub(crate) fn new(spec: LinkSpec, sim_seed: u64, index: usize) -> Channel {
        let lane = |salt| SmallRng::seed_from_u64(lane_seed(sim_seed, index as u64, salt));
        Channel {
            spec,
            queue: VecDeque::new(),
            in_flight: None,
            aqm_rng: lane(LANE_AQM),
            impair_rng: lane(LANE_IMPAIR),
            stats: ChannelStats::default(),
        }
    }

    /// Draws one impairment decision with probability `ppm` / 1e6.
    fn draw(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.impair_rng.gen_range(0..PPM) < ppm
    }

    /// Offers a packet to the channel. Returns the completion time of a
    /// newly started transmission (the caller schedules the dequeue event),
    /// or `None` if the packet was queued behind an in-flight one or
    /// dropped.
    ///
    /// Impairments run in front of the queue in a fixed order — flap
    /// window (no draw), loss, corruption, duplication — and each draw
    /// happens only when its probability is non-zero, so an unimpaired
    /// channel never touches its impairment lane.
    pub(crate) fn enqueue(&mut self, packet: Packet, now: SimTime) -> Option<SimTime> {
        let impair = self.spec.impair;
        if let Some(flap) = &impair.flap {
            if flap.is_down(now) {
                self.stats.flap_dropped += 1;
                return None;
            }
        }
        if self.draw(impair.loss_ppm) {
            self.stats.lost += 1;
            return None;
        }
        if self.draw(impair.corrupt_ppm) {
            // Corrupted on the wire: the receiving side's frame check fails
            // and the frame is discarded, so corruption is loss with its
            // own counter and its own independent draw.
            self.stats.corrupted += 1;
            return None;
        }
        let copy = self.draw(impair.dup_ppm).then(|| packet.clone());
        let started = self.admit(packet, now);
        if let Some(copy) = copy {
            self.stats.duplicated += 1;
            // The original is now in flight or queued (or tail-dropped with
            // the queue full), so the copy can never start a transmission.
            let also = self.admit(copy, now);
            debug_assert!(also.is_none(), "duplicate started a transmission");
        }
        started
    }

    /// Queue admission: the tail-drop/RED stage behind the impairments.
    fn admit(&mut self, packet: Packet, now: SimTime) -> Option<SimTime> {
        if self.in_flight.is_none() {
            self.stats.enqueued += 1;
            let done = now + self.tx_time(&packet);
            self.in_flight = Some(packet);
            return Some(done);
        }
        if self.queue.len() >= self.spec.queue_packets {
            self.stats.dropped += 1;
            return None;
        }
        if self.spec.aqm == Aqm::Red {
            let min_th = self.spec.queue_packets / 4;
            if self.queue.len() >= min_th {
                let span = (self.spec.queue_packets - min_th).max(1) as f64;
                let p = 0.15 * (self.queue.len() - min_th) as f64 / span;
                if self.aqm_rng.gen::<f64>() < p {
                    self.stats.dropped += 1;
                    return None;
                }
            }
        }
        self.stats.enqueued += 1;
        self.queue.push_back(packet);
        None
    }

    /// Completes the in-flight transmission. Returns the transmitted packet
    /// and, if another packet was waiting, the completion time of its
    /// freshly started transmission.
    ///
    /// # Panics
    ///
    /// Panics if called with no transmission in flight (a scheduling bug).
    pub(crate) fn dequeue(&mut self, now: SimTime) -> (Packet, Option<SimTime>) {
        let done = self
            .in_flight
            .take()
            .expect("dequeue with no packet in flight");
        self.stats.transmitted += 1;
        self.stats.bytes += done.wire_len() as u64;
        let next = self.queue.pop_front().map(|p| {
            let t = now + self.tx_time(&p);
            self.in_flight = Some(p);
            t
        });
        (done, next)
    }

    /// Propagation delay for a packet leaving the transmitter now: the
    /// spec's fixed delay, plus — with the configured reorder probability —
    /// an extra uniform jitter in `(0, jitter]` that lets later traffic
    /// overtake this packet.
    pub(crate) fn delivery_delay(&mut self) -> SimDuration {
        let impair = self.spec.impair;
        if self.draw(impair.reorder_ppm) {
            let jitter = impair.jitter.as_nanos();
            if jitter > 0 {
                self.stats.reordered += 1;
                let extra = self.impair_rng.gen_range(1..=jitter);
                return self.spec.delay + SimDuration::from_nanos(extra);
            }
        }
        self.spec.delay
    }

    /// Whether this channel always delivers packets in transmission order:
    /// true unless reorder jitter is configured. In-order channels are
    /// eligible for the simulator's per-channel delivery batching — their
    /// delivery times are monotone, so consecutive deliveries can drain
    /// from a FIFO without consulting the global event queue per packet.
    pub(crate) fn delivers_in_order(&self) -> bool {
        self.spec.impair.reorder_ppm == 0
    }

    /// Packets currently queued (not counting the one in flight).
    #[cfg(test)]
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn tx_time(&self, packet: &Packet) -> SimDuration {
        tx_delay(packet.wire_len(), self.spec.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, Protocol};
    use crate::sim::NodeId;

    fn pkt(bytes: u32) -> Packet {
        // wire_len = 20 overhead + bytes payload (empty header).
        Packet::new(
            Addr::new(NodeId::from_index(0), 1),
            Addr::new(NodeId::from_index(1), 1),
            Protocol::Other(0),
            Vec::new(),
            bytes,
        )
    }

    fn chan() -> Channel {
        // 8 Mbit/s => 1 byte per microsecond.
        Channel::new(
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), 2),
            7,
            0,
        )
    }

    fn red_chan(seed: u64) -> Channel {
        Channel::new(
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), 16).with_red(),
            seed,
            0,
        )
    }

    #[test]
    fn idle_channel_transmits_immediately() {
        let mut c = chan();
        let done = c.enqueue(pkt(80), SimTime::ZERO);
        // 100 wire bytes at 1 byte/µs = 100 µs.
        assert_eq!(done, Some(SimTime::from_micros(100)));
    }

    #[test]
    fn busy_channel_queues() {
        let mut c = chan();
        assert!(c.enqueue(pkt(80), SimTime::ZERO).is_some());
        assert_eq!(c.enqueue(pkt(80), SimTime::ZERO), None);
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.stats.enqueued, 2);
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut c = chan();
        c.enqueue(pkt(80), SimTime::ZERO); // in flight
        c.enqueue(pkt(80), SimTime::ZERO); // queued 1
        c.enqueue(pkt(80), SimTime::ZERO); // queued 2 (cap)
        c.enqueue(pkt(80), SimTime::ZERO); // dropped
        assert_eq!(c.stats.dropped, 1);
        assert_eq!(c.queue_len(), 2);
    }

    #[test]
    fn dequeue_starts_next_transmission() {
        let mut c = chan();
        c.enqueue(pkt(80), SimTime::ZERO);
        c.enqueue(pkt(180), SimTime::ZERO);
        let now = SimTime::from_micros(100);
        let (sent, next) = c.dequeue(now);
        assert_eq!(sent.payload_len, 80);
        // Next packet is 200 wire bytes = 200 µs, starting at 100 µs.
        assert_eq!(next, Some(SimTime::from_micros(300)));
        assert_eq!(c.stats.transmitted, 1);
        assert_eq!(c.stats.bytes, 100);
    }

    #[test]
    #[should_panic(expected = "no packet in flight")]
    fn dequeue_empty_panics() {
        let mut c = chan();
        c.dequeue(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinkSpec::new(0, SimDuration::ZERO, 1);
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        assert!(LinkSpec::try_new(0, SimDuration::ZERO, 1)
            .unwrap_err()
            .contains("bandwidth"));
        assert!(LinkSpec::try_new(1_000, SimDuration::ZERO, 0)
            .unwrap_err()
            .contains("queue"));
        let spec = LinkSpec::try_new(8_000_000, SimDuration::from_millis(1), 2).unwrap();
        assert_eq!(
            spec,
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), 2)
        );
    }

    /// Fills a RED channel to a target backlog, then counts drops across
    /// `offers` further arrivals, each made with exactly `backlog` packets
    /// queued (an accepted offer is immediately drained back down).
    fn red_drops_at_backlog(seed: u64, backlog: usize, offers: u32) -> u64 {
        let mut c = red_chan(seed);
        c.enqueue(pkt(80), SimTime::ZERO); // in flight
        while c.queue_len() < backlog {
            // Keep offering until the queue really holds `backlog` packets
            // (RED may drop some offers on the way up).
            c.enqueue(pkt(80), SimTime::ZERO);
        }
        let before = c.stats.dropped;
        for _ in 0..offers {
            c.enqueue(pkt(80), SimTime::ZERO);
            if c.queue_len() > backlog {
                // Accepted: complete the in-flight transmission, which
                // promotes one queued packet and restores the backlog.
                c.dequeue(SimTime::ZERO);
            }
        }
        c.stats.dropped - before
    }

    #[test]
    fn red_never_drops_below_min_threshold() {
        // queue_packets = 16 → min_th = 4: below 4 queued, RED is inert.
        let mut c = red_chan(11);
        c.enqueue(pkt(80), SimTime::ZERO); // in flight
        for _ in 0..3 {
            c.enqueue(pkt(80), SimTime::ZERO);
        }
        assert_eq!(c.stats.dropped, 0, "no drops below min_th");
        assert_eq!(c.queue_len(), 3);
    }

    #[test]
    fn red_drop_probability_ramps_with_backlog() {
        // At min_th the ramp starts at exactly p = 0: still no drops.
        assert_eq!(red_drops_at_backlog(11, 4, 200), 0);
        // Deep in the ramp the drop rate must be non-zero and below the
        // tail-drop regime.
        let deep = red_drops_at_backlog(11, 12, 400);
        assert!(deep > 0, "RED must drop in the upper ramp");
        assert!(deep < 400, "RED must not drop everything");
    }

    #[test]
    fn red_is_deterministic_under_a_fixed_seed() {
        assert_eq!(
            red_drops_at_backlog(42, 12, 400),
            red_drops_at_backlog(42, 12, 400)
        );
        // ... and the seed actually matters somewhere in the lane space.
        let differs = (0..16u64)
            .any(|s| red_drops_at_backlog(s, 12, 400) != red_drops_at_backlog(42, 12, 400));
        assert!(differs, "every seed giving identical drops is implausible");
    }

    fn impaired(impair: Impairment, seed: u64) -> Channel {
        Channel::new(
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), 64).with_impairment(impair),
            seed,
            0,
        )
    }

    #[test]
    fn loss_impairment_drops_roughly_at_rate() {
        let mut c = impaired(
            Impairment {
                loss_ppm: 200_000, // 20 %
                ..Impairment::NONE
            },
            9,
        );
        for _ in 0..1_000 {
            c.enqueue(pkt(80), SimTime::ZERO);
            if c.occupancy() > 0 {
                while c.dequeue(SimTime::ZERO).1.is_some() {}
            }
        }
        assert!(
            (100..300).contains(&c.stats.lost),
            "20% loss over 1000 offers ⇒ ≈200 lost, got {}",
            c.stats.lost
        );
        assert_eq!(c.stats.lost + c.stats.enqueued, 1_000);
    }

    #[test]
    fn duplication_enqueues_a_copy() {
        let mut c = impaired(
            Impairment {
                dup_ppm: PPM, // always duplicate
                ..Impairment::NONE
            },
            9,
        );
        c.enqueue(pkt(80), SimTime::ZERO);
        assert_eq!(c.stats.duplicated, 1);
        assert_eq!(c.stats.enqueued, 2, "original in flight + copy queued");
        assert_eq!(c.queue_len(), 1);
    }

    #[test]
    fn corruption_is_counted_separately_from_loss() {
        let mut c = impaired(
            Impairment {
                corrupt_ppm: PPM,
                ..Impairment::NONE
            },
            9,
        );
        for _ in 0..10 {
            c.enqueue(pkt(80), SimTime::ZERO);
        }
        assert_eq!(c.stats.corrupted, 10);
        assert_eq!(c.stats.lost, 0);
        assert_eq!(c.stats.enqueued, 0);
    }

    #[test]
    fn flap_outage_drops_without_consuming_draws() {
        let flap = FlapSpecFor::window();
        let mut a = impaired(
            Impairment {
                loss_ppm: 500_000,
                flap: Some(flap),
                ..Impairment::NONE
            },
            9,
        );
        let mut b = impaired(
            Impairment {
                loss_ppm: 500_000,
                ..Impairment::NONE
            },
            9,
        );
        // During the outage only `a` drops, and without drawing: both lanes
        // stay in lockstep, so post-outage decisions are identical.
        let down = SimTime::from_millis(1_050);
        a.enqueue(pkt(80), down);
        assert_eq!(a.stats.flap_dropped, 1);
        let up = SimTime::from_millis(3_500);
        for _ in 0..50 {
            a.enqueue(pkt(80), up);
            b.enqueue(pkt(80), up);
        }
        assert_eq!(a.stats.lost, b.stats.lost, "flap must not consume draws");
    }

    #[test]
    fn reorder_jitter_delays_some_deliveries() {
        let mut c = impaired(
            Impairment {
                reorder_ppm: 500_000, // 50 %
                jitter: SimDuration::from_millis(2),
                ..Impairment::NONE
            },
            9,
        );
        let base = c.spec.delay;
        let mut jittered = 0;
        for _ in 0..100 {
            let d = c.delivery_delay();
            assert!(d >= base);
            assert!(d <= base + SimDuration::from_millis(2));
            if d > base {
                jittered += 1;
            }
        }
        assert!(
            (20..80).contains(&jittered),
            "≈50% jittered, got {jittered}"
        );
        assert_eq!(c.stats.reordered, jittered);
    }

    #[test]
    fn unimpaired_channel_never_touches_its_impairment_lane() {
        // Two channels, same seed/index: one plain, one that becomes
        // impaired only for a later packet via spec mutation. If the plain
        // enqueues consumed impairment draws, the lanes would diverge.
        let mut plain = chan();
        let mut check = chan();
        for _ in 0..20 {
            plain.enqueue(pkt(80), SimTime::ZERO);
            check.enqueue(pkt(80), SimTime::ZERO);
        }
        plain.spec.impair.loss_ppm = 500_000;
        check.spec.impair.loss_ppm = 500_000;
        for _ in 0..20 {
            assert_eq!(
                plain.enqueue(pkt(80), SimTime::ZERO),
                check.enqueue(pkt(80), SimTime::ZERO)
            );
        }
        assert_eq!(plain.stats, check.stats);
    }

    #[test]
    fn lane_seeds_are_distinct_across_lanes_and_salts() {
        let mut seen = std::collections::BTreeSet::new();
        for lane in 0..32 {
            for salt in [LANE_AQM, LANE_IMPAIR] {
                assert!(seen.insert(lane_seed(7, lane, salt)), "lane seed collision");
            }
        }
    }

    /// Helper namespace so the flap test reads clearly.
    struct FlapSpecFor;
    impl FlapSpecFor {
        fn window() -> crate::impair::FlapSpec {
            crate::impair::FlapSpec {
                first_down: SimTime::from_secs(1),
                down_for: SimDuration::from_millis(100),
                period: SimDuration::from_secs(1),
            }
        }
    }
}
