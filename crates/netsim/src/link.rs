use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::packet::Packet;
use crate::time::{tx_delay, SimDuration, SimTime};

/// Identifier of a duplex link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Queue management discipline for a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aqm {
    /// Plain FIFO tail drop.
    DropTail,
    /// A gentle RED variant: once the queue passes a quarter of its
    /// capacity, arrivals are dropped with probability ramping linearly to
    /// 15% at full (where tail drop takes over anyway). Used on the
    /// evaluation bottleneck to desynchronise competing flows, as RED does
    /// on real routers.
    Red,
}

/// Parameters of a duplex link: bandwidth, one-way propagation delay, and
/// per-direction queue capacity in packets.
///
/// The finite queue is what turns over-subscription into loss, which is the
/// congestion signal TCP New Reno and DCCP CCID-2 respond to; without it
/// none of the congestion-control attacks would have anything to attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Link rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in packets, per direction.
    pub queue_packets: usize,
    /// Queue management discipline.
    pub aqm: Aqm,
}

impl LinkSpec {
    /// Creates a tail-drop link spec.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `queue_packets` is zero.
    pub fn new(bandwidth_bps: u64, delay: SimDuration, queue_packets: usize) -> LinkSpec {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        assert!(
            queue_packets > 0,
            "link queue must hold at least one packet"
        );
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_packets,
            aqm: Aqm::DropTail,
        }
    }

    /// Switches the spec to RED queue management.
    pub fn with_red(mut self) -> LinkSpec {
        self.aqm = Aqm::Red;
        self
    }
}

/// Counters for one direction of a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Packets accepted onto the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub dropped: u64,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Bytes fully transmitted (wire lengths).
    pub bytes: u64,
}

/// One direction of a duplex link: a FIFO tail-drop queue feeding a
/// transmitter, followed by fixed propagation delay.
#[derive(Debug, Clone)]
pub(crate) struct Channel {
    pub(crate) spec: LinkSpec,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    pub(crate) stats: ChannelStats,
}

impl Channel {
    /// Packets currently held by this channel (queued plus in flight),
    /// used to estimate how much a simulator fork copies.
    pub(crate) fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    pub(crate) fn new(spec: LinkSpec) -> Channel {
        Channel {
            spec,
            queue: VecDeque::new(),
            in_flight: None,
            stats: ChannelStats::default(),
        }
    }

    /// Offers a packet to the channel. Returns the completion time of a
    /// newly started transmission (the caller schedules the dequeue event),
    /// or `None` if the packet was queued behind an in-flight one or
    /// dropped.
    pub(crate) fn enqueue(
        &mut self,
        packet: Packet,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimTime> {
        if self.in_flight.is_none() {
            self.stats.enqueued += 1;
            let done = now + self.tx_time(&packet);
            self.in_flight = Some(packet);
            return Some(done);
        }
        if self.queue.len() >= self.spec.queue_packets {
            self.stats.dropped += 1;
            return None;
        }
        if self.spec.aqm == Aqm::Red {
            let min_th = self.spec.queue_packets / 4;
            if self.queue.len() >= min_th {
                let span = (self.spec.queue_packets - min_th).max(1) as f64;
                let p = 0.15 * (self.queue.len() - min_th) as f64 / span;
                if rng.gen::<f64>() < p {
                    self.stats.dropped += 1;
                    return None;
                }
            }
        }
        self.stats.enqueued += 1;
        self.queue.push_back(packet);
        None
    }

    /// Completes the in-flight transmission. Returns the transmitted packet
    /// and, if another packet was waiting, the completion time of its
    /// freshly started transmission.
    ///
    /// # Panics
    ///
    /// Panics if called with no transmission in flight (a scheduling bug).
    pub(crate) fn dequeue(&mut self, now: SimTime) -> (Packet, Option<SimTime>) {
        let done = self
            .in_flight
            .take()
            .expect("dequeue with no packet in flight");
        self.stats.transmitted += 1;
        self.stats.bytes += done.wire_len() as u64;
        let next = self.queue.pop_front().map(|p| {
            let t = now + self.tx_time(&p);
            self.in_flight = Some(p);
            t
        });
        (done, next)
    }

    /// Packets currently queued (not counting the one in flight).
    #[cfg(test)]
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn tx_time(&self, packet: &Packet) -> SimDuration {
        tx_delay(packet.wire_len(), self.spec.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, Protocol};
    use crate::sim::NodeId;

    fn pkt(bytes: u32) -> Packet {
        // wire_len = 20 overhead + bytes payload (empty header).
        Packet::new(
            Addr::new(NodeId::from_index(0), 1),
            Addr::new(NodeId::from_index(1), 1),
            Protocol::Other(0),
            Vec::new(),
            bytes,
        )
    }

    fn chan() -> Channel {
        // 8 Mbit/s => 1 byte per microsecond.
        Channel::new(LinkSpec::new(8_000_000, SimDuration::from_millis(1), 2))
    }

    fn rng() -> SmallRng {
        use rand::SeedableRng;
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn idle_channel_transmits_immediately() {
        let mut c = chan();
        let done = c.enqueue(pkt(80), SimTime::ZERO, &mut rng());
        // 100 wire bytes at 1 byte/µs = 100 µs.
        assert_eq!(done, Some(SimTime::from_micros(100)));
    }

    #[test]
    fn busy_channel_queues() {
        let mut c = chan();
        assert!(c.enqueue(pkt(80), SimTime::ZERO, &mut rng()).is_some());
        assert_eq!(c.enqueue(pkt(80), SimTime::ZERO, &mut rng()), None);
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.stats.enqueued, 2);
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut c = chan();
        c.enqueue(pkt(80), SimTime::ZERO, &mut rng()); // in flight
        c.enqueue(pkt(80), SimTime::ZERO, &mut rng()); // queued 1
        c.enqueue(pkt(80), SimTime::ZERO, &mut rng()); // queued 2 (cap)
        c.enqueue(pkt(80), SimTime::ZERO, &mut rng()); // dropped
        assert_eq!(c.stats.dropped, 1);
        assert_eq!(c.queue_len(), 2);
    }

    #[test]
    fn dequeue_starts_next_transmission() {
        let mut c = chan();
        c.enqueue(pkt(80), SimTime::ZERO, &mut rng());
        c.enqueue(pkt(180), SimTime::ZERO, &mut rng());
        let now = SimTime::from_micros(100);
        let (sent, next) = c.dequeue(now);
        assert_eq!(sent.payload_len, 80);
        // Next packet is 200 wire bytes = 200 µs, starting at 100 µs.
        assert_eq!(next, Some(SimTime::from_micros(300)));
        assert_eq!(c.stats.transmitted, 1);
        assert_eq!(c.stats.bytes, 100);
    }

    #[test]
    #[should_panic(expected = "no packet in flight")]
    fn dequeue_empty_panics() {
        let mut c = chan();
        c.dequeue(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinkSpec::new(0, SimDuration::ZERO, 1);
    }
}
