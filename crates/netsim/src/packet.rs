use std::fmt;

use crate::sim::NodeId;
use crate::smallbuf::HeaderBuf;

/// Simulated network-layer overhead added to every packet's wire length
/// (an IPv4 header without options).
pub const NETWORK_OVERHEAD_BYTES: u32 = 20;

/// The transport protocol a packet carries, used by the attack proxy to
/// decide whether a packet is "of interest" (paper §V-B: "Protocols not of
/// interest are returned to the tap-bridge for normal processing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// Datagram Congestion Control Protocol.
    Dccp,
    /// Any other protocol, by IANA-style number.
    Other(u16),
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => f.write_str("tcp"),
            Protocol::Dccp => f.write_str("dccp"),
            Protocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// A transport address: a node plus a 16-bit port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// The host.
    pub node: NodeId,
    /// The port on that host.
    pub port: u16,
}

impl Addr {
    /// Convenience constructor.
    pub fn new(node: NodeId, port: u16) -> Addr {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node.index(), self.port)
    }
}

/// A packet in flight in the emulated network.
///
/// The transport header travels as raw bytes laid out by a
/// `snake-packet` format spec, so the attack proxy can parse and rewrite it
/// generically, and the endpoint engines re-parse whatever arrives — a
/// proxy mutation is really observed by the implementation under test.
/// Application payload is carried as a length only; SNAKE's attacks and
/// detection never look at payload content, and skipping the bytes keeps
/// simulation memory flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source transport address.
    pub src: Addr,
    /// Destination transport address.
    pub dst: Addr,
    /// Transport protocol of the header bytes.
    pub protocol: Protocol,
    /// Raw transport header bytes, stored inline when short (see
    /// [`HeaderBuf`]) so per-hop packet clones stay allocation-free.
    pub header: HeaderBuf,
    /// Simulated application payload length in bytes.
    pub payload_len: u32,
    /// Unique id assigned at first send, for tracing.
    pub id: u64,
}

impl Packet {
    /// Creates a packet; the id is assigned by the simulator on first send.
    pub fn new(
        src: Addr,
        dst: Addr,
        protocol: Protocol,
        header: impl Into<HeaderBuf>,
        payload_len: u32,
    ) -> Packet {
        Packet {
            src,
            dst,
            protocol,
            header: header.into(),
            payload_len,
            id: 0,
        }
    }

    /// The inert placeholder left behind in a recycled arena slot (see
    /// `PacketArena::take`): a zero-length packet from node 0 to node 0
    /// that nothing ever routes or delivers.
    pub(crate) fn tombstone() -> Packet {
        Packet {
            src: Addr::new(NodeId::from_index(0), 0),
            dst: Addr::new(NodeId::from_index(0), 0),
            protocol: Protocol::Other(0),
            header: HeaderBuf::EMPTY,
            payload_len: 0,
            id: 0,
        }
    }

    /// Bytes this packet occupies on the wire, including simulated
    /// network-layer overhead.
    pub fn wire_len(&self) -> u32 {
        NETWORK_OVERHEAD_BYTES + self.header.len() as u32 + self.payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_overhead() {
        let p = Packet::new(
            Addr::new(NodeId::from_index(0), 1),
            Addr::new(NodeId::from_index(1), 2),
            Protocol::Tcp,
            vec![0u8; 20],
            1460,
        );
        assert_eq!(p.wire_len(), 20 + 20 + 1460);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Protocol::Tcp.to_string(), "tcp");
        assert_eq!(Protocol::Other(132).to_string(), "proto-132");
        assert_eq!(Addr::new(NodeId::from_index(3), 80).to_string(), "3:80");
    }
}
