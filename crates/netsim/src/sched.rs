//! Event schedulers for the simulator's run loop.
//!
//! The production scheduler is a **two-tier hierarchical timer wheel**
//! ([`Wheel`]): a near-horizon binary heap of imminent events fed by eight
//! levels of 64 coarse far-horizon slots. Far events cost O(1) to insert
//! and cancel; they cascade toward the near lane as simulated time reaches
//! them, each event moving at most `LEVELS - 1` times over its lifetime.
//! Dispatch order is total on `(at, seq)` — exactly the order the legacy
//! binary-heap scheduler ([`HeapSched`], kept behind
//! `#[cfg(any(test, feature = "heap-sched"))]` as the differential-test
//! reference) produces, which the randomized oracle in this module and the
//! whole-simulator differential tests in `sim.rs` assert.
//!
//! ## Why dispatch order is preserved
//!
//! The wheel partitions pending events by *tick* (`at >> TICK_SHIFT`):
//! everything at a tick `<= elapsed_tick` lives in the near heap, ordered
//! by `(at, seq)`; everything later lives in a wheel slot. Advancing the
//! wheel always drains the earliest occupied slot of the lowest occupied
//! level, and every event in level `l` is strictly later than every event
//! in level `l-1` (they differ from `elapsed_tick` in a higher 6-bit tick
//! group), so the near heap's minimum is always the global minimum.
//! Cancelled timers leave a [`Ghost`](Popped::Ghost) key behind so the run
//! loop observes the same pending-event horizon (deadline and event-budget
//! checks) as the reference heap, which keeps truncation flags and clock
//! advancement byte-identical.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::fxhash::FxHashMap;
use crate::sim::NodeId;
use crate::time::SimTime;

/// Index of a packet parked in the simulator's
/// [`PacketArena`](crate::arena::PacketArena). Events carry this 4-byte
/// ref instead of a ~80-byte `Packet` so heap sifts and wheel cascades
/// move small, `Copy` entries.
pub(crate) type PacketRef = u32;

/// What happens when a scheduled event's time arrives.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Hand a packet to the agent on `node` (or forward it on).
    Deliver { node: NodeId, packet: PacketRef },
    /// Fire an agent timer.
    TimerFire { node: NodeId, handle: u64, tag: u64 },
    /// A channel's in-flight transmission completes.
    ChanDequeue { chan: usize },
    /// A delayed tap emission reaches its channel.
    ChanEnqueue { chan: usize, packet: PacketRef },
    /// Wheel-mode delivery marker: dispatch the head of channel `chan`'s
    /// in-order delivery FIFO, then drain consecutive entries inline while
    /// they remain globally next (see `Simulator::dispatch`).
    ChanDeliver { chan: usize },
    /// Fire a tap timer.
    TapTimerFire { link: usize, tag: u64 },
    /// Run a scheduled control action.
    Control { key: u64 },
}

/// One pending event. Total order on `(at, seq)`; `seq` is the global
/// push counter, so simultaneous events dispatch in push order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Scheduled {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq) pops
        // first, giving deterministic FIFO ordering of simultaneous events.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Result of popping the scheduler.
pub(crate) enum Popped {
    /// The key of a cancelled timer: advances the clock, dispatches
    /// nothing, and is not counted against the event budget — identical to
    /// the reference heap popping a tombstoned `TimerFire`.
    Ghost(SimTime),
    /// A live event to dispatch.
    Event(Scheduled),
}

/// Level-0 tick width: 2^16 ns ≈ 65.5 µs. Eight levels of 64 slots cover
/// `64^8 = 2^48` ticks — the entire `u64` nanosecond range, so
/// [`SimTime::MAX`] ("never") parks in level 7 without special cases.
const TICK_SHIFT: u32 = 16;
/// Number of wheel levels.
const LEVELS: usize = 8;
/// Slots per level (6 bits of tick per level).
const SLOTS: usize = 64;

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.tick(TICK_SHIFT)
}

/// Where a pending `TimerFire` currently lives, for O(1) cancellation.
#[derive(Debug, Clone, Copy)]
enum TimerLoc {
    /// In the near heap (removal from a binary heap is not O(1); the entry
    /// is tombstoned in `dead_near` and consumed when it pops).
    Near,
    /// In wheel slot `idx` (`level * SLOTS + slot`) at position `pos` of
    /// the slot's vector — `swap_remove`-able in O(1).
    Slot { idx: u16, pos: u32 },
}

/// The two-tier hierarchical timer wheel (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct Wheel {
    /// Imminent events (tick `<= elapsed_tick`), ordered by `(at, seq)`.
    near: BinaryHeap<Scheduled>,
    /// Far events, bucketed by tick: `slots[level * SLOTS + slot]`.
    slots: Vec<Vec<Scheduled>>,
    /// Per-level bitmap of non-empty slots (bit `s` = slot `s` occupied).
    occupancy: [u64; LEVELS],
    /// The wheel's current tick position. Everything in the wheel is at a
    /// strictly later tick; the near heap holds the rest.
    elapsed_tick: u64,
    /// Total events resident in wheel slots.
    far_len: usize,
    /// `(at, seq)` keys of wheel-cancelled timers, min-first. They keep
    /// the pending-event horizon identical to the reference heap's
    /// tombstoned entries and self-purge as the clock passes them.
    ghosts: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Pending-timer locations by handle, for O(1) cancellation.
    timer_locs: FxHashMap<u64, TimerLoc>,
    /// Handles cancelled while near-resident; consumed when the entry pops.
    dead_near: FxHashMap<u64, ()>,
    /// Timer entries physically removed from wheel slots at cancel time.
    timers_removed: u64,
}

impl Wheel {
    fn new() -> Wheel {
        Wheel {
            near: BinaryHeap::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            elapsed_tick: 0,
            far_len: 0,
            ghosts: BinaryHeap::new(),
            timer_locs: FxHashMap::default(),
            dead_near: FxHashMap::default(),
            timers_removed: 0,
        }
    }

    fn len(&self) -> usize {
        self.near.len() + self.far_len + self.ghosts.len()
    }

    /// The wheel level and slot for a future tick, relative to
    /// `elapsed_tick`: the level of the highest differing 6-bit tick
    /// group, the slot that group's value.
    #[inline]
    fn bucket(&self, tick: u64) -> (usize, usize) {
        let xor = tick ^ self.elapsed_tick;
        debug_assert!(xor != 0, "bucket() called for the current tick");
        let level = ((63 - xor.leading_zeros()) / 6) as usize;
        debug_assert!(level < LEVELS, "tick beyond the wheel span");
        let slot = ((tick >> (6 * level as u32)) & 63) as usize;
        (level, slot)
    }

    fn push(&mut self, ev: Scheduled) {
        let tick = tick_of(ev.at);
        if tick <= self.elapsed_tick {
            if let EventKind::TimerFire { handle, .. } = ev.kind {
                self.timer_locs.insert(handle, TimerLoc::Near);
            }
            self.near.push(ev);
        } else {
            let (level, slot) = self.bucket(tick);
            let idx = level * SLOTS + slot;
            if let EventKind::TimerFire { handle, .. } = ev.kind {
                self.timer_locs.insert(
                    handle,
                    TimerLoc::Slot {
                        idx: idx as u16,
                        pos: self.slots[idx].len() as u32,
                    },
                );
            }
            self.slots[idx].push(ev);
            self.occupancy[level] |= 1u64 << slot;
            self.far_len += 1;
        }
    }

    /// Advances the wheel to the earliest occupied slot, cascading its
    /// contents until the near heap is non-empty. Caller guarantees the
    /// near heap is empty and the wheel is not.
    fn advance(&mut self) {
        debug_assert!(self.near.is_empty() && self.far_len > 0);
        loop {
            let level = (0..LEVELS)
                .find(|&l| self.occupancy[l] != 0)
                .expect("far_len > 0 but every level empty");
            let slot = self.occupancy[level].trailing_zeros() as usize;
            let idx = level * SLOTS + slot;
            let entries = std::mem::take(&mut self.slots[idx]);
            self.occupancy[level] &= !(1u64 << slot);
            self.far_len -= entries.len();
            if level == 0 {
                // A level-0 slot holds exactly one tick; jump to it and
                // promote everything into the near lane.
                self.elapsed_tick = (self.elapsed_tick & !63) | slot as u64;
                for ev in entries {
                    if let EventKind::TimerFire { handle, .. } = ev.kind {
                        self.timer_locs.insert(handle, TimerLoc::Near);
                    }
                    self.near.push(ev);
                }
                return;
            }
            // Jump to the start of the slot's tick range (everything
            // between was unoccupied) and re-bucket its contents: each
            // entry now lands at a strictly lower level, or in the near
            // heap if it sits exactly on the new elapsed tick.
            let width = 6 * level as u32;
            let high = !0u64 << (width + 6);
            self.elapsed_tick = (self.elapsed_tick & high) | ((slot as u64) << width);
            for ev in entries {
                self.push(ev);
            }
            // Entries landing exactly on the new elapsed tick went to the
            // near lane; the rest cascaded to lower levels — keep going
            // until the near lane has the next event.
            if !self.near.is_empty() {
                return;
            }
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.near.is_empty() && self.far_len > 0 {
            self.advance();
        }
        let near = self.near.peek().map(|ev| (ev.at, ev.seq));
        let ghost = self.ghosts.peek().map(|Reverse(key)| *key);
        match (near, ghost) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (near, ghost) => near.or(ghost),
        }
    }

    fn pop(&mut self) -> Option<Popped> {
        if self.near.is_empty() && self.far_len > 0 {
            self.advance();
        }
        let ghost_first = match (self.ghosts.peek(), self.near.peek()) {
            (Some(Reverse(g)), Some(n)) => *g < (n.at, n.seq),
            (Some(_), None) => true,
            _ => false,
        };
        if ghost_first {
            let Reverse((at, _)) = self.ghosts.pop().expect("peeked");
            return Some(Popped::Ghost(at));
        }
        let ev = self.near.pop()?;
        if let EventKind::TimerFire { handle, .. } = ev.kind {
            self.timer_locs.remove(&handle);
            if self.dead_near.remove(&handle).is_some() {
                return Some(Popped::Ghost(ev.at));
            }
        }
        Some(Popped::Event(ev))
    }

    fn cancel_timer(&mut self, handle: u64) {
        match self.timer_locs.remove(&handle) {
            // Already fired (or never armed): nothing is pending, so —
            // unlike the reference heap's tombstone map — no record
            // lingers and nothing needs purging later.
            None => {}
            Some(TimerLoc::Near) => {
                self.dead_near.insert(handle, ());
            }
            Some(TimerLoc::Slot { idx, pos }) => {
                let vec = &mut self.slots[idx as usize];
                let ev = vec.swap_remove(pos as usize);
                debug_assert!(matches!(ev.kind, EventKind::TimerFire { .. }));
                self.ghosts.push(Reverse((ev.at, ev.seq)));
                if let Some(moved) = vec.get(pos as usize) {
                    if let EventKind::TimerFire {
                        handle: moved_h, ..
                    } = moved.kind
                    {
                        self.timer_locs.insert(moved_h, TimerLoc::Slot { idx, pos });
                    }
                }
                if vec.is_empty() {
                    let level = idx as usize / SLOTS;
                    let slot = idx as usize % SLOTS;
                    self.occupancy[level] &= !(1u64 << slot);
                }
                self.far_len -= 1;
                self.timers_removed += 1;
            }
        }
    }
}

/// How many cancelled-timer records may accumulate before the reference
/// heap compacts its event queue.
#[cfg(any(test, feature = "heap-sched"))]
const CANCELLED_COMPACT_THRESHOLD: usize = 256;

/// The legacy scheduler: one binary heap over every pending event, with a
/// cancelled-timer tombstone map consumed at pop time, compacted under
/// pressure and purged once fire times pass. Kept verbatim as the
/// dispatch-order reference for the differential oracle.
#[cfg(any(test, feature = "heap-sched"))]
#[derive(Debug, Clone)]
pub(crate) struct HeapSched {
    heap: BinaryHeap<Scheduled>,
    /// Cancelled-but-not-yet-fired timers, by handle id, with the time the
    /// timer would have fired.
    cancelled: FxHashMap<u64, SimTime>,
    timers_purged: u64,
    compactions: u64,
}

#[cfg(any(test, feature = "heap-sched"))]
impl HeapSched {
    fn new() -> HeapSched {
        HeapSched {
            heap: BinaryHeap::new(),
            cancelled: FxHashMap::default(),
            timers_purged: 0,
            compactions: 0,
        }
    }

    /// Rebuilds the event queue without the `TimerFire` events of cancelled
    /// timers, consuming their cancellation records. Event order is
    /// unaffected: ordering is total on `(at, seq)`.
    fn compact(&mut self) {
        let mut events = std::mem::take(&mut self.heap).into_vec();
        let before = events.len();
        let cancelled = &mut self.cancelled;
        events.retain(|ev| match ev.kind {
            EventKind::TimerFire { handle, .. } => cancelled.remove(&handle).is_none(),
            _ => true,
        });
        self.timers_purged += (before - events.len()) as u64;
        self.compactions += 1;
        self.heap = BinaryHeap::from(events);
    }
}

/// The scheduler behind the simulator's event queue. Release builds carry
/// only the wheel; test and `heap-sched` builds can select the reference
/// heap per simulator (`SNAKE_NETSIM_SCHED=heap`).
#[derive(Debug, Clone)]
pub(crate) enum Queue {
    Wheel(Wheel),
    #[cfg(any(test, feature = "heap-sched"))]
    Heap(HeapSched),
}

impl Queue {
    pub(crate) fn new_wheel() -> Queue {
        Queue::Wheel(Wheel::new())
    }

    #[cfg(any(test, feature = "heap-sched"))]
    pub(crate) fn new_heap() -> Queue {
        Queue::Heap(HeapSched::new())
    }

    /// Human name, for bench/manifest labelling and the differential CI
    /// check.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Queue::Wheel(_) => "wheel",
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(_) => "heap",
        }
    }

    /// Whether per-channel delivery batching applies (wheel only; the
    /// reference heap must reproduce the legacy per-packet event stream).
    pub(crate) fn batches_deliveries(&self) -> bool {
        match self {
            Queue::Wheel(_) => true,
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(_) => false,
        }
    }

    /// Pending entries (live events plus cancelled-timer ghosts).
    pub(crate) fn len(&self) -> usize {
        match self {
            Queue::Wheel(w) => w.len(),
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => h.heap.len(),
        }
    }

    /// Tracked bookkeeping entries (timer locations / tombstones), for the
    /// deterministic fork-cost estimate.
    pub(crate) fn map_len(&self) -> usize {
        match self {
            Queue::Wheel(w) => w.timer_locs.len() + w.dead_near.len(),
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => h.cancelled.len(),
        }
    }

    pub(crate) fn push(&mut self, ev: Scheduled) {
        match self {
            Queue::Wheel(w) => w.push(ev),
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => h.heap.push(ev),
        }
    }

    /// The `(at, seq)` key the next pop will observe, advancing the wheel
    /// if its near lane ran dry.
    pub(crate) fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Queue::Wheel(w) => w.peek_key(),
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => h.heap.peek().map(|ev| (ev.at, ev.seq)),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Popped> {
        match self {
            Queue::Wheel(w) => w.pop(),
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => {
                let ev = h.heap.pop()?;
                if let EventKind::TimerFire { handle, .. } = ev.kind {
                    // A cancelled timer's event is dead: consume the
                    // cancellation record and report a ghost.
                    if h.cancelled.remove(&handle).is_some() {
                        return Some(Popped::Ghost(ev.at));
                    }
                }
                Some(Popped::Event(ev))
            }
        }
    }

    /// Cancels a pending timer. The wheel removes the entry natively (or
    /// tombstones a near-resident one); the reference heap records the
    /// handle and fire time for pop-time/purge-time consumption.
    pub(crate) fn cancel_timer(&mut self, handle: u64, at: SimTime) {
        match self {
            Queue::Wheel(w) => w.cancel_timer(handle),
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => {
                let _ = at;
                h.cancelled.insert(handle, at);
            }
        }
        #[cfg(not(any(test, feature = "heap-sched")))]
        let _ = at;
    }

    /// Pre-run maintenance: the reference heap compacts dead timer events
    /// out of the queue once enough cancellation records accumulate. The
    /// wheel removed them at cancel time, so this is a no-op.
    pub(crate) fn pre_run_maintenance(&mut self) {
        match self {
            Queue::Wheel(_) => {}
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => {
                if h.cancelled.len() >= CANCELLED_COMPACT_THRESHOLD {
                    h.compact();
                }
            }
        }
    }

    /// Post-run maintenance: the reference heap purges cancellation
    /// records whose fire time has passed. Wheel ghosts self-purge by
    /// popping, so only stale ghosts beyond the deadline remain — and
    /// those still represent genuinely pending (dead) keys, exactly like
    /// the heap's un-popped tombstoned events.
    pub(crate) fn post_run_purge(&mut self, now: SimTime) {
        match self {
            Queue::Wheel(_) => {}
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => {
                let before = h.cancelled.len();
                h.cancelled.retain(|_, at| *at > now);
                h.timers_purged += (before - h.cancelled.len()) as u64;
            }
        }
        #[cfg(not(any(test, feature = "heap-sched")))]
        let _ = now;
    }

    /// Timer records discarded without their event dispatching: the
    /// wheel's native slot removals, or the heap's purge/compaction drops.
    pub(crate) fn timers_purged(&self) -> u64 {
        match self {
            Queue::Wheel(w) => w.timers_removed,
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => h.timers_purged,
        }
    }

    /// Times the queue was compacted (always zero for the wheel).
    pub(crate) fn queue_compactions(&self) -> u64 {
        match self {
            Queue::Wheel(_) => 0,
            #[cfg(any(test, feature = "heap-sched"))]
            Queue::Heap(h) => h.compactions,
        }
    }

    /// The reference heap's live cancellation records (tests only).
    #[cfg(test)]
    pub(crate) fn heap_cancelled_len(&self) -> Option<usize> {
        match self {
            Queue::Wheel(_) => None,
            Queue::Heap(h) => Some(h.cancelled.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn timer(at: u64, seq: u64, handle: u64) -> Scheduled {
        Scheduled {
            at: SimTime::from_nanos(at),
            seq,
            kind: EventKind::TimerFire {
                node: NodeId::from_index(0),
                handle,
                tag: handle,
            },
        }
    }

    fn control(at: u64, seq: u64) -> Scheduled {
        Scheduled {
            at: SimTime::from_nanos(at),
            seq,
            kind: EventKind::Control { key: seq },
        }
    }

    /// Drains a queue, recording `(at, seq, is_ghost)` per pop.
    fn drain(queue: &mut Queue) -> Vec<(u64, u64, bool)> {
        let mut log = Vec::new();
        while let Some(key) = queue.peek_key() {
            match queue.pop().expect("peeked") {
                Popped::Ghost(at) => {
                    assert_eq!(at, key.0, "ghost must pop at its peeked key");
                    log.push((at.as_nanos(), key.1, true));
                }
                Popped::Event(ev) => {
                    assert_eq!((ev.at, ev.seq), key, "pop must match peek");
                    log.push((ev.at.as_nanos(), ev.seq, false));
                }
            }
        }
        log
    }

    #[test]
    fn wheel_pops_in_total_order() {
        let mut q = Queue::new_wheel();
        // Same tick, far ticks, boundary ticks, MAX — pushed out of order.
        let times = [
            u64::MAX,
            0,
            1,
            (1 << TICK_SHIFT) - 1,
            1 << TICK_SHIFT,
            (64 << TICK_SHIFT) + 3,
            (64 * 64) << TICK_SHIFT,
            u64::MAX - 1,
            5,
            (63 << TICK_SHIFT) + 7,
        ];
        for (seq, &at) in times.iter().enumerate() {
            q.push(control(at, seq as u64));
        }
        let log = drain(&mut q);
        let mut sorted = log.clone();
        sorted.sort();
        assert_eq!(log, sorted, "pops must follow (at, seq) order");
        assert_eq!(log.len(), times.len());
    }

    #[test]
    fn wheel_cancel_is_native_and_ghosts_preserve_keys() {
        let mut q = Queue::new_wheel();
        // Far-resident timer: physically removed, ghost key remains.
        q.push(timer(5 << TICK_SHIFT, 0, 100));
        q.push(control(6 << TICK_SHIFT, 1));
        q.cancel_timer(100, SimTime::from_nanos(5 << TICK_SHIFT));
        assert_eq!(q.timers_purged(), 1, "wheel removal counted");
        let log = drain(&mut q);
        assert_eq!(
            log,
            vec![(5 << TICK_SHIFT, 0, true), (6 << TICK_SHIFT, 1, false)],
            "ghost pops at the cancelled timer's key, then the live event"
        );
    }

    #[test]
    fn wheel_cancel_of_near_resident_timer_tombstones() {
        let mut q = Queue::new_wheel();
        q.push(timer(10, 0, 7)); // tick 0 == elapsed → near lane
        q.cancel_timer(7, SimTime::from_nanos(10));
        assert_eq!(q.timers_purged(), 0, "near cancels are tombstoned");
        let log = drain(&mut q);
        assert_eq!(log, vec![(10, 0, true)]);
    }

    #[test]
    fn wheel_cancel_after_fire_is_a_noop() {
        let mut q = Queue::new_wheel();
        q.push(timer(10, 0, 7));
        let _ = drain(&mut q);
        q.cancel_timer(7, SimTime::from_nanos(10));
        assert_eq!(q.len(), 0, "no lingering record for a fired timer");
        assert_eq!(q.map_len(), 0);
    }

    #[test]
    fn wheel_swap_remove_fixes_displaced_timer_location() {
        let mut q = Queue::new_wheel();
        // Three timers in the same far slot; cancelling the first
        // swap-moves the last into its position.
        let at = 40 << TICK_SHIFT;
        q.push(timer(at, 0, 1));
        q.push(timer(at + 1, 1, 2));
        q.push(timer(at + 2, 2, 3));
        q.cancel_timer(1, SimTime::from_nanos(at));
        // Cancelling the displaced timer must find its fixed-up location.
        q.cancel_timer(3, SimTime::from_nanos(at + 2));
        let log = drain(&mut q);
        assert_eq!(
            log,
            vec![(at, 0, true), (at + 1, 1, false), (at + 2, 2, true)]
        );
    }

    /// The randomized differential oracle: the wheel must reproduce the
    /// reference heap's pop stream — keys, ghosts, everything — under
    /// schedules mixing same-tick bursts, far-future pushes, cancellations
    /// and interleaved pops.
    #[test]
    fn differential_heap_vs_wheel_random_schedules() {
        for seed in 0..60u64 {
            let mut rng = SmallRng::seed_from_u64(seed * 7919 + 1);
            let mut wheel = Queue::new_wheel();
            let mut heap = Queue::new_heap();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut handle = 0u64;
            let mut pending: Vec<(u64, SimTime)> = Vec::new();
            let mut wheel_log = Vec::new();
            let mut heap_log = Vec::new();
            for _ in 0..400 {
                match rng.gen_range(0..10) {
                    // Push a burst of events at assorted horizons.
                    0..=4 => {
                        for _ in 0..rng.gen_range(1..4) {
                            let offset = match rng.gen_range(0..6) {
                                0 => 0,
                                1 => rng.gen_range(0..1 << TICK_SHIFT), // same tick-ish
                                2 => rng.gen_range(0..1 << 22),         // near levels
                                3 => rng.gen_range(0..1 << 34),         // mid levels
                                4 => rng.gen_range(0..1 << 50),         // far levels
                                // MAX-adjacent (offset is added to `now`)
                                _ => (u64::MAX - now).saturating_sub(rng.gen_range(0..4u64)),
                            };
                            let at = SimTime::from_nanos(now.saturating_add(offset));
                            let ev = if rng.gen_bool(0.5) {
                                handle += 1;
                                pending.push((handle, at));
                                timer(at.as_nanos(), seq, handle)
                            } else {
                                control(at.as_nanos(), seq)
                            };
                            seq += 1;
                            wheel.push(ev);
                            heap.push(ev);
                        }
                    }
                    // Cancel a random still-known timer (possibly fired).
                    5..=6 => {
                        if !pending.is_empty() {
                            let i = rng.gen_range(0..pending.len());
                            let (h, at) = pending.swap_remove(i);
                            wheel.cancel_timer(h, at);
                            heap.cancel_timer(h, at);
                        }
                    }
                    // Pop a few events, advancing the clock.
                    _ => {
                        for _ in 0..rng.gen_range(1..6) {
                            let wk = wheel.peek_key();
                            let hk = heap.peek_key();
                            assert_eq!(wk, hk, "seed {seed}: peek keys diverged");
                            let (Some(_), Some(_)) = (wk, hk) else { break };
                            match wheel.pop().expect("peeked") {
                                Popped::Ghost(at) => {
                                    now = now.max(at.as_nanos());
                                    wheel_log.push((at.as_nanos(), u64::MAX, true));
                                }
                                Popped::Event(ev) => {
                                    now = now.max(ev.at.as_nanos());
                                    wheel_log.push((ev.at.as_nanos(), ev.seq, false));
                                }
                            }
                            match heap.pop().expect("peeked") {
                                Popped::Ghost(at) => heap_log.push((at.as_nanos(), u64::MAX, true)),
                                Popped::Event(ev) => {
                                    heap_log.push((ev.at.as_nanos(), ev.seq, false))
                                }
                            }
                        }
                    }
                }
                assert_eq!(wheel.len(), heap.len(), "seed {seed}: queue lengths");
            }
            // Drain the remainder in lockstep.
            loop {
                assert_eq!(wheel.peek_key(), heap.peek_key(), "seed {seed}: tail peek");
                let (w, h) = (wheel.pop(), heap.pop());
                match (w, h) {
                    (None, None) => break,
                    (Some(Popped::Ghost(a)), Some(Popped::Ghost(b))) => {
                        assert_eq!(a, b, "seed {seed}: ghost keys")
                    }
                    (Some(Popped::Event(a)), Some(Popped::Event(b))) => {
                        assert_eq!((a.at, a.seq), (b.at, b.seq), "seed {seed}: event keys")
                    }
                    _ => panic!("seed {seed}: ghost/event divergence"),
                }
            }
            assert_eq!(wheel_log, heap_log, "seed {seed}: pop streams diverged");
        }
    }

    #[test]
    fn cascade_boundaries_preserve_order() {
        // Events straddling every level boundary, popped after partial
        // drains so cascades interleave with fresh same-tick pushes.
        let mut q = Queue::new_wheel();
        let mut expect = Vec::new();
        let mut seq = 0;
        for level in 0..LEVELS as u32 {
            let span = 1u64 << (TICK_SHIFT + 6 * level);
            for delta in [span.saturating_sub(1), span, span + 1] {
                q.push(control(delta, seq));
                expect.push((delta, seq, false));
                seq += 1;
            }
        }
        expect.sort();
        assert_eq!(drain(&mut q), expect);
    }
}
