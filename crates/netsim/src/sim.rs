use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::agent::{Agent, Ctx, TimerHandle};
use crate::arena::PacketArena;
use crate::fxhash::FxHashMap;
use crate::link::{Channel, ChannelStats, LinkId, LinkSpec};
use crate::packet::Packet;
use crate::sched::{EventKind, Popped, Queue, Scheduled};
use crate::tap::{Tap, TapCtx};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds a `NodeId` from a raw index (for tests and serialization).
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

/// Buffered side effects produced by agent and tap callbacks.
#[derive(Debug, Clone)]
pub(crate) enum Command {
    Send {
        from: NodeId,
        packet: Packet,
    },
    SetTimer {
        node: NodeId,
        handle: TimerHandle,
        tag: u64,
    },
    CancelTimer {
        handle: TimerHandle,
    },
    TapEmit {
        packet: Packet,
        toward_b: bool,
        delay: SimDuration,
    },
    TapTimer {
        at: SimTime,
        tag: u64,
    },
    /// Stop dispatching events: the requester (a tap) has determined the
    /// rest of the run is already known (see `Simulator::halted`).
    Halt,
}

struct NodeSlot {
    name: String,
    agent: Option<Box<dyn Agent>>,
}

/// One pending delivery parked in a channel's in-order FIFO instead of the
/// global event queue (see [`Simulator::push_delivery`]). `seq` is a real
/// global sequence number — the entry consumed it at push time, exactly as
/// a per-packet `Deliver` event would have, so the batched and reference
/// schedulers allocate identical sequence streams.
#[derive(Debug, Clone, Copy)]
struct FifoEntry {
    at: SimTime,
    seq: u64,
    packet: u32,
}

#[derive(Debug, Clone)]
struct ChanSlot {
    chan: Channel,
    from: NodeId,
    to: NodeId,
    link: usize,
    /// Wheel-mode delivery FIFO: consecutive deliveries of an in-order
    /// channel drain inline from here without a global-queue round trip
    /// per packet. Always key-sorted: entries are appended in
    /// nondecreasing `(at, seq)` order because an in-order channel's
    /// transmissions complete in time order and its delivery delay is
    /// constant.
    fifo: VecDeque<FifoEntry>,
}

struct LinkSlot {
    a: NodeId,
    b: NodeId,
    /// Channel indices: `[a->b, b->a]`.
    chans: [usize; 2],
    tap: Option<Box<dyn Tap>>,
}

/// Scheduled control actions are `Arc<dyn Fn>` (not `Box<dyn FnOnce>`) so a
/// forked simulator shares the still-pending controls of its parent: each
/// run invokes its own clone of the closure exactly once.
type ControlFn = Arc<dyn Fn(&mut dyn Agent, &mut Ctx<'_>) + Send + Sync>;

/// Event-loop counters exported by [`Simulator::stats`].
///
/// These are plain totals kept on the simulator itself (not routed
/// through an observer) so the hot loop stays free of virtual calls;
/// callers that care read them once after a run. They are deliberately
/// *not* part of any run-equality comparison: `timers_purged`,
/// `queue_compactions` and `queue_depth_hwm` depend on which scheduler
/// backend is driving the queue (the wheel removes cancelled timers
/// natively and never compacts; the reference heap tombstones and purges),
/// and the purge/compaction split additionally depends on how often
/// `run_until` is re-entered. `events_processed`, `timers_cancelled` and
/// the arena counters *are* identical across backends — that is what the
/// differential tests prove — but equality comparisons should still go
/// through run outcomes, not these internals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched (dead timer fires excluded).
    pub events_processed: u64,
    /// `CancelTimer` commands issued.
    pub timers_cancelled: u64,
    /// Timer records discarded without their event dispatching: wheel-native
    /// slot removals, or the reference heap's stale-purge and compaction
    /// drops.
    pub timers_purged: u64,
    /// Times the event queue was compacted (always zero under the wheel).
    pub queue_compactions: u64,
    /// High-water mark of pending entries (global queue plus per-channel
    /// delivery FIFOs) over the simulator's lifetime.
    pub queue_depth_hwm: u64,
    /// Packet-arena slots created because the free list was empty.
    pub arena_alloc: u64,
    /// Packet-arena slots recycled from the free list.
    pub arena_reuse: u64,
}

/// The discrete-event network simulator.
///
/// Build a topology with [`add_node`](Simulator::add_node) /
/// [`add_link`](Simulator::add_link), install protocol agents with
/// [`set_agent`](Simulator::set_agent), optionally attach an attack-proxy
/// [`Tap`] to a link, then [`run_until`](Simulator::run_until) a deadline.
/// Identical inputs and seed produce identical runs.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    /// The root seed every RNG lane is derived from: the agents' lane
    /// seeds directly from it, and each channel derives private AQM and
    /// impairment lanes from `(seed, channel index, lane salt)` — so
    /// adding draws in one subsystem never reshuffles another's sequence.
    seed: u64,
    queue: Queue,
    /// Recycling store for every packet parked in a scheduled event or a
    /// delivery FIFO; events carry 4-byte arena indices instead of inline
    /// packets. Used identically by both scheduler backends, so the
    /// allocation stream never depends on the backend.
    arena: PacketArena,
    nodes: Vec<NodeSlot>,
    chans: Vec<ChanSlot>,
    links: Vec<LinkSlot>,
    next_hop: Vec<Vec<Option<usize>>>,
    routes_dirty: bool,
    next_timer: u64,
    next_packet_id: u64,
    controls: FxHashMap<u64, (NodeId, ControlFn)>,
    next_control: u64,
    /// The agents' RNG lane (exposed to agent callbacks through [`Ctx`]).
    /// Channels own their AQM/impairment lanes; nothing else draws here.
    agent_rng: SmallRng,
    started: bool,
    events_processed: u64,
    /// Total `CancelTimer` commands ever issued (see [`SimStats`]).
    timers_cancelled: u64,
    /// Total entries across every channel's delivery FIFO.
    fifo_len: usize,
    /// High-water mark of `queue.len() + fifo_len`, for observability.
    queue_depth_hwm: u64,
    /// The deadline of the `run_until` call in progress, consulted by the
    /// inline FIFO drain so batched deliveries stop exactly where the run
    /// loop would have stopped dispatching their per-packet events.
    run_deadline: SimTime,
    event_budget: Option<u64>,
    budget_exhausted: bool,
    /// Set by [`Command::Halt`]: a tap concluded the remainder of the run
    /// is fully determined (e.g. all its one-shot rules are provably dead
    /// no-ops), so event dispatch stops and the caller substitutes the
    /// known outcome. Sticky for the simulator's lifetime, like the event
    /// budget.
    halted: bool,
    pending: Vec<Command>,
    trace: Option<Trace>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("scheduler", &self.queue.name())
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("pending_events", &(self.queue.len() + self.fifo_len))
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with a deterministic RNG seed, driven by
    /// the hierarchical timer-wheel scheduler. Builds carrying the
    /// `heap-sched` feature (tests always do) honour
    /// `SNAKE_NETSIM_SCHED=heap` to select the legacy binary-heap
    /// scheduler instead — how the cross-crate equivalence suites replay
    /// entire campaigns against the reference implementation.
    pub fn new(seed: u64) -> Simulator {
        #[cfg(any(test, feature = "heap-sched"))]
        if std::env::var_os("SNAKE_NETSIM_SCHED").is_some_and(|v| v == "heap") {
            return Simulator::with_queue(seed, Queue::new_heap());
        }
        Simulator::with_queue(seed, Queue::new_wheel())
    }

    /// Creates a simulator driven by the legacy binary-heap scheduler, the
    /// reference implementation the differential tests compare the wheel
    /// against.
    #[cfg(any(test, feature = "heap-sched"))]
    pub fn new_with_heap_scheduler(seed: u64) -> Simulator {
        Simulator::with_queue(seed, Queue::new_heap())
    }

    /// The name of the scheduler backend driving this simulator:
    /// `"wheel"` (production) or `"heap"` (differential-test reference).
    pub fn scheduler_name(&self) -> &'static str {
        self.queue.name()
    }

    fn with_queue(seed: u64, queue: Queue) -> Simulator {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            seed,
            queue,
            arena: PacketArena::default(),
            nodes: Vec::new(),
            chans: Vec::new(),
            links: Vec::new(),
            next_hop: Vec::new(),
            routes_dirty: true,
            next_timer: 0,
            next_packet_id: 1,
            controls: FxHashMap::default(),
            next_control: 0,
            agent_rng: SmallRng::seed_from_u64(seed),
            started: false,
            events_processed: 0,
            timers_cancelled: 0,
            fifo_len: 0,
            queue_depth_hwm: 0,
            run_deadline: SimTime::ZERO,
            event_budget: None,
            budget_exhausted: false,
            halted: false,
            pending: Vec::new(),
            trace: None,
        }
    }

    /// Caps the total number of events this simulator will ever process.
    ///
    /// A livelocked or retransmission-storm run would otherwise grind
    /// through events forever inside one `run_until` call; the budget turns
    /// that into a deterministic truncation: event ordering is seeded, so
    /// the same spec and budget always stop at exactly the same event.
    /// Once exhausted, further [`run_until`](Simulator::run_until) calls
    /// only advance the clock — no more events are dispatched — and
    /// [`budget_exhausted`](Simulator::budget_exhausted) reports it.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Whether the event budget stopped the simulation early.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// Whether a tap halted the run via [`TapCtx::request_halt`]. Once set,
    /// no further events are dispatched — the caller is expected to already
    /// know the run's outcome (that is the only sound reason to halt).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Enables packet capture on every link, keeping up to `capacity`
    /// records (the simulation's `tcpdump`; see [`Trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The capture buffer, if [`enable_trace`](Simulator::enable_trace)
    /// was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Accepts a packet onto a channel, recording it in the trace.
    fn enqueue_on_chan(&mut self, chan: usize, packet: Packet) {
        if let Some(trace) = self.trace.as_mut() {
            let slot = &self.chans[chan];
            trace.record(self.now, LinkId(slot.link), slot.from, slot.to, &packet);
        }
        let now = self.now;
        if let Some(done) = self.chans[chan].chan.enqueue(packet, now) {
            self.push(done, EventKind::ChanDequeue { chan });
        }
    }

    /// Adds a node with no agent yet.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            name: name.into(),
            agent: None,
        });
        self.routes_dirty = true;
        id
    }

    /// Installs (or replaces) the agent running on `node`.
    pub fn set_agent<A: Agent>(&mut self, node: NodeId, agent: A) {
        self.nodes[node.0].agent = Some(Box::new(agent));
    }

    /// Connects two nodes with a duplex link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        let link = self.links.len();
        let c_ab = self.chans.len();
        self.chans.push(ChanSlot {
            chan: Channel::new(spec, self.seed, c_ab),
            from: a,
            to: b,
            link,
            fifo: VecDeque::new(),
        });
        let c_ba = self.chans.len();
        self.chans.push(ChanSlot {
            chan: Channel::new(spec, self.seed, c_ba),
            from: b,
            to: a,
            link,
            fifo: VecDeque::new(),
        });
        self.links.push(LinkSlot {
            a,
            b,
            chans: [c_ab, c_ba],
            tap: None,
        });
        self.routes_dirty = true;
        LinkId(link)
    }

    /// Attaches a packet interceptor to a link (one per link).
    pub fn attach_tap<T: Tap>(&mut self, link: LinkId, tap: T) {
        self.links[link.0].tap = Some(Box::new(tap));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (a proxy for simulation cost).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Event-loop counters for observability. Forked simulators inherit
    /// their parent's totals (like [`events_processed`]), so a fork's
    /// final stats describe prefix + continuation, the same work a
    /// from-scratch run would have done.
    ///
    /// [`events_processed`]: Simulator::events_processed
    pub fn stats(&self) -> SimStats {
        SimStats {
            events_processed: self.events_processed,
            timers_cancelled: self.timers_cancelled,
            timers_purged: self.queue.timers_purged(),
            queue_compactions: self.queue.queue_compactions(),
            queue_depth_hwm: self.queue_depth_hwm,
            arena_alloc: self.arena.allocs(),
            arena_reuse: self.arena.reuses(),
        }
    }

    /// Deterministic estimate of the heap bytes [`fork`](Simulator::fork)
    /// copies right now: the event queue and delivery FIFOs, the packet
    /// arena, per-channel packet occupancy and bookkeeping maps. Agent/tap
    /// internals are opaque boxes, so this is a lower bound — useful for
    /// comparing fork costs, not for accounting exact allocations. The
    /// estimate depends on the scheduler backend (the wheel tracks every
    /// pending timer's location; the heap only tracks cancellations), so
    /// equivalence comparisons must not include it.
    pub fn approx_clone_bytes(&self) -> u64 {
        let queue = self.queue.len() * std::mem::size_of::<Scheduled>();
        let fifos = self.fifo_len * std::mem::size_of::<FifoEntry>();
        let arena = self.arena.capacity() * std::mem::size_of::<Packet>();
        let packets: usize = self
            .chans
            .iter()
            .map(|c| c.chan.occupancy() * std::mem::size_of::<Packet>())
            .sum();
        let maps = self.queue.map_len() * 24 + self.controls.len() * 24;
        (queue + fifos + arena + packets + maps) as u64
    }

    /// A node's name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Immutable access to the agent on `node`, downcast to its concrete
    /// type. Returns `None` if the node has no agent or the type is wrong.
    pub fn agent<A: Agent>(&self, node: NodeId) -> Option<&A> {
        let agent = self.nodes[node.0].agent.as_deref()?;
        let any: &dyn Any = agent;
        any.downcast_ref()
    }

    /// Mutable access to the agent on `node`, downcast to its concrete type.
    pub fn agent_mut<A: Agent>(&mut self, node: NodeId) -> Option<&mut A> {
        let agent = self.nodes[node.0].agent.as_deref_mut()?;
        let any: &mut dyn Any = agent;
        any.downcast_mut()
    }

    /// Immutable access to the tap on `link`, downcast to its concrete type.
    pub fn tap<T: Tap>(&self, link: LinkId) -> Option<&T> {
        let tap = self.links[link.0].tap.as_deref()?;
        let any: &dyn Any = tap;
        any.downcast_ref()
    }

    /// Mutable access to the tap on `link`, downcast to its concrete type
    /// (the snapshot-fork executor rewrites a forked baseline proxy's rules
    /// through this).
    pub fn tap_mut<T: Tap>(&mut self, link: LinkId) -> Option<&mut T> {
        let tap = self.links[link.0].tap.as_deref_mut()?;
        let any: &mut dyn Any = tap;
        any.downcast_mut()
    }

    /// Deep-clones the whole simulator — event queue, packet arena,
    /// channels and their delivery FIFOs, agents, taps, RNG, pending
    /// controls — producing an independent run that continues from this
    /// exact instant. Determinism makes the fork exact: a fork left
    /// untouched replays byte-for-byte what its parent does, even when the
    /// fork lands mid-way through a timer-wheel cascade (the wheel's
    /// position and slot contents clone verbatim).
    ///
    /// Returns `None` if any installed agent or tap does not implement
    /// [`Agent::boxed_clone`] / [`Tap::boxed_clone`]. Must not be called
    /// from inside a callback (no commands may be pending).
    pub fn fork(&self) -> Option<Simulator> {
        debug_assert!(self.pending.is_empty(), "fork inside a callback");
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let agent = match &n.agent {
                Some(a) => Some(a.boxed_clone()?),
                None => None,
            };
            nodes.push(NodeSlot {
                name: n.name.clone(),
                agent,
            });
        }
        let mut links = Vec::with_capacity(self.links.len());
        for l in &self.links {
            let tap = match &l.tap {
                Some(t) => Some(t.boxed_clone()?),
                None => None,
            };
            links.push(LinkSlot {
                a: l.a,
                b: l.b,
                chans: l.chans,
                tap,
            });
        }
        Some(Simulator {
            now: self.now,
            seq: self.seq,
            seed: self.seed,
            queue: self.queue.clone(),
            arena: self.arena.clone(),
            nodes,
            chans: self.chans.clone(),
            links,
            next_hop: self.next_hop.clone(),
            routes_dirty: self.routes_dirty,
            next_timer: self.next_timer,
            next_packet_id: self.next_packet_id,
            controls: self.controls.clone(),
            next_control: self.next_control,
            agent_rng: self.agent_rng.clone(),
            started: self.started,
            events_processed: self.events_processed,
            timers_cancelled: self.timers_cancelled,
            fifo_len: self.fifo_len,
            queue_depth_hwm: self.queue_depth_hwm,
            run_deadline: self.run_deadline,
            event_budget: self.event_budget,
            budget_exhausted: self.budget_exhausted,
            halted: self.halted,
            pending: Vec::new(),
            trace: self.trace.clone(),
        })
    }

    /// Per-direction statistics for a link: `(a→b, b→a)`.
    pub fn link_stats(&self, link: LinkId) -> (ChannelStats, ChannelStats) {
        let l = &self.links[link.0];
        (
            self.chans[l.chans[0]].chan.stats,
            self.chans[l.chans[1]].chan.stats,
        )
    }

    /// Impairment draw totals summed over every channel, for observability:
    /// `(lost, duplicated, corrupted, reordered, flap_dropped)`.
    pub fn impairment_totals(&self) -> (u64, u64, u64, u64, u64) {
        let mut totals = (0, 0, 0, 0, 0);
        for slot in &self.chans {
            let s = &slot.chan.stats;
            totals.0 += s.lost;
            totals.1 += s.duplicated;
            totals.2 += s.corrupted;
            totals.3 += s.reordered;
            totals.4 += s.flap_dropped;
        }
        totals
    }

    /// Schedules a control action: at `at`, run `f` against the agent on
    /// `node` with a live [`Ctx`]. This is how the executor scripts
    /// scenarios (start transfers, abort clients, close server apps).
    pub fn schedule_control<F>(&mut self, at: SimTime, node: NodeId, f: F)
    where
        F: Fn(&mut dyn Agent, &mut Ctx<'_>) + Send + Sync + 'static,
    {
        let key = self.next_control;
        self.next_control += 1;
        self.controls.insert(key, (node, Arc::new(f)));
        self.push(at, EventKind::Control { key });
    }

    /// Runs the simulation until simulated time `deadline` (inclusive of
    /// events scheduled exactly at it). On the first call, every agent's
    /// `on_start` and every tap's `on_start` run at the current time.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.routes_dirty {
            self.compute_routes();
        }
        self.queue.pre_run_maintenance();
        self.run_deadline = deadline;
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.with_agent(NodeId(i), |agent, ctx| agent.on_start(ctx));
            }
            for li in 0..self.links.len() {
                self.with_tap(li, |tap, ctx| tap.on_start(ctx));
            }
        }
        loop {
            if self.halted {
                break;
            }
            let Some((at, _seq)) = self.queue.peek_key() else {
                break;
            };
            if at > deadline {
                break;
            }
            if let Some(budget) = self.event_budget {
                if self.events_processed >= budget {
                    self.budget_exhausted = true;
                    break;
                }
            }
            match self.queue.pop().expect("peeked") {
                // A cancelled timer's key: advance the clock and move on.
                // Ghosts are not dispatched and not counted, exactly like
                // the reference heap consuming a tombstoned event.
                Popped::Ghost(at) => {
                    debug_assert!(at >= self.now, "time went backwards");
                    self.now = at;
                }
                Popped::Event(ev) => {
                    debug_assert!(ev.at >= self.now, "time went backwards");
                    self.now = ev.at;
                    self.events_processed += 1;
                    self.dispatch(ev.kind);
                }
            }
        }
        self.now = deadline;
        // Reference-heap mode purges cancellation records whose fire time
        // has passed; the wheel removed its entries at cancel time, so
        // this is a no-op there.
        self.queue.post_run_purge(deadline);
        for li in 0..self.links.len() {
            if let Some(tap) = self.links[li].tap.as_deref_mut() {
                tap.on_finish(deadline);
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { node, packet } => {
                let packet = self.arena.take(packet);
                self.deliver(node, packet);
            }
            EventKind::TimerFire { node, tag, .. } => {
                // Cancelled timers were consumed as ghosts in the run loop.
                self.with_agent(node, |agent, ctx| agent.on_timer(ctx, tag));
            }
            EventKind::ChanDequeue { chan } => {
                let now = self.now;
                let slot = &mut self.chans[chan];
                // Reorder jitter is drawn per delivered packet from the
                // channel's own impairment lane (a plain spec delay when
                // no reordering is configured).
                let delay = slot.chan.delivery_delay();
                let to = slot.to;
                let (packet, next) = slot.chan.dequeue(now);
                if let Some(t) = next {
                    self.push(t, EventKind::ChanDequeue { chan });
                }
                self.push_delivery(chan, to, now + delay, packet);
            }
            EventKind::ChanEnqueue { chan, packet } => {
                let packet = self.arena.take(packet);
                self.enqueue_on_chan(chan, packet);
            }
            EventKind::ChanDeliver { chan } => {
                self.dispatch_chan_deliver(chan);
            }
            EventKind::TapTimerFire { link, tag } => {
                self.with_tap(link, |tap, ctx| tap.on_timer(ctx, tag));
            }
            EventKind::Control { key } => {
                if let Some((node, f)) = self.controls.remove(&key) {
                    self.with_agent(node, |agent, ctx| f(agent, ctx));
                }
            }
        }
    }

    /// Hands an arrived packet to its destination agent, or forwards it
    /// along the route from an intermediate hop.
    fn deliver(&mut self, node: NodeId, packet: Packet) {
        if packet.dst.node == node {
            self.with_agent(node, |agent, ctx| agent.on_packet(ctx, packet));
        } else {
            self.route_send(node, packet);
        }
    }

    /// Schedules delivery of a packet that finished transmitting on `chan`.
    ///
    /// Under the wheel scheduler, deliveries of an in-order channel park in
    /// the channel's FIFO; only the FIFO head is represented in the global
    /// queue, by a `ChanDeliver` marker carrying the head's exact
    /// `(at, seq)` key. Every entry still consumes one global sequence
    /// number at push time — the same one its per-packet `Deliver` event
    /// would have consumed under the reference heap — so both schedulers
    /// observe identical sequence streams and therefore identical total
    /// event order. Reorder-jittered channels are not FIFO and take the
    /// per-packet path unconditionally.
    fn push_delivery(&mut self, chan: usize, to: NodeId, at: SimTime, packet: Packet) {
        let packet = self.arena.insert(packet);
        if !(self.queue.batches_deliveries() && self.chans[chan].chan.delivers_in_order()) {
            self.push(at, EventKind::Deliver { node: to, packet });
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        let slot = &mut self.chans[chan];
        debug_assert!(
            slot.fifo.back().is_none_or(|b| (b.at, b.seq) < (at, seq)),
            "in-order channel produced out-of-order delivery"
        );
        let was_empty = slot.fifo.is_empty();
        slot.fifo.push_back(FifoEntry { at, seq, packet });
        self.fifo_len += 1;
        if was_empty {
            // The marker reuses the head's key; it consumes no sequence
            // number of its own.
            self.queue.push(Scheduled {
                at,
                seq,
                kind: EventKind::ChanDeliver { chan },
            });
        }
        self.note_depth();
    }

    /// Dispatches a `ChanDeliver` marker: delivers the FIFO head (already
    /// validated and counted by the run loop, since the marker carries the
    /// head's key), then drains consecutive entries inline while each
    /// remains the globally next event — re-applying the run loop's
    /// halt/deadline/budget checks per delivery so truncation behaviour
    /// matches the reference scheduler's per-packet events byte for byte.
    fn dispatch_chan_deliver(&mut self, chan: usize) {
        let entry = self.chans[chan]
            .fifo
            .pop_front()
            .expect("ChanDeliver marker without a FIFO entry");
        self.fifo_len -= 1;
        debug_assert_eq!(entry.at, self.now, "marker key must match FIFO head");
        let to = self.chans[chan].to;
        let packet = self.arena.take(entry.packet);
        self.deliver(to, packet);
        loop {
            let Some(front) = self.chans[chan].fifo.front() else {
                // FIFO drained; the next delivery will re-arm a marker.
                return;
            };
            let key = (front.at, front.seq);
            let blocked = self.halted
                || key.0 > self.run_deadline
                || self
                    .event_budget
                    .is_some_and(|b| self.events_processed >= b)
                || self.queue.peek_key().is_some_and(|qk| qk < key);
            if blocked {
                // Hand control back to the run loop: re-arm the marker at
                // the new head's key so global ordering resumes there. The
                // loop re-derives the right outcome (other event first,
                // deadline break, budget flag, halt) from its own checks.
                self.queue.push(Scheduled {
                    at: key.0,
                    seq: key.1,
                    kind: EventKind::ChanDeliver { chan },
                });
                return;
            }
            let entry = self.chans[chan].fifo.pop_front().expect("peeked front");
            self.fifo_len -= 1;
            self.now = entry.at;
            self.events_processed += 1;
            let to = self.chans[chan].to;
            let packet = self.arena.take(entry.packet);
            self.deliver(to, packet);
        }
    }

    /// Runs an agent callback with a fresh `Ctx`, then applies the buffered
    /// commands.
    fn with_agent<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx<'_>),
    {
        let Some(mut agent) = self.nodes[node.0].agent.take() else {
            return;
        };
        let mut commands = std::mem::take(&mut self.pending);
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                commands: &mut commands,
                rng: &mut self.agent_rng,
                next_timer: &mut self.next_timer,
            };
            f(agent.as_mut(), &mut ctx);
        }
        self.nodes[node.0].agent = Some(agent);
        self.apply(commands, None);
    }

    /// Runs a tap callback with a fresh `TapCtx`, then applies the buffered
    /// commands (tap emissions target this link's channels).
    fn with_tap<F>(&mut self, link: usize, f: F)
    where
        F: FnOnce(&mut dyn Tap, &mut TapCtx<'_>),
    {
        let Some(mut tap) = self.links[link].tap.take() else {
            return;
        };
        let mut commands = std::mem::take(&mut self.pending);
        {
            let mut ctx = TapCtx {
                now: self.now,
                link_a: self.links[link].a,
                link_b: self.links[link].b,
                commands: &mut commands,
            };
            f(tap.as_mut(), &mut ctx);
        }
        self.links[link].tap = Some(tap);
        self.apply(commands, Some(link));
    }

    fn apply(&mut self, mut commands: Vec<Command>, tap_link: Option<usize>) {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send { from, mut packet } => {
                    if packet.id == 0 {
                        packet.id = self.next_packet_id;
                        self.next_packet_id += 1;
                    }
                    self.route_send(from, packet);
                }
                Command::SetTimer { node, handle, tag } => {
                    self.push(
                        handle.at.max(self.now),
                        EventKind::TimerFire {
                            node,
                            handle: handle.id,
                            tag,
                        },
                    );
                }
                Command::CancelTimer { handle } => {
                    // The wheel removes the pending entry natively (O(1),
                    // leaving a ghost key); the reference heap records a
                    // tombstone consumed at pop time and purged once the
                    // fire time passes.
                    self.timers_cancelled += 1;
                    self.queue.cancel_timer(handle.id, handle.at);
                }
                Command::TapEmit {
                    mut packet,
                    toward_b,
                    delay,
                } => {
                    let link = tap_link.expect("TapEmit outside a tap callback");
                    if packet.id == 0 {
                        packet.id = self.next_packet_id;
                        self.next_packet_id += 1;
                    }
                    let chan = self.links[link].chans[if toward_b { 0 } else { 1 }];
                    if delay == SimDuration::ZERO {
                        self.enqueue_on_chan(chan, packet);
                    } else {
                        let packet = self.arena.insert(packet);
                        self.push(self.now + delay, EventKind::ChanEnqueue { chan, packet });
                    }
                }
                Command::TapTimer { at, tag } => {
                    let link = tap_link.expect("TapTimer outside a tap callback");
                    self.push(at.max(self.now), EventKind::TapTimerFire { link, tag });
                }
                Command::Halt => {
                    self.halted = true;
                }
            }
        }
        // Hand the (now empty) buffer back for reuse.
        if self.pending.capacity() < commands.capacity() {
            self.pending = commands;
        }
    }

    /// Sends a packet from `from` toward its destination: looks up the next
    /// hop, diverts through the link's tap if one is attached, otherwise
    /// enqueues on the channel.
    fn route_send(&mut self, from: NodeId, packet: Packet) {
        if self.halted {
            // A halted run is over; in-flight sends vanish like the queued
            // events the halt already cut off.
            return;
        }
        if packet.dst.node == from {
            // Loopback: deliver immediately.
            let packet = self.arena.insert(packet);
            self.push(self.now, EventKind::Deliver { node: from, packet });
            return;
        }
        let Some(chan) = self.next_hop[from.0][packet.dst.node.0] else {
            // Unroutable packets vanish, like a missing route in a real
            // network.
            return;
        };
        let link = self.chans[chan].link;
        if self.links[link].tap.is_some() {
            let toward_b = self.chans[chan].from == self.links[link].a;
            self.with_tap(link, |tap, ctx| tap.on_packet(ctx, packet, toward_b));
        } else {
            self.enqueue_on_chan(chan, packet);
        }
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
        self.note_depth();
    }

    #[inline]
    fn note_depth(&mut self) {
        let depth = (self.queue.len() + self.fifo_len) as u64;
        if depth > self.queue_depth_hwm {
            self.queue_depth_hwm = depth;
        }
    }

    /// BFS shortest-path next-hop table over the undirected topology.
    fn compute_routes(&mut self) {
        let n = self.nodes.len();
        let mut adjacency: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
        for (ci, c) in self.chans.iter().enumerate() {
            adjacency[c.from.0].push((c.to, ci));
        }
        let mut table = vec![vec![None; n]; n];
        for dst in 0..n {
            // BFS from dst over reversed edges = shortest paths toward dst.
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut frontier = std::collections::VecDeque::new();
            frontier.push_back(dst);
            while let Some(u) = frontier.pop_front() {
                // For each node v with an edge v -> u, v can reach dst via u.
                for v in 0..n {
                    if dist[v] != usize::MAX {
                        continue;
                    }
                    let hop = adjacency[v].iter().find(|(to, _)| to.0 == u);
                    if let Some(&(_, chan)) = hop {
                        dist[v] = dist[u] + 1;
                        table[v][dst] = Some(chan);
                        frontier.push_back(v);
                    }
                }
            }
        }
        self.next_hop = table;
        self.routes_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, Protocol};

    /// Echoes every received packet back to its source.
    #[derive(Clone)]
    struct Echo {
        received: Vec<Packet>,
    }
    impl Agent for Echo {
        fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
            Some(Box::new(self.clone()))
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
            let reply = Packet::new(
                Addr::new(ctx.node(), packet.dst.port),
                packet.src,
                packet.protocol,
                packet.header.clone(),
                packet.payload_len,
            );
            self.received.push(packet);
            ctx.send(reply);
        }
    }

    /// Sends `count` packets at start, records replies and timer fires.
    #[derive(Clone)]
    struct Blaster {
        peer: NodeId,
        count: u32,
        size: u32,
        replies: u32,
        timer_fires: Vec<u64>,
    }
    impl Blaster {
        fn new(peer: NodeId, count: u32, size: u32) -> Blaster {
            Blaster {
                peer,
                count,
                size,
                replies: 0,
                timer_fires: Vec::new(),
            }
        }
    }
    impl Agent for Blaster {
        fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
            Some(Box::new(self.clone()))
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.count {
                let pkt = Packet::new(
                    ctx.addr(1000),
                    Addr::new(self.peer, 7),
                    Protocol::Other(1),
                    Vec::new(),
                    self.size,
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
            self.replies += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
            self.timer_fires.push(tag);
        }
    }

    fn two_node_sim(queue: usize) -> (Simulator, NodeId, NodeId, LinkId) {
        let mut sim = Simulator::new(7);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.set_agent(
            b,
            Echo {
                received: Vec::new(),
            },
        );
        // 8 Mbit/s = 1 byte/µs; 1 ms propagation.
        let link = sim.add_link(
            a,
            b,
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), queue),
        );
        (sim, a, b, link)
    }

    #[test]
    fn packet_roundtrip_timing() {
        let (mut sim, a, b, _) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 1, 80));
        // One-way: 100 µs serialization + 1 ms propagation = 1.1 ms;
        // round trip 2.2 ms.
        sim.run_until(SimTime::from_micros(2_199));
        assert_eq!(sim.agent::<Blaster>(a).unwrap().replies, 0);
        sim.run_until(SimTime::from_micros(2_201));
        assert_eq!(sim.agent::<Blaster>(a).unwrap().replies, 1);
        assert_eq!(sim.agent::<Echo>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn queue_overflow_drops_packets() {
        // Queue of 2: burst of 10 same-size packets → 1 in flight + 2
        // queued survive per burst round, rest dropped.
        let (mut sim, a, b, link) = two_node_sim(2);
        sim.set_agent(a, Blaster::new(b, 10, 80));
        sim.run_until(SimTime::from_secs(1));
        let (ab, _) = sim.link_stats(link);
        assert_eq!(ab.dropped, 7);
        assert_eq!(ab.transmitted, 3);
        assert_eq!(sim.agent::<Echo>(b).unwrap().received.len(), 3);
    }

    #[test]
    fn multi_hop_routing() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let r = sim.add_node("router");
        let b = sim.add_node("b");
        sim.set_agent(a, Blaster::new(b, 1, 100));
        sim.set_agent(
            b,
            Echo {
                received: Vec::new(),
            },
        );
        let spec = LinkSpec::new(8_000_000, SimDuration::from_millis(1), 16);
        sim.add_link(a, r, spec);
        sim.add_link(r, b, spec);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Blaster>(a).unwrap().replies, 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Agent for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let h = ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.cancel_timer(h);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, Timers { fired: Vec::new() });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Timers>(n).unwrap().fired, vec![1, 2]);
    }

    #[test]
    fn control_actions_reach_agents() {
        let (mut sim, a, b, _) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 0, 0));
        sim.schedule_control(SimTime::from_millis(5), a, |agent, ctx| {
            let any: &mut dyn Any = agent;
            let blaster: &mut Blaster = any.downcast_mut().expect("blaster");
            blaster.count = 1;
            let pkt = Packet::new(
                ctx.addr(1000),
                Addr::new(blaster.peer, 7),
                Protocol::Other(1),
                Vec::new(),
                10,
            );
            ctx.send(pkt);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Blaster>(a).unwrap().replies, 1);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |_seed: u64| {
            let (mut sim, a, b, link) = two_node_sim(2);
            sim.set_agent(a, Blaster::new(b, 10, 80));
            sim.run_until(SimTime::from_secs(1));
            let (ab, ba) = sim.link_stats(link);
            (sim.events_processed(), ab, ba)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn loopback_delivery() {
        struct SelfSend {
            got: bool,
        }
        impl Agent for SelfSend {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let pkt = Packet::new(ctx.addr(1), ctx.addr(2), Protocol::Other(1), Vec::new(), 0);
                ctx.send(pkt);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
                self.got = true;
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, SelfSend { got: false });
        sim.run_until(SimTime::from_millis(1));
        assert!(sim.agent::<SelfSend>(n).unwrap().got);
    }

    #[test]
    fn unroutable_packets_vanish() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        // No link between a and b.
        sim.set_agent(a, Blaster::new(b, 3, 10));
        sim.set_agent(
            b,
            Echo {
                received: Vec::new(),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Echo>(b).unwrap().received.len(), 0);
    }

    struct DropAllTap {
        seen: u64,
    }
    impl Tap for DropAllTap {
        fn on_packet(&mut self, _ctx: &mut TapCtx<'_>, _packet: Packet, _toward_b: bool) {
            self.seen += 1;
        }
    }

    struct PassTap;
    impl Tap for PassTap {
        fn on_packet(&mut self, ctx: &mut TapCtx<'_>, packet: Packet, toward_b: bool) {
            ctx.forward(packet, toward_b);
        }
    }

    #[test]
    fn tap_can_drop_everything() {
        let (mut sim, a, b, link) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 5, 80));
        sim.attach_tap(link, DropAllTap { seen: 0 });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.tap::<DropAllTap>(link).unwrap().seen, 5);
        assert_eq!(sim.agent::<Echo>(b).unwrap().received.len(), 0);
    }

    #[test]
    fn passthrough_tap_is_transparent() {
        let (mut sim, a, b, link) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 5, 80));
        sim.attach_tap(link, PassTap);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Blaster>(a).unwrap().replies, 5);
    }

    struct InjectingTap {
        target: Addr,
        from: Addr,
    }
    impl Tap for InjectingTap {
        fn on_start(&mut self, ctx: &mut TapCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(5), 99);
        }
        fn on_packet(&mut self, ctx: &mut TapCtx<'_>, packet: Packet, toward_b: bool) {
            ctx.forward(packet, toward_b);
        }
        fn on_timer(&mut self, ctx: &mut TapCtx<'_>, tag: u64) {
            assert_eq!(tag, 99);
            let pkt = Packet::new(self.from, self.target, Protocol::Other(1), Vec::new(), 1);
            // Target is on the b side of the tapped link.
            ctx.inject(pkt, true, SimDuration::ZERO);
        }
    }

    #[test]
    fn event_budget_truncates_deterministically() {
        let run = |budget: u64| {
            let (mut sim, a, b, link) = two_node_sim(64);
            sim.set_agent(a, Blaster::new(b, 50, 80));
            sim.set_event_budget(budget);
            sim.run_until(SimTime::from_secs(1));
            let (ab, _) = sim.link_stats(link);
            (
                sim.events_processed(),
                sim.budget_exhausted(),
                ab.transmitted,
            )
        };
        let first = run(10);
        assert!(first.1, "tiny budget must exhaust");
        assert!(first.0 <= 10);
        assert_eq!(first, run(10), "truncation must be deterministic");
    }

    #[test]
    fn exhausted_budget_freezes_further_runs() {
        let (mut sim, a, b, _) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 50, 80));
        sim.set_event_budget(5);
        sim.run_until(SimTime::from_millis(10));
        assert!(sim.budget_exhausted());
        let processed = sim.events_processed();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.events_processed(),
            processed,
            "no events after exhaustion"
        );
        assert_eq!(sim.now(), SimTime::from_secs(1), "clock still advances");
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let run = |budget: Option<u64>| {
            let (mut sim, a, b, link) = two_node_sim(2);
            sim.set_agent(a, Blaster::new(b, 10, 80));
            if let Some(x) = budget {
                sim.set_event_budget(x);
            }
            sim.run_until(SimTime::from_secs(1));
            let (ab, ba) = sim.link_stats(link);
            (sim.events_processed(), sim.budget_exhausted(), ab, ba)
        };
        let capped = run(Some(1_000_000));
        let free = run(None);
        assert!(!capped.1);
        assert_eq!(capped, free);
    }

    #[test]
    fn tap_timer_injection() {
        let (mut sim, a, b, link) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 0, 0));
        sim.attach_tap(
            link,
            InjectingTap {
                target: Addr::new(b, 7),
                from: Addr::new(a, 1000),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        // Echo replies to the spoofed source; the blaster sees it.
        assert_eq!(sim.agent::<Echo>(b).unwrap().received.len(), 1);
        assert_eq!(sim.agent::<Blaster>(a).unwrap().replies, 1);
    }

    fn state_of(sim: &Simulator, a: NodeId, b: NodeId, link: LinkId) -> (u64, u32, usize, u64) {
        let (ab, _) = sim.link_stats(link);
        (
            sim.events_processed(),
            sim.agent::<Blaster>(a).unwrap().replies,
            sim.agent::<Echo>(b).unwrap().received.len(),
            ab.transmitted,
        )
    }

    #[test]
    fn fork_replays_parent_exactly() {
        let (mut sim, a, b, link) = two_node_sim(4);
        sim.set_agent(a, Blaster::new(b, 10, 80));
        sim.run_until(SimTime::from_millis(3));
        let mut child = sim.fork().expect("all agents cloneable");
        sim.run_until(SimTime::from_secs(1));
        child.run_until(SimTime::from_secs(1));
        assert_eq!(
            state_of(&sim, a, b, link),
            state_of(&child, a, b, link),
            "an untouched fork must replay its parent byte for byte"
        );
    }

    #[test]
    fn fork_does_not_perturb_parent() {
        let run = |fork_midway: bool| {
            let (mut sim, a, b, link) = two_node_sim(4);
            sim.set_agent(a, Blaster::new(b, 10, 80));
            sim.run_until(SimTime::from_millis(3));
            let child = if fork_midway { sim.fork() } else { None };
            sim.run_until(SimTime::from_secs(1));
            drop(child);
            state_of(&sim, a, b, link)
        };
        assert_eq!(run(true), run(false), "forking is invisible to the parent");
    }

    #[test]
    fn fork_preserves_pending_timers_and_cancellations() {
        struct Arm;
        impl Agent for Arm {
            fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
                Some(Box::new(Arm))
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let dead = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.cancel_timer(dead);
                ctx.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                // Visible side effect per fire: a loopback packet.
                let pkt = Packet::new(
                    ctx.addr(tag as u16),
                    ctx.addr(7),
                    Protocol::Other(1),
                    Vec::new(),
                    0,
                );
                ctx.send(pkt);
            }
        }
        let mut sim = Simulator::new(3);
        let n = sim.add_node("n");
        sim.set_agent(n, Arm);
        sim.run_until(SimTime::from_millis(5));
        let mut child = sim.fork().expect("cloneable");
        sim.run_until(SimTime::from_secs(1));
        child.run_until(SimTime::from_secs(1));
        assert_eq!(sim.events_processed(), child.events_processed());
        // Timers 1 and 3 fired (each a timer event + a delivered packet);
        // the cancelled timer 2 must fire in neither run.
        assert_eq!(sim.events_processed(), 2 + 2);
    }

    #[test]
    fn fork_refused_when_an_agent_is_not_cloneable() {
        struct Opaque;
        impl Agent for Opaque {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, Opaque);
        sim.run_until(SimTime::from_millis(1));
        assert!(sim.fork().is_none(), "default boxed_clone declines to fork");
    }

    #[test]
    fn fork_refused_when_a_tap_is_not_cloneable() {
        let (mut sim, a, b, link) = two_node_sim(4);
        sim.set_agent(a, Blaster::new(b, 1, 80));
        sim.attach_tap(link, PassTap);
        sim.run_until(SimTime::from_millis(1));
        assert!(sim.fork().is_none(), "PassTap has no boxed_clone");
    }

    /// Forwards packets until `after` have passed, then halts the run.
    struct HaltingTap {
        after: u64,
        seen: u64,
    }
    impl Tap for HaltingTap {
        fn on_packet(&mut self, ctx: &mut TapCtx<'_>, packet: Packet, toward_b: bool) {
            self.seen += 1;
            ctx.forward(packet, toward_b);
            if self.seen >= self.after {
                ctx.request_halt();
            }
        }
    }

    #[test]
    fn tap_halt_stops_event_dispatch() {
        let (mut sim, a, b, link) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 10, 80));
        sim.attach_tap(link, HaltingTap { after: 3, seen: 0 });
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.halted());
        // The blaster's ten sends are routed synchronously at start; the
        // halt after the third stops the remaining seven at the router.
        assert_eq!(sim.tap::<HaltingTap>(link).unwrap().seen, 3);
        // Forwarded packets were enqueued but their delivery events never
        // dispatched — the run was already over.
        assert_eq!(sim.agent::<Echo>(b).unwrap().received.len(), 0);
        let processed = sim.events_processed();
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.events_processed(), processed, "halt is sticky");
        assert_eq!(sim.now(), SimTime::from_secs(2), "clock still advances");
    }

    struct Canceller;
    impl Agent for Canceller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..10 {
                let h = ctx.set_timer(SimDuration::from_millis(10), 0);
                ctx.cancel_timer(h);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
    }

    #[test]
    fn heap_sched_purges_cancelled_records_after_fire_time() {
        let mut sim = Simulator::new_with_heap_scheduler(1);
        let n = sim.add_node("n");
        sim.set_agent(n, Canceller);
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(
            sim.queue.heap_cancelled_len(),
            Some(10),
            "records live until fire time"
        );
        sim.run_until(SimTime::from_millis(50));
        // The dead TimerFire events popped during the second run and
        // consumed their records (uncounted); anything left over would
        // have been purged by fire time.
        assert_eq!(sim.queue.heap_cancelled_len(), Some(0));
    }

    #[test]
    fn wheel_removes_cancelled_timers_natively() {
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, Canceller);
        // The 10 ms timers are far-future at cancel time, so the wheel
        // removes their slot entries immediately — before any run deadline
        // passes — leaving only ghost keys.
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.scheduler_name(), "wheel");
        assert_eq!(sim.stats().timers_purged, 10, "native removals counted");
        assert_eq!(sim.stats().queue_compactions, 0, "the wheel never compacts");
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.stats().events_processed, 0, "no dead timer dispatched");
    }

    /// A deliberately chaotic agent exercising every scheduler-visible
    /// behaviour at once: timer churn (immediate, near, far, MAX-adjacent,
    /// cancel-then-rearm), packet bursts, and loopback traffic.
    #[derive(Clone)]
    struct Chaotic {
        peer: NodeId,
        armed: Vec<TimerHandle>,
        fired: Vec<(u64, u64)>,
        got: Vec<(u64, u64)>,
        sends_left: u32,
    }
    impl Chaotic {
        fn new(peer: NodeId) -> Chaotic {
            Chaotic {
                peer,
                armed: Vec::new(),
                fired: Vec::new(),
                got: Vec::new(),
                sends_left: 60,
            }
        }
        fn churn(&mut self, ctx: &mut Ctx<'_>, salt: u64) {
            // Arm a spread of horizons, cancel every other previously
            // armed handle, and re-arm one at the same tag and time
            // (cancel-then-rearm through fresh handles).
            let near = ctx.set_timer(SimDuration::from_micros(50 + salt % 700), 10 + salt % 4);
            let far = ctx.set_timer(SimDuration::from_millis(40 + salt % 25), 20 + salt % 4);
            ctx.set_timer_at(SimTime::MAX, 99);
            if salt.is_multiple_of(2) {
                ctx.cancel_timer(near);
                let _rearmed =
                    ctx.set_timer(SimDuration::from_micros(50 + salt % 700), 10 + salt % 4);
            }
            if let Some(h) = self.armed.pop() {
                ctx.cancel_timer(h);
            }
            self.armed.push(far);
            if salt.is_multiple_of(3) {
                ctx.set_timer(SimDuration::ZERO, 7);
            }
        }
        fn blast(&mut self, ctx: &mut Ctx<'_>, n: u32) {
            for i in 0..n.min(self.sends_left) {
                let dst = if i % 5 == 4 { ctx.node() } else { self.peer };
                let pkt = Packet::new(
                    ctx.addr(1000),
                    Addr::new(dst, 7),
                    Protocol::Other(2),
                    vec![i as u8; 12],
                    200,
                );
                ctx.send(pkt);
            }
            self.sends_left = self.sends_left.saturating_sub(n);
        }
    }
    impl Agent for Chaotic {
        fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
            Some(Box::new(self.clone()))
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.blast(ctx, 8);
            self.churn(ctx, 1);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
            self.got.push((packet.id, ctx.now().as_nanos()));
            let salt = packet.id;
            if self.got.len().is_multiple_of(2) {
                self.churn(ctx, salt);
            }
            if self.got.len().is_multiple_of(3) {
                self.blast(ctx, 2);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            self.fired.push((tag, ctx.now().as_nanos()));
            if self.fired.len() % 2 == 1 {
                self.blast(ctx, 1);
            }
            if self.fired.len() % 4 == 1 {
                self.churn(ctx, tag + self.fired.len() as u64);
            }
        }
    }

    /// Everything observable about a finished chaotic run.
    #[allow(clippy::type_complexity)]
    fn chaos_observables(
        sim: &Simulator,
        a: NodeId,
        b: NodeId,
        link: LinkId,
    ) -> (
        u64,
        bool,
        u64,
        Vec<(u64, u64)>,
        Vec<(u64, u64)>,
        Vec<(u64, u64)>,
        Vec<(u64, u64)>,
        ChannelStats,
        ChannelStats,
    ) {
        let (ab, ba) = sim.link_stats(link);
        let pa = sim.agent::<Chaotic>(a).unwrap();
        let pb = sim.agent::<Chaotic>(b).unwrap();
        (
            sim.events_processed(),
            sim.budget_exhausted(),
            sim.stats().timers_cancelled,
            pa.fired.clone(),
            pa.got.clone(),
            pb.fired.clone(),
            pb.got.clone(),
            ab,
            ba,
        )
    }

    fn chaos_sim(heap: bool, seed: u64, impaired: bool) -> (Simulator, NodeId, NodeId, LinkId) {
        let mut sim = if heap {
            Simulator::new_with_heap_scheduler(seed)
        } else {
            Simulator::new(seed)
        };
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.set_agent(a, Chaotic::new(b));
        sim.set_agent(b, Chaotic::new(a));
        let mut spec = LinkSpec::new(4_000_000, SimDuration::from_micros(700), 8);
        if impaired {
            spec = spec.with_impairment(crate::impair::Impairment {
                loss_ppm: 60_000,
                dup_ppm: 40_000,
                reorder_ppm: 150_000,
                jitter: SimDuration::from_micros(900),
                ..crate::impair::Impairment::NONE
            });
        }
        let link = sim.add_link(a, b, spec);
        (sim, a, b, link)
    }

    /// The whole-simulator differential oracle: under chaotic timer and
    /// traffic schedules — staged deadlines, mid-run forks, impaired and
    /// clean links, tight budgets — the wheel-driven simulator must
    /// reproduce the heap-driven reference observable for observable.
    #[test]
    fn differential_wheel_matches_heap_reference() {
        for seed in 0..12u64 {
            for &impaired in &[false, true] {
                for &budget in &[None, Some(150u64)] {
                    let run = |heap: bool| {
                        let (mut sim, a, b, link) = chaos_sim(heap, seed, impaired);
                        if let Some(x) = budget {
                            sim.set_event_budget(x);
                        }
                        // Staged deadlines force scheduler maintenance
                        // (purges, wheel advances) at identical points.
                        sim.run_until(SimTime::from_micros(300));
                        sim.run_until(SimTime::from_millis(7));
                        let mut fork = sim.fork().expect("chaotic agents clone");
                        sim.run_until(SimTime::from_millis(90));
                        fork.run_until(SimTime::from_millis(90));
                        let parent = chaos_observables(&sim, a, b, link);
                        let forked = chaos_observables(&fork, a, b, link);
                        assert_eq!(parent, forked, "fork must replay its parent");
                        parent
                    };
                    let wheel = run(false);
                    let heap = run(true);
                    assert_eq!(
                        wheel, heap,
                        "seed {seed} impaired {impaired} budget {budget:?}: \
                         wheel and heap runs diverged"
                    );
                }
            }
        }
    }

    /// Arena alloc/reuse streams are also backend-independent: both
    /// schedulers park and take packets at identical points.
    #[test]
    fn arena_counters_match_across_schedulers() {
        let run = |heap: bool| {
            let (mut sim, _a, _b, _link) = chaos_sim(heap, 3, false);
            sim.run_until(SimTime::from_millis(60));
            (sim.stats().arena_alloc, sim.stats().arena_reuse)
        };
        let wheel = run(false);
        assert_eq!(wheel, run(true));
        assert!(wheel.1 > 0, "steady traffic must recycle arena slots");
    }

    #[test]
    fn timer_exactly_at_now_fires_within_the_run() {
        struct AtNow {
            fired_at: Option<u64>,
        }
        impl Agent for AtNow {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::ZERO, 1);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                assert_eq!(tag, 1);
                self.fired_at = Some(ctx.now().as_nanos());
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, AtNow { fired_at: None });
        sim.run_until(SimTime::ZERO);
        assert_eq!(sim.agent::<AtNow>(n).unwrap().fired_at, Some(0));
    }

    #[test]
    fn max_adjacent_timers_park_without_firing() {
        struct Never {
            fired: u32,
        }
        impl Agent for Never {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // "Never" sentinels at and next to the top of the time
                // domain: they must park in the wheel's highest level and
                // stay there, not overflow or fire early.
                ctx.set_timer_at(SimTime::MAX, 1);
                ctx.set_timer_at(SimTime::from_nanos(u64::MAX - 1), 2);
                let dead = ctx.set_timer_at(SimTime::MAX, 3);
                ctx.cancel_timer(dead);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {
                self.fired += 1;
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, Never { fired: 0 });
        sim.run_until(SimTime::from_secs(3600));
        assert_eq!(sim.agent::<Never>(n).unwrap().fired, 0);
        // Running all the way to the end of time dispatches the two live
        // sentinels (the cancelled one stays dead).
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.agent::<Never>(n).unwrap().fired, 2);
    }

    #[test]
    fn cancel_then_rearm_same_tag_and_time() {
        struct Rearm {
            fired: Vec<u64>,
        }
        impl Agent for Rearm {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let first = ctx.set_timer(SimDuration::from_millis(10), 5);
                ctx.cancel_timer(first);
                // Re-arm at the identical tag and fire time: exactly one
                // fire must result, from the fresh handle.
                ctx.set_timer(SimDuration::from_millis(10), 5);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        sim.set_agent(n, Rearm { fired: Vec::new() });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Rearm>(n).unwrap().fired, vec![5]);
    }

    #[test]
    fn fork_mid_cascade_replays_parent() {
        struct Spread;
        impl Agent for Spread {
            fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
                Some(Box::new(Spread))
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Timers across every wheel level: sub-tick to hours.
                for i in 0..24u64 {
                    ctx.set_timer(SimDuration::from_nanos(1u64 << (2 * i + 2)), i);
                }
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                let pkt = Packet::new(
                    ctx.addr(tag as u16),
                    ctx.addr(7),
                    Protocol::Other(1),
                    Vec::new(),
                    0,
                );
                ctx.send(pkt);
            }
        }
        let mut sim = Simulator::new(9);
        let n = sim.add_node("n");
        sim.set_agent(n, Spread);
        // Stop mid-way: the wheel has advanced through several cascades
        // and still holds far-future levels.
        sim.run_until(SimTime::from_millis(40));
        let mut fork = sim.fork().expect("cloneable");
        sim.run_until(SimTime::from_secs(200));
        fork.run_until(SimTime::from_secs(200));
        assert_eq!(sim.events_processed(), fork.events_processed());
        // Timers with i <= 17 (delay 2^36 ns ~ 69 s) fire within 200 s,
        // each followed by a loopback delivery; i >= 18 stays parked.
        assert_eq!(sim.events_processed(), 18 * 2);
    }

    #[test]
    fn depth_hwm_tracks_queue_and_fifo() {
        let (mut sim, a, b, _) = two_node_sim(64);
        sim.set_agent(a, Blaster::new(b, 20, 80));
        assert_eq!(sim.stats().queue_depth_hwm, 0);
        sim.run_until(SimTime::from_secs(1));
        let hwm = sim.stats().queue_depth_hwm;
        assert!(hwm >= 20, "burst of 20 must register, got {hwm}");
    }
}
