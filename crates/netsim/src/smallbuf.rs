//! Inline small-buffer storage for packet headers.
//!
//! Transport headers in this simulation are tiny (20 bytes for TCP, 16 for
//! DCCP) but extremely numerous: every packet clone — retransmission
//! queues, duplicate attacks, trace capture, simulator forks — used to heap
//! allocate a fresh `Vec<u8>`. [`HeaderBuf`] stores headers up to
//! [`HeaderBuf::INLINE_CAP`] bytes directly in the packet struct, so
//! cloning a packet in the event-loop hot path touches no allocator at all.
//! Longer headers (options-heavy or hostile inputs) spill to a heap `Vec`
//! transparently.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A byte buffer that stores short contents inline (no heap allocation)
/// and spills long contents to a `Vec<u8>`. Dereferences to `[u8]`, so it
/// is a drop-in replacement for `Vec<u8>` at read sites.
#[derive(Clone)]
pub enum HeaderBuf {
    /// Contents stored inline in the enum itself.
    Inline {
        /// Number of valid bytes in `buf`.
        len: u8,
        /// Backing storage; only `buf[..len]` is meaningful.
        buf: [u8; HeaderBuf::INLINE_CAP],
    },
    /// Contents too long for inline storage.
    Heap(Vec<u8>),
}

impl HeaderBuf {
    /// Maximum byte length stored without heap allocation. Sized to hold
    /// every header format the simulation speaks (TCP: 20 bytes, DCCP: 16
    /// bytes) with room for option-carrying variants.
    pub const INLINE_CAP: usize = 32;

    /// An empty buffer as a constant — what the packet arena's recycled
    /// slots hold between occupants, so vacating a slot never allocates.
    pub const EMPTY: HeaderBuf = HeaderBuf::new();

    /// An empty buffer (inline, zero length).
    pub const fn new() -> HeaderBuf {
        HeaderBuf::Inline {
            len: 0,
            buf: [0u8; HeaderBuf::INLINE_CAP],
        }
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            HeaderBuf::Inline { len, buf } => &buf[..*len as usize],
            HeaderBuf::Heap(v) => v,
        }
    }

    /// The contents as a mutable slice (length is fixed; headers are
    /// rewritten in place, never resized).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match self {
            HeaderBuf::Inline { len, buf } => &mut buf[..*len as usize],
            HeaderBuf::Heap(v) => v,
        }
    }

    /// Copies the contents into a freshly allocated `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Consumes the buffer, yielding a `Vec<u8>` (allocates only for
    /// inline contents; heap contents move for free).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            HeaderBuf::Inline { len, buf } => buf[..len as usize].to_vec(),
            HeaderBuf::Heap(v) => v,
        }
    }
}

impl Default for HeaderBuf {
    fn default() -> HeaderBuf {
        HeaderBuf::new()
    }
}

impl From<Vec<u8>> for HeaderBuf {
    fn from(v: Vec<u8>) -> HeaderBuf {
        if v.len() <= HeaderBuf::INLINE_CAP {
            let mut buf = [0u8; HeaderBuf::INLINE_CAP];
            buf[..v.len()].copy_from_slice(&v);
            HeaderBuf::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            HeaderBuf::Heap(v)
        }
    }
}

impl From<&[u8]> for HeaderBuf {
    fn from(s: &[u8]) -> HeaderBuf {
        if s.len() <= HeaderBuf::INLINE_CAP {
            let mut buf = [0u8; HeaderBuf::INLINE_CAP];
            buf[..s.len()].copy_from_slice(s);
            HeaderBuf::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            HeaderBuf::Heap(s.to_vec())
        }
    }
}

impl<const N: usize> From<[u8; N]> for HeaderBuf {
    fn from(a: [u8; N]) -> HeaderBuf {
        HeaderBuf::from(&a[..])
    }
}

impl Deref for HeaderBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for HeaderBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl AsRef<[u8]> for HeaderBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for HeaderBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for HeaderBuf {}

impl fmt::Debug for HeaderBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_contents_stay_inline() {
        let b = HeaderBuf::from(vec![1u8, 2, 3]);
        assert!(matches!(b, HeaderBuf::Inline { len: 3, .. }));
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn long_contents_spill_to_heap() {
        let v = vec![7u8; HeaderBuf::INLINE_CAP + 1];
        let b = HeaderBuf::from(v.clone());
        assert!(matches!(b, HeaderBuf::Heap(_)));
        assert_eq!(&b[..], &v[..]);
        assert_eq!(b.into_vec(), v);
    }

    #[test]
    fn boundary_length_is_inline() {
        let v = vec![9u8; HeaderBuf::INLINE_CAP];
        let b = HeaderBuf::from(v.clone());
        assert!(matches!(b, HeaderBuf::Inline { .. }));
        assert_eq!(b.to_vec(), v);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline = HeaderBuf::from(vec![1u8, 2]);
        let heap = HeaderBuf::Heap(vec![1u8, 2]);
        assert_eq!(inline, heap);
        assert_ne!(inline, HeaderBuf::from(vec![1u8, 3]));
    }

    #[test]
    fn mutation_in_place() {
        let mut b = HeaderBuf::from(vec![0u8; 4]);
        b[2] = 0xAB;
        assert_eq!(&b[..], &[0, 0, 0xAB, 0]);
    }

    #[test]
    fn empty_default() {
        let b = HeaderBuf::default();
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<u8>::new());
    }
}
