use crate::packet::Packet;
use crate::sim::{Command, NodeId};
use crate::time::{SimDuration, SimTime};

/// A packet interceptor attached to a link — the attach point for SNAKE's
/// attack proxy, mirroring the paper's modified NS-3 tap-bridge (§V-B).
///
/// Every packet about to traverse the tapped link in either direction is
/// handed to the tap *instead of* being transmitted. The tap decides the
/// packet's fate through its [`TapCtx`]: forward it (possibly delayed),
/// forward copies, send it back where it came from, inject brand-new
/// packets, or do nothing (drop). Taps can also set timers, which is how
/// time-triggered injection attacks and batching are implemented.
///
/// The `Send + Sync` supertraits let a paused simulator snapshot be shared
/// across executor worker threads, which fork their own copies from it.
pub trait Tap: std::any::Any + Send + Sync {
    /// Called once at simulation start (before any packets flow).
    fn on_start(&mut self, ctx: &mut TapCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every packet entering the tapped link.
    ///
    /// `toward_b` is true when the packet is travelling from the link's `a`
    /// side to its `b` side (as passed to `attach_tap`). Not forwarding the
    /// packet drops it.
    fn on_packet(&mut self, ctx: &mut TapCtx<'_>, packet: Packet, toward_b: bool);

    /// Called when a timer set with [`TapCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut TapCtx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when the simulation finishes (for final accounting).
    fn on_finish(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Deep-clones this tap as a boxed trait object, for
    /// [`Simulator::fork`](crate::Simulator::fork). The default returns
    /// `None` (not forkable); production taps override it with
    /// `Some(Box::new(self.clone()))`.
    fn boxed_clone(&self) -> Option<Box<dyn Tap>> {
        None
    }
}

/// The tap's window into the simulator during a callback.
#[derive(Debug)]
pub struct TapCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) link_a: NodeId,
    pub(crate) link_b: NodeId,
    pub(crate) commands: &'a mut Vec<Command>,
}

impl TapCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The two endpoints of the tapped link.
    pub fn link_nodes(&self) -> (NodeId, NodeId) {
        (self.link_a, self.link_b)
    }

    /// Forwards a packet onward in the direction it was travelling.
    pub fn forward(&mut self, packet: Packet, toward_b: bool) {
        self.commands.push(Command::TapEmit {
            packet,
            toward_b,
            delay: SimDuration::ZERO,
        });
    }

    /// Forwards a packet after an extra delay (the *delay* and *batch*
    /// basic attacks). Delayed emissions are parked in the simulator's
    /// packet arena until their `ChanEnqueue` event fires; zero-delay
    /// emissions reach the channel synchronously and never touch it.
    pub fn forward_delayed(&mut self, packet: Packet, toward_b: bool, delay: SimDuration) {
        self.commands.push(Command::TapEmit {
            packet,
            toward_b,
            delay,
        });
    }

    /// Sends a packet back toward the side of the link it came from
    /// (the *reflect* basic attack; the caller is responsible for first
    /// rewriting addresses/ports so the victim processes it).
    pub fn send_back(&mut self, packet: Packet, came_from_a: bool) {
        // Reflection emits on the opposite channel: packets that arrived
        // from the `a` side leave toward `a`.
        self.commands.push(Command::TapEmit {
            packet,
            toward_b: !came_from_a,
            delay: SimDuration::ZERO,
        });
    }

    /// Injects a new packet at the tap, emitting it toward `toward_b`
    /// (the *inject* and *hitseqwindow* off-path attacks).
    pub fn inject(&mut self, packet: Packet, toward_b: bool, delay: SimDuration) {
        self.commands.push(Command::TapEmit {
            packet,
            toward_b,
            delay,
        });
    }

    /// Sets a one-shot tap timer `after` from now.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        self.commands.push(Command::TapTimer {
            at: self.now + after,
            tag,
        });
    }

    /// Stops the simulation: after this callback's commands are applied, no
    /// further events are dispatched (the clock still advances to each
    /// `run_until` deadline). Only sound when the caller of `run_until`
    /// already knows the run's outcome — the attack proxy uses it to
    /// short-circuit runs whose remaining rules are provably no-ops, letting
    /// the executor substitute the baseline result.
    pub fn request_halt(&mut self) {
        self.commands.push(Command::Halt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, Protocol};

    fn packet() -> Packet {
        Packet::new(
            Addr::new(NodeId::from_index(0), 1),
            Addr::new(NodeId::from_index(1), 2),
            Protocol::Tcp,
            vec![0u8; 20],
            0,
        )
    }

    #[test]
    fn send_back_reverses_direction() {
        let mut commands = Vec::new();
        let mut ctx = TapCtx {
            now: SimTime::ZERO,
            link_a: NodeId::from_index(0),
            link_b: NodeId::from_index(1),
            commands: &mut commands,
        };
        ctx.send_back(packet(), true);
        match &commands[0] {
            Command::TapEmit { toward_b, .. } => assert!(!toward_b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_preserves_direction() {
        let mut commands = Vec::new();
        let mut ctx = TapCtx {
            now: SimTime::ZERO,
            link_a: NodeId::from_index(0),
            link_b: NodeId::from_index(1),
            commands: &mut commands,
        };
        ctx.forward(packet(), true);
        match &commands[0] {
            Command::TapEmit {
                toward_b, delay, ..
            } => {
                assert!(toward_b);
                assert_eq!(*delay, SimDuration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
