use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// Simulated time is completely decoupled from wall-clock time: a 60-second
/// test connection (the unit of the paper's §VI-C cost analysis) takes
/// milliseconds to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A time `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// A time `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// A time `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// A time `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This time advanced by `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(&self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The coarse scheduling tick this instant falls in: nanoseconds
    /// divided by `2^shift`. The hierarchical timer wheel buckets
    /// far-future events by tick; a shift of 16 gives ~65.5 µs ticks and a
    /// 48-bit tick range, which spans the full `u64` nanosecond domain.
    pub(crate) const fn tick(&self, shift: u32) -> u64 {
        self.0 >> shift
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1e9)
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// `micros` microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// `secs` seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// A duration from a float second count (negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * 1e9).round() as u64)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration multiplied by an integer factor, saturating.
    pub fn saturating_mul(&self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1e9)
    }
}

/// Computes the serialization (transmission) delay of `bytes` at
/// `bandwidth_bps` bits per second.
///
/// # Panics
///
/// Panics if `bandwidth_bps` is zero; link specs validate this at
/// construction.
pub(crate) fn tx_delay(bytes: u32, bandwidth_bps: u64) -> SimDuration {
    assert!(bandwidth_bps > 0, "bandwidth must be positive");
    let bits = bytes as u64 * 8;
    SimDuration((bits.saturating_mul(1_000_000_000)) / bandwidth_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_nanos(), 500_000_000);
        // Sub saturates rather than panicking.
        assert_eq!((SimTime::ZERO - t).as_nanos(), 0);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.since(early), SimDuration::from_secs(2));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn tx_delay_matches_line_rate() {
        // 1250 bytes at 10 Mbit/s = 1 ms.
        assert_eq!(tx_delay(1_250, 10_000_000), SimDuration::from_millis(1));
        // 125 bytes at 1 Gbit/s = 1 µs.
        assert_eq!(tx_delay(125, 1_000_000_000), SimDuration::from_micros(1));
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
