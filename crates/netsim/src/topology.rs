//! Canned topologies; currently the dumbbell from the paper's Figure 3.

use crate::link::{LinkId, LinkSpec};
use crate::sim::{NodeId, Simulator};
use crate::time::SimDuration;

/// Parameters for the dumbbell test topology (paper Figure 3): two clients
/// and two servers on either side of a bottleneck link between two routers.
/// The attack proxy is spliced into client 1's access link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumbbellSpec {
    /// Bottleneck link between the routers.
    pub bottleneck: LinkSpec,
    /// Access links (client/server to router).
    pub access: LinkSpec,
}

impl DumbbellSpec {
    /// The configuration used throughout the reproduction's evaluation:
    /// a 10 Mbit/s bottleneck with ≈20 ms base RTT and a 64-packet RED
    /// queue (about two bandwidth-delay products), with 100 Mbit/s
    /// tail-drop access links.
    pub fn evaluation_default() -> DumbbellSpec {
        DumbbellSpec {
            bottleneck: LinkSpec::new(10_000_000, SimDuration::from_millis(8), 64).with_red(),
            access: LinkSpec::new(100_000_000, SimDuration::from_millis(1), 128),
        }
    }
}

/// Handles to the nodes and links of a built dumbbell.
///
/// ```text
/// client1 ---[proxy link]--- router1 ===[bottleneck]=== router2 --- server1
/// client2 ------------------ router1                    router2 --- server2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dumbbell {
    /// Client 1: the connection the attack proxy sits in front of.
    pub client1: NodeId,
    /// Client 2: the unproxied competing connection's client.
    pub client2: NodeId,
    /// Router on the client side.
    pub router1: NodeId,
    /// Router on the server side.
    pub router2: NodeId,
    /// Server 1: serves client 1.
    pub server1: NodeId,
    /// Server 2: serves client 2.
    pub server2: NodeId,
    /// Client 1's access link — attach the attack proxy tap here.
    pub proxy_link: LinkId,
    /// The shared bottleneck link.
    pub bottleneck: LinkId,
}

impl Dumbbell {
    /// Builds the dumbbell into `sim` and returns the node/link handles.
    /// Agents are installed separately by the executor.
    pub fn build(sim: &mut Simulator, spec: DumbbellSpec) -> Dumbbell {
        let client1 = sim.add_node("client1");
        let client2 = sim.add_node("client2");
        let router1 = sim.add_node("router1");
        let router2 = sim.add_node("router2");
        let server1 = sim.add_node("server1");
        let server2 = sim.add_node("server2");

        let proxy_link = sim.add_link(client1, router1, spec.access);
        sim.add_link(client2, router1, spec.access);
        let bottleneck = sim.add_link(router1, router2, spec.bottleneck);
        sim.add_link(router2, server1, spec.access);
        sim.add_link(router2, server2, spec.access);

        Dumbbell {
            client1,
            client2,
            router1,
            router2,
            server1,
            server2,
            proxy_link,
            bottleneck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx};
    use crate::packet::{Addr, Packet, Protocol};
    use crate::time::SimTime;

    struct Sender {
        to: NodeId,
        sent: u32,
    }
    impl Agent for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.sent {
                let pkt = Packet::new(
                    ctx.addr(1),
                    Addr::new(self.to, 80),
                    Protocol::Other(9),
                    Vec::new(),
                    1_000,
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
    }

    struct Counter {
        got: u32,
    }
    impl Agent for Counter {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
            self.got += 1;
        }
    }

    #[test]
    fn dumbbell_routes_both_flows() {
        let mut sim = Simulator::new(3);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        sim.set_agent(
            d.client1,
            Sender {
                to: d.server1,
                sent: 4,
            },
        );
        sim.set_agent(
            d.client2,
            Sender {
                to: d.server2,
                sent: 6,
            },
        );
        sim.set_agent(d.server1, Counter { got: 0 });
        sim.set_agent(d.server2, Counter { got: 0 });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Counter>(d.server1).unwrap().got, 4);
        assert_eq!(sim.agent::<Counter>(d.server2).unwrap().got, 6);
        let (ab, _) = sim.link_stats(d.bottleneck);
        assert_eq!(ab.transmitted, 10, "both flows cross the bottleneck");
    }

    #[test]
    fn evaluation_default_has_sane_rtt() {
        let spec = DumbbellSpec::evaluation_default();
        // Base RTT across the dumbbell: 2 * (1 + 8 + 1) ms = 20 ms.
        let one_way = spec.access.delay.as_nanos() * 2 + spec.bottleneck.delay.as_nanos();
        assert_eq!(one_way * 2, SimDuration::from_millis(20).as_nanos());
    }
}
